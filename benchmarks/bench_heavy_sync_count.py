"""Theorem 1.1 (4): heavy epoch synchronisations stop in the steady state.

Lumiere performs the quadratic all-to-all epoch synchronisation only while
the success criterion has not yet been observed; after GST only a constant
number of them may occur.  Basic Lumiere, LP22 and RareSync keep paying one
per epoch forever.  The benchmark counts distinct heavy-synced epochs after
a warm-up period for each protocol.
"""

from __future__ import annotations

from repro.experiments.steady_state import heavy_sync_sweep


def test_heavy_sync_elimination(benchmark, campaign_backend, campaign_workers, campaign_cache):
    protocols = ("lumiere", "basic-lumiere", "lp22", "raresync")

    def run():
        return heavy_sync_sweep(
            protocols,
            n=7,
            f_actual=0,
            delta=1.0,
            actual_delay=0.05,
            duration=1200.0,
            warmup=150.0,
            seed=0,
            backend=campaign_backend,
            workers=campaign_workers,
            cache=campaign_cache,
        )

    results = benchmark.pedantic(run, iterations=1, rounds=1)
    print()
    print("Heavy epoch synchronisations after warm-up (n=7, fault-free, 1200 time units)")
    print(f"{'protocol':<15} {'total':>6} {'after warmup':>13} {'decisions':>10} {'msgs/decision':>14}")
    for name, result in results.items():
        avg = result.avg_messages_per_decision
        print(
            f"{name:<15} {result.total_heavy_syncs:>6} {result.heavy_syncs_after_warmup:>13} "
            f"{result.decisions:>10} {avg if avg is None else round(avg, 1):>14}"
        )
        benchmark.extra_info[f"{name}_after_warmup"] = result.heavy_syncs_after_warmup

    # Lumiere: no heavy synchronisation at all once the steady state is reached.
    assert results["lumiere"].heavy_syncs_after_warmup == 0
    # The epoch-based baselines keep heavy-syncing every epoch.
    for baseline in ("basic-lumiere", "lp22", "raresync"):
        assert results[baseline].heavy_syncs_after_warmup >= 3
    # All protocols kept deciding (the comparison is not vacuous).
    assert all(result.decisions > 0 for result in results.values())
