"""Theorem 1.1 (3): smooth optimistic responsiveness.

With ``delta`` much smaller than ``Delta``, Lumiere's steady-state decision
gap must be O(delta) when there are no faults, and grow by at most a
constant number of ``Delta`` per actual fault — i.e. O(Delta * f_a + delta).
The benchmark sweeps ``f_a`` and reports the measured worst and median gaps.
"""

from __future__ import annotations

from repro.experiments.responsiveness import responsiveness_sweep


def test_smooth_optimistic_responsiveness(
    benchmark, steady_state_n, campaign_backend, campaign_workers, campaign_cache
):
    n = steady_state_n
    f_max = (n - 1) // 3
    fault_counts = list(range(0, f_max + 1))
    delta = 1.0
    actual_delay = 0.02

    def run():
        return responsiveness_sweep(
            "lumiere",
            n=n,
            fault_counts=fault_counts,
            delta=delta,
            actual_delay=actual_delay,
            seed=2,
            backend=campaign_backend,
            workers=campaign_workers,
            cache=campaign_cache,
        )

    points = benchmark.pedantic(run, iterations=1, rounds=1)
    print()
    print(f"Smooth optimistic responsiveness (Lumiere, n={n}, Delta=1, delta=0.02)")
    print(f"{'f_a':>4} {'worst gap':>12} {'median gap':>12} {'decisions':>10}")
    for point in points:
        print(
            f"{point.f_actual:>4} {point.max_gap:>12.3f} {point.median_gap:>12.3f} "
            f"{point.decisions:>10}"
        )
        benchmark.extra_info[f"f{point.f_actual}_max_gap"] = point.max_gap

    fault_free = points[0]
    # O(delta) with zero faults: far below Delta.
    assert fault_free.max_gap is not None and fault_free.max_gap < 0.5 * delta
    assert fault_free.median_gap is not None and fault_free.median_gap <= 10 * actual_delay
    # Each additional fault costs at most a constant number of Delta
    # (Gamma = 12 Delta per owned view pair, up to two pairs back to back).
    gamma = 2 * (4 + 2) * delta
    for point in points[1:]:
        assert point.max_gap is not None
        assert point.max_gap <= 4 * point.f_actual * gamma + 6 * delta
