"""The scenario gauntlet: every pacemaker against the adversarial library.

Every scenario in the default gauntlet keeps at most ``f`` processors faulty
and proposes delays within the partial-synchrony envelope, so a *correct*
pacemaker must stay safe and live in every cell; the benchmark asserts
exactly that, prints the pacemaker x scenario comparison tables (decisions
and worst post-GST decision gap), and asserts the paper's headline
separation: Lumiere out-decides LP22 under the partition scenario, where
epoch-based clocks lag the whole pre-GST period behind.
"""

from __future__ import annotations

import os

from repro.experiments.gauntlet import (
    DEFAULT_GAUNTLET_SCENARIOS,
    gauntlet_table,
    scenario_gauntlet,
)
from repro.pacemakers.registry import available_pacemakers

QUICK = os.environ.get("REPRO_BENCH_QUICK", "0") not in ("0", "", "false", "False")


def test_scenario_gauntlet(benchmark, campaign_backend, campaign_workers, campaign_cache):
    n = 4 if QUICK else 7
    gst = 20.0
    duration = gst + (150.0 if QUICK else 300.0)
    pacemakers = available_pacemakers()
    scenarios = DEFAULT_GAUNTLET_SCENARIOS

    def run():
        return scenario_gauntlet(
            pacemakers,
            scenarios,
            n=n,
            gst=gst,
            duration=duration,
            seed=3,
            backend=campaign_backend,
            workers=campaign_workers,
            cache=campaign_cache,
        )

    cells = benchmark.pedantic(run, iterations=1, rounds=1)

    print()
    print(f"Scenario gauntlet (n={n}, GST={gst}, duration={duration}) — decisions")
    print(gauntlet_table(cells, measure="decisions"))
    print()
    print("Worst post-GST decision gap")
    print(gauntlet_table(cells, measure="max_gap"))

    assert len(cells) == len(pacemakers) * len(scenarios)
    assert len(scenarios) >= 8

    # Safety is unconditional: no adversary in the library may break it.
    assert all(cell.ledgers_consistent for cell in cells)
    # Liveness is required of every correct pacemaker in every cell: all
    # scenarios keep >= 2f+1 honest-and-up processors and heal by GST.
    for cell in cells:
        assert cell.decisions > 0, f"{cell.pacemaker} made no progress under {cell.scenario}"

    # The headline separation (Figure 1 / Table 1): under a pre-GST partition
    # healing at GST, Lumiere recovers at network speed while LP22's clock
    # mechanism grinds through the views the calm half raced ahead by.
    by_key = {(cell.pacemaker, cell.scenario): cell for cell in cells}
    lumiere = by_key[("lumiere", "split_brain_at_gst")]
    lp22 = by_key[("lp22", "split_brain_at_gst")]
    assert lumiere.decisions > 2 * lp22.decisions

    benchmark.extra_info["cells"] = len(cells)
    benchmark.extra_info["lumiere_partition_decisions"] = lumiere.decisions
    benchmark.extra_info["lp22_partition_decisions"] = lp22.decisions
