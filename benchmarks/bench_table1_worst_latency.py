"""Table 1, row "Worst-case Latency".

Paper: Cogsworth/NK20 O(n^2 Delta); LP22 and Lumiere O(n Delta); Fever
O(f_a Delta + delta) (under its stronger clock assumptions).

We measure ``t*_GST - GST``: the time from GST to the first honest-leader QC,
under maximal faults and pre-GST asynchrony, as a function of ``n``.
"""

from __future__ import annotations

from repro.experiments.table1 import TABLE1_PROTOCOLS, format_rows, worst_case_complexity_sweep


def test_worst_case_latency_scaling(
    benchmark, bench_sizes, campaign_backend, campaign_workers, campaign_cache
):
    def run():
        return worst_case_complexity_sweep(
            protocols=TABLE1_PROTOCOLS, sizes=bench_sizes, delta=1.0, actual_delay=0.1, seed=3,
            backend=campaign_backend, workers=campaign_workers, cache=campaign_cache,
        )

    rows = benchmark.pedantic(run, iterations=1, rounds=1)
    print()
    print("Table 1 / worst-case latency after GST (t*_GST - GST), Delta = 1")
    print(format_rows(rows))
    benchmark.extra_info["rows"] = [row.as_dict() for row in rows]

    largest_n = max(row.n for row in rows)
    for row in rows:
        if row.n != largest_n:
            continue
        assert row.worst_case_latency is not None, f"{row.protocol} never decided after GST"
        # O(n * Delta) with a generous constant; catches accidental
        # exponential or n^2-with-large-constant regressions for the
        # Dolev-Reischuk-optimal protocols.
        if row.protocol in ("lumiere", "lp22", "fever"):
            assert row.worst_case_latency <= 40 * largest_n * 1.0, (
                f"{row.protocol} worst-case latency {row.worst_case_latency} "
                f"is not O(n * Delta) at n={largest_n}"
            )
