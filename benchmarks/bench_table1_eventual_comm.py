"""Table 1, row "Eventual Worst-case Communication".

Paper: Cogsworth O(n + n f_a^2), NK20/LP22 O(n^2), Fever and Lumiere
O(n f_a + n).

We measure, in the steady state (long after GST, after a warm-up), the
maximum number of honest messages sent between two consecutive honest-leader
decisions, sweeping the actual number of faults ``f_a``.  The key separation
is LP22 vs Lumiere: LP22 pays a heavy epoch synchronisation between two
decisions infinitely often, Lumiere does not once the success criterion has
been satisfied.
"""

from __future__ import annotations

from repro.experiments.table1 import TABLE1_PROTOCOLS, eventual_complexity_sweep, format_rows


def test_eventual_communication_per_decision(
    benchmark, steady_state_n, campaign_backend, campaign_workers, campaign_cache
):
    n = steady_state_n
    f_max = (n - 1) // 3
    fault_counts = sorted({0, 1, f_max})

    def run():
        return eventual_complexity_sweep(
            protocols=TABLE1_PROTOCOLS,
            n=n,
            fault_counts=fault_counts,
            delta=1.0,
            actual_delay=0.1,
            seed=1,
            backend=campaign_backend,
            workers=campaign_workers,
            cache=campaign_cache,
        )

    rows = benchmark.pedantic(run, iterations=1, rounds=1)
    print()
    print(f"Table 1 / eventual (steady-state) cost per decision, n={n}")
    print(format_rows(rows))
    benchmark.extra_info["rows"] = [row.as_dict() for row in rows]

    def eventual(protocol, f_a):
        for row in rows:
            if row.protocol == protocol and row.f_actual == f_a:
                return row.eventual_communication
        return None

    # Fault-free steady state: Lumiere's per-decision communication is linear
    # (far below LP22's, which pays a quadratic epoch synchronisation).
    lumiere_0 = eventual("lumiere", 0)
    lp22_0 = eventual("lp22", 0)
    assert lumiere_0 is not None and lp22_0 is not None
    assert lumiere_0 < lp22_0
    assert lumiere_0 <= 6 * n, "Lumiere fault-free per-decision communication should be O(n)"
