#!/usr/bin/env python3
"""Scaling benchmark: crypto backends across system sizes.

Runs a gauntlet-lite scenario matrix (pacemaker x fault load, swept over the
``crypto_backend`` campaign axis) at n in {4, 16, 64, 128} plus a pure
certificate-pipeline microbenchmark of the crypto seam itself
(partial-sign -> verify -> combine -> per-recipient aggregate verification),
and writes machine-readable ``BENCH_scaling.json`` at the repository root.

Two speedup figures are reported per system size, deliberately:

* ``crypto_speedup`` — counting vs hashing on the certificate pipeline, the
  workload the backend seam serves.  This is where the asymptotic win lives
  (the gate below applies here).
* ``end_to_end_speedup`` — counting vs hashing on full simulation runs.
  Bounded by the simulator kernel's share of the runtime (Amdahl), so it is
  smaller; it is reported unmassaged so future kernel work has a baseline.

Correctness gates (the script exits non-zero if any fails):

* both backends produce **identical decision counts** on every scenario cell;
* **zero safety violations** (honest ledgers consistent) everywhere;
* ``crypto_speedup`` at the largest n is at least ``--min-crypto-speedup``
  (3.0 by default, 1.0 in ``--quick`` mode);
* in quick mode, counting is not slower end-to-end (with a 20% allowance
  for shared-runner scheduling noise; the true margin is ~1.5x);
* with ``--check-baseline FILE``, every cell's ``decisions`` and
  ``committed_blocks`` must match the committed baseline exactly.  Decision
  counts are deterministic per seed — machine-independent — so this is the
  correctness guard CI uses to detect accidental trace changes (timing
  gates cannot run on shared runners; this one can).

Usage::

    PYTHONPATH=src python benchmarks/bench_scaling.py            # full matrix
    PYTHONPATH=src python benchmarks/bench_scaling.py --quick    # CI: n=16 only
    PYTHONPATH=src python benchmarks/bench_scaling.py --quick \\
        --check-baseline benchmarks/BASELINE_smoke.json          # CI guard
    PYTHONPATH=src python benchmarks/bench_scaling.py --quick \\
        --write-baseline benchmarks/BASELINE_smoke.json          # refresh it
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Any

from repro.crypto.backend import make_backend
from repro.crypto.signatures import PKI
from repro.crypto.threshold import ThresholdScheme
from repro.experiments.scenario import build_spread_fault_config
from repro.runner import Campaign, Sweep
from repro.version import __version__

BACKENDS = ("hashing", "counting")
FULL_NS = (4, 16, 64, 128)
QUICK_NS = (16,)


def scenario_campaign(n: int, protocols: tuple[str, ...], f_values: tuple[int, ...],
                      duration: float) -> Campaign:
    """The gauntlet-lite matrix for one system size, with the backend as a sweep axis."""
    return Campaign(
        name=f"scaling-n{n}",
        build=build_spread_fault_config,
        sweeps=(
            Sweep("crypto_backend", BACKENDS),
            Sweep("protocol", protocols),
            Sweep("f_actual", f_values),
        ),
        fixed={"n": n, "delta": 1.0, "actual_delay": 0.1, "duration": duration, "seed": 0},
    )


def run_scenario_matrix(ns, protocols, f_values, duration) -> list[dict[str, Any]]:
    """Execute every cell serially (fresh, uncached) and flatten to JSON rows."""
    rows: list[dict[str, Any]] = []
    for n in ns:
        result = scenario_campaign(n, protocols, tuple(f_values), duration).run(backend="serial")
        for record in result:
            rows.append(
                {
                    "n": n,
                    "protocol": record.params["protocol"],
                    "f_actual": record.params["f_actual"],
                    "backend": record.params["crypto_backend"],
                    "wall_time": round(record.wall_time, 4),
                    "events_processed": record.events_processed,
                    "events_per_sec": round(record.events_processed / record.wall_time)
                    if record.wall_time > 0
                    else None,
                    "decisions": record.decisions,
                    "committed_blocks": record.committed_blocks,
                    "ledgers_consistent": record.ledgers_consistent,
                }
            )
        print(f"[scenario] n={n}: {len(result)} cells done")
    return rows


def run_crypto_pipeline(backend_name: str, n: int, rounds: int) -> dict[str, Any]:
    """One certificate pipeline: sign, verify, combine, verify-at-every-recipient."""
    backend = make_backend(backend_name)
    pki, keys = PKI.setup(range(n), backend=backend)
    # The verified-aggregate cache is disabled so the microbenchmark keeps
    # measuring the *raw* per-verification seam cost (the end-to-end scenario
    # rows measure the cached behaviour the simulation actually runs with).
    scheme = ThresholdScheme(pki, cache_verified=False)
    quorum = 2 * ((n - 1) // 3) + 1
    start = time.perf_counter()
    for round_index in range(rounds):
        message = ("qc", round_index, f"block-{round_index}")
        partials = [scheme.partial_sign(keys[i], message) for i in range(quorum)]
        for partial in partials:
            if not scheme.verify_partial(partial, message):
                raise AssertionError("pipeline share failed verification")
        aggregate = scheme.combine(partials, quorum, message)
        for _ in range(n):  # every recipient of the broadcast checks the certificate
            if not scheme.verify(aggregate, message):
                raise AssertionError("pipeline aggregate failed verification")
    wall = time.perf_counter() - start
    return {
        "n": n,
        "backend": backend_name,
        "rounds": rounds,
        "quorum": quorum,
        "wall_time": round(wall, 4),
        "digest_calls": backend.digest_calls,
        "digests_per_sec": round(backend.digest_calls / wall) if wall > 0 else None,
    }


def aggregate(scenario_rows, crypto_rows, ns) -> dict[str, Any]:
    per_n: dict[str, Any] = {}
    for n in ns:
        walls = {
            backend: sum(
                row["wall_time"]
                for row in scenario_rows
                if row["n"] == n and row["backend"] == backend
            )
            for backend in BACKENDS
        }
        crypto = {
            row["backend"]: row["wall_time"]
            for row in crypto_rows
            if row["n"] == n
        }
        per_n[str(n)] = {
            "hashing_wall_time": round(walls["hashing"], 4),
            "counting_wall_time": round(walls["counting"], 4),
            "end_to_end_speedup": round(walls["hashing"] / walls["counting"], 3)
            if walls["counting"]
            else None,
            "crypto_hashing_wall_time": crypto.get("hashing"),
            "crypto_counting_wall_time": crypto.get("counting"),
            "crypto_speedup": round(crypto["hashing"] / crypto["counting"], 3)
            if crypto.get("counting")
            else None,
        }
    return per_n


def baseline_cells(scenario_rows) -> list[dict[str, Any]]:
    """The machine-independent residue of the scenario matrix: per-cell
    decision and commit counts (plus the safety bit), no timings."""
    return [
        {
            "n": row["n"],
            "protocol": row["protocol"],
            "f_actual": row["f_actual"],
            "backend": row["backend"],
            "decisions": row["decisions"],
            "committed_blocks": row["committed_blocks"],
            "ledgers_consistent": row["ledgers_consistent"],
        }
        for row in scenario_rows
    ]


def check_baseline(scenario_rows, baseline_path: Path, run_mode: str) -> list[str]:
    """Compare the run's decision/commit counts against a committed baseline.

    Returns failure strings (empty when every baseline cell was reproduced
    exactly).  Cells in the run but not the baseline are ignored — widening
    the matrix must not require a baseline refresh — but every baseline
    cell must be present and identical.  A baseline recorded in a different
    mode fails fast with the real reason: quick and full cells run with
    different durations, so their counts legitimately differ.
    """
    baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
    baseline_mode = baseline.get("mode")
    if baseline_mode is not None and baseline_mode != run_mode:
        return [
            f"baseline {baseline_path} was recorded in {baseline_mode!r} mode but "
            f"this is a {run_mode!r} run; the cells use different durations, so "
            "counts legitimately differ — compare like with like"
        ]
    observed = {
        (cell["n"], cell["protocol"], cell["f_actual"], cell["backend"]): cell
        for cell in baseline_cells(scenario_rows)
    }
    failures: list[str] = []
    for expected in baseline["cells"]:
        key = (expected["n"], expected["protocol"], expected["f_actual"], expected["backend"])
        cell = observed.get(key)
        if cell is None:
            failures.append(f"baseline cell {key} missing from this run's matrix")
        elif cell != expected:
            failures.append(
                f"baseline mismatch at {key}: expected {expected}, got {cell} "
                "(a deliberate trace change needs --write-baseline)"
            )
    return failures


def check(scenario_rows, per_n, ns, min_crypto_speedup, quick) -> dict[str, Any]:
    """Evaluate the correctness/performance gates; returns the checks blob."""
    failures: list[str] = []

    # Identical decision counts per cell across backends.
    by_cell: dict[tuple, dict[str, int]] = {}
    for row in scenario_rows:
        by_cell.setdefault((row["n"], row["protocol"], row["f_actual"]), {})[
            row["backend"]
        ] = row["decisions"]
    mismatched = {
        cell: counts for cell, counts in by_cell.items() if len(set(counts.values())) != 1
    }
    if mismatched:
        failures.append(f"decision counts differ across backends: {mismatched}")

    unsafe = [row for row in scenario_rows if not row["ledgers_consistent"]]
    if unsafe:
        failures.append(f"safety violations in {len(unsafe)} cells")

    max_n = str(max(ns))
    crypto_speedup = per_n[max_n]["crypto_speedup"]
    if crypto_speedup is None or crypto_speedup < min_crypto_speedup:
        failures.append(
            f"crypto speedup at n={max_n} is {crypto_speedup}, "
            f"required >= {min_crypto_speedup}"
        )

    # Wall-clock comparisons on shared CI runners are noisy, so "counting is
    # not slower" is enforced with a generous 20% allowance: the true ratio
    # is ~1.5x at n=16, so only a genuine regression trips this, not
    # scheduling jitter.  The deterministic gates above do the real work.
    end_to_end = per_n[max_n]["end_to_end_speedup"]
    if quick and (end_to_end is None or end_to_end < 0.8):
        failures.append(
            f"counting is slower end-to-end at n={max_n} "
            f"(speedup {end_to_end}, must be >= 0.8)"
        )

    return {
        "identical_decisions": not mismatched,
        "zero_safety_violations": not unsafe,
        "crypto_speedup_at_max_n": crypto_speedup,
        "end_to_end_speedup_at_max_n": end_to_end,
        "min_crypto_speedup_required": min_crypto_speedup,
        "failures": failures,
        "passed": not failures,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI mode: n=16 only, short runs, relaxed speedup gate")
    parser.add_argument("--ns", type=str, default=None,
                        help="comma-separated system sizes (overrides mode default)")
    parser.add_argument("--output", type=Path,
                        default=Path(__file__).resolve().parent.parent / "BENCH_scaling.json")
    parser.add_argument("--min-crypto-speedup", type=float, default=None,
                        help="gate on the crypto pipeline at the largest n "
                             "(default 3.0, or 1.0 with --quick)")
    parser.add_argument("--rounds", type=int, default=60,
                        help="certificate rounds per crypto-pipeline cell")
    parser.add_argument("--check-baseline", type=Path, default=None,
                        help="fail unless per-cell decision/commit counts match "
                             "this committed baseline JSON exactly")
    parser.add_argument("--write-baseline", type=Path, default=None,
                        help="write the run's per-cell decision/commit counts "
                             "as a new baseline JSON")
    args = parser.parse_args(argv)

    ns = tuple(int(x) for x in args.ns.split(",")) if args.ns else (
        QUICK_NS if args.quick else FULL_NS
    )
    min_crypto_speedup = (
        args.min_crypto_speedup
        if args.min_crypto_speedup is not None
        else (1.0 if args.quick else 3.0)
    )
    protocols = ("lumiere", "fever") if args.quick else ("lumiere", "fever", "lp22")
    f_values = (0,) if args.quick else (0, 1)
    duration = 15.0 if args.quick else 25.0

    scenario_rows = run_scenario_matrix(ns, protocols, f_values, duration)
    crypto_rows = [
        run_crypto_pipeline(backend, n, args.rounds) for n in ns for backend in BACKENDS
    ]
    per_n = aggregate(scenario_rows, crypto_rows, ns)
    checks = check(scenario_rows, per_n, ns, min_crypto_speedup, args.quick)

    if args.write_baseline is not None:
        baseline_doc = {
            "schema": "repro-bench-baseline/1",
            "generated_by": "benchmarks/bench_scaling.py",
            "mode": "quick" if args.quick else "full",
            "cells": baseline_cells(scenario_rows),
        }
        args.write_baseline.write_text(
            json.dumps(baseline_doc, indent=2) + "\n", encoding="utf-8"
        )
        print(f"wrote baseline {args.write_baseline}")
    if args.check_baseline is not None:
        baseline_failures = check_baseline(
            scenario_rows, args.check_baseline, "quick" if args.quick else "full"
        )
        checks["baseline_matched"] = not baseline_failures
        if baseline_failures:
            checks["failures"].extend(baseline_failures)
            checks["passed"] = False

    document = {
        "schema": "repro-bench-scaling/1",
        "generated_by": "benchmarks/bench_scaling.py",
        "version": __version__,
        "mode": "quick" if args.quick else "full",
        "parameters": {
            "ns": list(ns),
            "backends": list(BACKENDS),
            "protocols": list(protocols),
            "f_values": list(f_values),
            "duration": duration,
            "crypto_rounds": args.rounds,
        },
        "scenario_runs": scenario_rows,
        "crypto_runs": crypto_rows,
        "aggregates": {"per_n": per_n},
        "checks": checks,
    }
    args.output.write_text(json.dumps(document, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {args.output}")
    for n, agg in per_n.items():
        print(
            f"  n={n}: end-to-end {agg['end_to_end_speedup']}x, "
            f"crypto pipeline {agg['crypto_speedup']}x"
        )
    if not checks["passed"]:
        for failure in checks["failures"]:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
