"""Table 1, row "Worst-case Communication".

Paper: Cogsworth/NK20 O(n^3); LP22, Fever and Lumiere O(n^2).

We run each protocol with maximal faults and pre-GST asynchrony and measure
``W_{GST+Delta}``: honest messages sent between GST+Delta and the first
honest-leader QC after it, as a function of ``n``.  The assertion checks the
*shape*: the optimal protocols stay at or below quadratic growth.
"""

from __future__ import annotations

from repro.analysis.fitting import estimate_exponent
from repro.experiments.table1 import TABLE1_PROTOCOLS, format_rows, worst_case_complexity_sweep


def test_worst_case_communication_scaling(
    benchmark, bench_sizes, campaign_backend, campaign_workers, campaign_cache
):
    def run():
        return worst_case_complexity_sweep(
            protocols=TABLE1_PROTOCOLS, sizes=bench_sizes, delta=1.0, actual_delay=0.1, seed=1,
            backend=campaign_backend, workers=campaign_workers, cache=campaign_cache,
        )

    rows = benchmark.pedantic(run, iterations=1, rounds=1)
    print()
    print("Table 1 / worst-case communication (W_{GST+Delta}) and latency after GST")
    print(format_rows(rows))

    by_protocol: dict[str, list] = {}
    for row in rows:
        by_protocol.setdefault(row.protocol, []).append(row)
    benchmark.extra_info["rows"] = [row.as_dict() for row in rows]

    # Shape check: Lumiere's worst-case communication grows at most ~quadratically
    # (log-log slope comfortably below 3) over the measured sizes.
    for protocol in ("lumiere", "lp22"):
        measured = [
            (row.n, row.worst_case_communication)
            for row in by_protocol[protocol]
            if row.worst_case_communication
        ]
        if len(measured) >= 2:
            exponent = estimate_exponent([m[0] for m in measured], [m[1] for m in measured])
            benchmark.extra_info[f"{protocol}_worst_comm_exponent"] = exponent
            assert exponent < 3.0, f"{protocol} worst-case communication grew faster than n^3"

    # Every protocol eventually produced a decision after GST in every run.
    assert all(row.decisions > 0 for row in rows)
