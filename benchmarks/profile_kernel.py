#!/usr/bin/env python3
"""Kernel hotspot report: cProfile over a steady-state lumiere scenario.

Profiles one full ``run_scenario`` call (n=512 by default — the scale the
raw-speed push targets, where the backend-independent kernel share dominates
under the hashing backend) and writes a machine-readable JSON artifact with
the top-N functions by cumulative time, plus the same table by internal
(self) time.  The CI perf-smoke job runs ``--quick`` mode (n=16, shorter
run) and uploads the JSON, so every push leaves a downloadable record of
where the kernel's time went.

The report is a *observability* artifact, not a gate: wall times vary across
machines, so nothing here fails the build.  The companion correctness guard
lives in ``bench_scaling.py --check-baseline`` (decision counts are
machine-independent).

Usage::

    PYTHONPATH=src python benchmarks/profile_kernel.py           # n=512 report
    PYTHONPATH=src python benchmarks/profile_kernel.py --quick   # CI: n=16
"""

from __future__ import annotations

import argparse
import cProfile
import io
import json
import pstats
import sys
from pathlib import Path
from typing import Any

from repro.experiments.scenario import build_spread_fault_config, run_scenario
from repro.version import __version__


def profile_scenario(n: int, duration: float, backend: str, seed: int):
    """Run one scenario under cProfile; returns (stats, scenario result)."""
    params = {
        "n": n,
        "protocol": "lumiere",
        "delta": 1.0,
        "actual_delay": 0.1,
        "duration": duration,
        "seed": seed,
        "f_actual": 0,
        "crypto_backend": backend,
    }
    config = build_spread_fault_config(params)
    profiler = cProfile.Profile()
    result_box: list[Any] = []
    profiler.enable()
    result_box.append(run_scenario(config))
    profiler.disable()
    return pstats.Stats(profiler), result_box[0]


def hotspot_rows(stats: pstats.Stats, sort: str, top: int) -> list[dict[str, Any]]:
    """The top-``top`` functions under one sort key, as JSON-friendly rows."""
    stats.sort_stats(sort)
    rows: list[dict[str, Any]] = []
    for func in stats.fcn_list[:top]:  # type: ignore[attr-defined]
        filename, lineno, name = func
        cc, nc, tt, ct, _callers = stats.stats[func]  # type: ignore[attr-defined]
        # Strip machine-specific prefixes so artifacts diff cleanly across
        # checkouts; stdlib/builtin frames keep their short form.
        short = filename
        marker = "/repro/"
        if marker in filename:
            short = "src/repro/" + filename.split(marker, 1)[1]
        rows.append(
            {
                "function": name,
                "location": f"{short}:{lineno}",
                "calls": nc,
                "primitive_calls": cc,
                "internal_time": round(tt, 4),
                "cumulative_time": round(ct, 4),
            }
        )
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI mode: n=16 and a shorter run")
    parser.add_argument("--n", type=int, default=None,
                        help="system size (default 512, or 16 with --quick)")
    parser.add_argument("--duration", type=float, default=None,
                        help="virtual-time duration (default 10, or 15 with --quick)")
    parser.add_argument("--backend", default="hashing",
                        help="crypto backend to profile under (default: hashing, "
                             "the backend whose runs the kernel share dominates)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--top", type=int, default=25,
                        help="functions per hotspot table (default 25)")
    parser.add_argument("--output", type=Path,
                        default=Path(__file__).resolve().parent.parent
                        / "BENCH_kernel_profile.json")
    args = parser.parse_args(argv)

    n = args.n if args.n is not None else (16 if args.quick else 512)
    duration = args.duration if args.duration is not None else (15.0 if args.quick else 10.0)

    stats, result = profile_scenario(n, duration, args.backend, args.seed)
    total_time = stats.total_tt  # type: ignore[attr-defined]

    by_cumulative = hotspot_rows(stats, "cumulative", args.top)
    by_internal = hotspot_rows(stats, "time", args.top)

    document = {
        "schema": "repro-kernel-profile/1",
        "generated_by": "benchmarks/profile_kernel.py",
        "version": __version__,
        "mode": "quick" if args.quick else "full",
        "parameters": {
            "n": n,
            "protocol": "lumiere",
            "f_actual": 0,
            "duration": duration,
            "seed": args.seed,
            "crypto_backend": args.backend,
            "top": args.top,
        },
        "run": {
            "profiled_wall_time": round(total_time, 4),
            "events_processed": result.simulator.events_processed,
            "decisions": result.honest_decisions(),
            "committed_blocks": result.committed_blocks(),
            "ledgers_consistent": result.ledgers_are_consistent(),
            "messages_sent": result.network.messages_sent,
            "messages_delivered": result.network.messages_delivered,
            "total_honest_messages": result.metrics.total_honest_messages,
        },
        "hotspots": {
            "by_cumulative_time": by_cumulative,
            "by_internal_time": by_internal,
        },
    }
    args.output.write_text(json.dumps(document, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {args.output}")

    stream = io.StringIO()
    stats.stream = stream  # type: ignore[attr-defined]
    stats.sort_stats("cumulative").print_stats(15)
    print(stream.getvalue())
    return 0


if __name__ == "__main__":
    sys.exit(main())
