"""Table 1, row "Eventual Worst-case Latency".

Paper: Cogsworth O(f_a^2 Delta + delta); NK20/LP22 O(n Delta); Fever and
Lumiere O(f_a Delta + delta).

We measure the largest gap between consecutive honest-leader decisions in
the steady state while sweeping ``f_a``.  The separation the paper
emphasises: Lumiere's gap scales with the number of *actual* faults, whereas
LP22's scales with ``n`` (a single Byzantine leader can stall it for the
remainder of an epoch).
"""

from __future__ import annotations

from repro.experiments.table1 import TABLE1_PROTOCOLS, eventual_complexity_sweep, format_rows


def test_eventual_latency_per_decision(
    benchmark, steady_state_n, campaign_backend, campaign_workers, campaign_cache
):
    n = steady_state_n
    f_max = (n - 1) // 3
    fault_counts = sorted({0, 1, f_max})

    def run():
        return eventual_complexity_sweep(
            protocols=TABLE1_PROTOCOLS,
            n=n,
            fault_counts=fault_counts,
            delta=1.0,
            actual_delay=0.1,
            seed=5,
            backend=campaign_backend,
            workers=campaign_workers,
            cache=campaign_cache,
        )

    rows = benchmark.pedantic(run, iterations=1, rounds=1)
    print()
    print(f"Table 1 / eventual (steady-state) worst decision gap, n={n}, Delta=1")
    print(format_rows(rows))
    benchmark.extra_info["rows"] = [row.as_dict() for row in rows]

    def eventual_latency(protocol, f_a):
        for row in rows:
            if row.protocol == protocol and row.f_actual == f_a:
                return row.eventual_latency
        return None

    # Fault-free: Lumiere and Fever run at network speed (<< Delta per decision);
    # LP22 pays the epoch-boundary clock wait, which scales with n * Delta.
    for responsive in ("lumiere", "fever"):
        value = eventual_latency(responsive, 0)
        assert value is not None and value < 1.0, (
            f"{responsive} fault-free steady-state gap {value} is not O(delta)"
        )
    lp22_value = eventual_latency("lp22", 0)
    assert lp22_value is not None and lp22_value > 1.0

    # With faults, Lumiere's gap grows with f_a but stays far below LP22's
    # epoch-scale stall at the same fault level.
    lumiere_f = eventual_latency("lumiere", f_max)
    assert lumiere_f is not None
    gamma_lumiere = 2 * (4 + 2) * 1.0
    assert lumiere_f <= 2 * f_max * gamma_lumiere + 6.0
