"""Figure 1: the LP22 single-faulty-leader pathology, and how Lumiere avoids it.

The paper's Figure 1 shows an LP22 epoch in which the first leaders produce
QCs at network speed, a faulty leader near the end of the epoch stalls, and
honest processors must wait out almost the rest of the epoch's clock time
before the next heavy synchronisation.  The same single fault under Lumiere
costs a constant number of its view time Gamma, because QCs bump clocks
forward and keep them aligned with the view number.

The benchmark runs the scenario at two system sizes and reports the decision
timelines; the assertions check the shape: LP22's worst stall grows with
``n`` (an epoch-scale wait), Lumiere's does not.
"""

from __future__ import annotations

from repro.experiments.figure1 import figure1_sweep


def test_figure1_single_silent_leader(
    benchmark, bench_sizes, campaign_backend, campaign_workers, campaign_cache
):
    small, large = bench_sizes[0], bench_sizes[-1]

    def run():
        # duration=None scales each cell's run with n (300 + 120 n).
        return figure1_sweep(
            (small, large),
            delta=1.0,
            actual_delay=0.05,
            duration=None,
            seed=0,
            backend=campaign_backend,
            workers=campaign_workers,
            cache=campaign_cache,
        )

    figures = benchmark.pedantic(run, iterations=1, rounds=1)
    print()
    print("Figure 1 / one silent Byzantine leader, delta = 0.05, Delta = 1")
    for n, figure in figures.items():
        print(f"  {figure.describe()}")
        benchmark.extra_info[f"n{n}_lp22_max_gap"] = figure.lp22_max_gap
        benchmark.extra_info[f"n{n}_lumiere_max_gap"] = figure.lumiere_max_gap

    small_fig, large_fig = figures[small], figures[large]
    # LP22 loses an epoch-scale wait: on the order of f view times at the larger size.
    f_large = (large - 1) // 3
    assert large_fig.lp22_max_gap >= f_large * large_fig.lp22_gamma
    # Lumiere's stall stays a small constant multiple of its Gamma at every size.
    assert small_fig.lumiere_max_gap <= 5 * small_fig.lumiere_gamma
    assert large_fig.lumiere_max_gap <= 5 * large_fig.lumiere_gamma
    # And LP22's stall grows with n while Lumiere's does not grow meaningfully.
    assert large_fig.lp22_max_gap > small_fig.lp22_max_gap
    assert large_fig.lumiere_max_gap <= small_fig.lumiere_max_gap + large_fig.lumiere_gamma
