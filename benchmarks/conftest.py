"""Shared configuration for the benchmark suite.

Every benchmark regenerates one artefact of the paper (a Table-1 row group,
Figure 1, or a Theorem-1.1 property) by running the simulator and reporting
the measured quantities both on stdout and in ``benchmark.extra_info`` (so
they land in ``--benchmark-json`` output).

Set ``REPRO_BENCH_QUICK=1`` to shrink system sizes and run durations by
roughly 4x; the scaling *shapes* survive, the absolute counts get noisier.
"""

from __future__ import annotations

import os

import pytest


def quick_mode() -> bool:
    """Whether the benchmarks should run in quick (CI-sized) mode."""
    return os.environ.get("REPRO_BENCH_QUICK", "0") not in ("0", "", "false", "False")


@pytest.fixture(scope="session")
def bench_sizes() -> tuple[int, ...]:
    """System sizes swept by the worst-case benchmarks."""
    return (4, 7) if quick_mode() else (4, 7, 10)


@pytest.fixture(scope="session")
def steady_state_n() -> int:
    """System size used by the steady-state (eventual) benchmarks."""
    return 7
