"""Shared configuration for the benchmark suite.

Every benchmark regenerates one artefact of the paper (a Table-1 row group,
Figure 1, or a Theorem-1.1 property) by running a campaign over the
simulator and reporting the measured quantities both on stdout and in
``benchmark.extra_info`` (so they land in ``--benchmark-json`` output).

Environment knobs:

* ``REPRO_BENCH_QUICK=1`` — shrink system sizes and run durations by
  roughly 4x; the scaling *shapes* survive, the absolute counts get noisier.
* ``REPRO_BENCH_BACKEND=process`` — execute campaign cells on a process
  pool instead of serially (the default).  On a multi-core machine this
  speeds the sweep-heavy benchmarks up by roughly the core count.
* ``REPRO_BENCH_WORKERS=N`` — worker count for the process backend
  (defaults to the executor's own default, i.e. the CPU count).
* ``REPRO_BENCH_CACHE=DIR`` — reuse campaign results across benchmark runs
  via the on-disk result cache rooted at ``DIR``.  Leave unset (the
  default) to measure real simulation work.
"""

from __future__ import annotations

import os
from typing import Optional

import pytest


def quick_mode() -> bool:
    """Whether the benchmarks should run in quick (CI-sized) mode."""
    return os.environ.get("REPRO_BENCH_QUICK", "0") not in ("0", "", "false", "False")


@pytest.fixture(scope="session")
def bench_sizes() -> tuple[int, ...]:
    """System sizes swept by the worst-case benchmarks."""
    return (4, 7) if quick_mode() else (4, 7, 10)


@pytest.fixture(scope="session")
def steady_state_n() -> int:
    """System size used by the steady-state (eventual) benchmarks."""
    return 7


@pytest.fixture(scope="session")
def campaign_backend() -> str:
    """Campaign executor backend used by every benchmark sweep."""
    return os.environ.get("REPRO_BENCH_BACKEND", "serial")


@pytest.fixture(scope="session")
def campaign_workers() -> Optional[int]:
    """Worker count for the process backend (``None`` = executor default)."""
    value = os.environ.get("REPRO_BENCH_WORKERS", "")
    return int(value) if value else None


@pytest.fixture(scope="session")
def campaign_cache() -> Optional[str]:
    """Result-cache directory shared by the benchmarks (``None`` = no cache)."""
    return os.environ.get("REPRO_BENCH_CACHE") or None
