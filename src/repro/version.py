"""Package version, kept in a tiny module so nothing heavy is imported for it."""

__version__ = "1.9.0"
