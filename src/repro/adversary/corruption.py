"""Corruption plans: which processors are Byzantine and how they behave."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping

from repro.adversary.behaviours import Behaviour, HonestBehaviour
from repro.config import ProtocolConfig
from repro.errors import ConfigurationError


@dataclass
class CorruptionPlan:
    """Maps corrupted processor ids to their behaviours.

    The plan validates that at most ``f`` processors are corrupted, matching
    the resilience bound of the model.
    """

    config: ProtocolConfig
    behaviours: dict[int, Behaviour] = field(default_factory=dict)

    def __post_init__(self) -> None:
        invalid = [pid for pid in self.behaviours if pid not in self.config.processor_ids]
        if invalid:
            raise ConfigurationError(f"corrupted ids {invalid} are not valid processor ids")
        if len(self.behaviours) > self.config.f:
            raise ConfigurationError(
                f"cannot corrupt {len(self.behaviours)} processors; at most f={self.config.f}"
            )

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def none(cls, config: ProtocolConfig) -> "CorruptionPlan":
        """A fault-free plan."""
        return cls(config=config, behaviours={})

    @classmethod
    def uniform(
        cls,
        config: ProtocolConfig,
        corrupted: Iterable[int],
        behaviour_factory: Callable[[], Behaviour],
    ) -> "CorruptionPlan":
        """Corrupt the given processors, each with a fresh behaviour instance."""
        return cls(
            config=config,
            behaviours={pid: behaviour_factory() for pid in corrupted},
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def corrupted_ids(self) -> set[int]:
        """Ids of corrupted processors."""
        return set(self.behaviours)

    @property
    def honest_ids(self) -> set[int]:
        """Ids of processors that are never corrupted."""
        return set(self.config.processor_ids) - self.corrupted_ids

    @property
    def f_actual(self) -> int:
        """The actual number of faults ``f_a`` in this plan."""
        return len(self.behaviours)

    def behaviour_for(self, pid: int) -> Behaviour:
        """The behaviour of processor ``pid`` (honest by default)."""
        return self.behaviours.get(pid, HonestBehaviour())

    def describe(self) -> Mapping[int, str]:
        """Mapping of corrupted pid -> behaviour description."""
        return {pid: behaviour.describe() for pid, behaviour in sorted(self.behaviours.items())}
