"""Pre-packaged adversarial setups used by the benchmarks.

The separations in Table 1 only show up under specific adversarial
schedules.  This module provides the ones the paper discusses:

* worst-case clock dispersion via pre-GST asynchrony (drives the worst-case
  communication / latency rows),
* a silent Byzantine leader placed so that it owns the tail views of an
  epoch (drives the LP22 pathology of Figure 1 and the eventual-latency
  separation), and
* evenly spread corruptions for the ``f_a`` sweeps of the eventual rows.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.adversary.behaviours import Behaviour, SilentLeaderBehaviour
from repro.adversary.corruption import CorruptionPlan
from repro.config import ProtocolConfig
from repro.sim.network import DelayModel, FixedDelay, PreGSTChaos


def spread_corruption(
    config: ProtocolConfig,
    f_actual: int,
    behaviour_factory: Callable[[], Behaviour] = SilentLeaderBehaviour,
    avoid: Optional[set[int]] = None,
) -> CorruptionPlan:
    """Corrupt ``f_actual`` processors spread evenly over the id space.

    Spreading (rather than corrupting a contiguous prefix) makes the faulty
    leaders alternate with honest ones under round-robin schedules, which is
    the pattern the eventual-latency analysis assumes.  ``avoid`` lists ids
    that must stay honest (e.g. a designated observer).
    """
    avoid = avoid or set()
    candidates = [pid for pid in config.processor_ids if pid not in avoid]
    if f_actual > len(candidates):
        f_actual = len(candidates)
    if f_actual <= 0:
        return CorruptionPlan.none(config)
    stride = max(1, len(candidates) // f_actual)
    corrupted = [candidates[(i * stride) % len(candidates)] for i in range(f_actual)]
    # Deduplicate while preserving order, then top up if collisions occurred.
    unique: list[int] = []
    for pid in corrupted:
        if pid not in unique:
            unique.append(pid)
    for pid in candidates:
        if len(unique) >= f_actual:
            break
        if pid not in unique:
            unique.append(pid)
    return CorruptionPlan.uniform(config, unique[:f_actual], behaviour_factory)


def epoch_tail_corruption(
    config: ProtocolConfig,
    epoch_length: int,
    epoch_index: int = 1,
    behaviour_factory: Callable[[], Behaviour] = SilentLeaderBehaviour,
) -> CorruptionPlan:
    """Corrupt the round-robin leader of the *last* view of ``epoch_index``.

    Under LP22's schedule (``lead(v) = v mod n``, epochs of ``f+1`` views)
    this places a silent leader at the tail of the chosen epoch: the earlier
    views of the epoch produce QCs at network speed, the tail view stalls,
    and honest processors must wait out the rest of the epoch's clock time —
    the Figure 1 pathology.
    """
    last_view = (epoch_index + 1) * epoch_length - 1
    corrupted = last_view % config.n
    return CorruptionPlan.uniform(config, [corrupted], behaviour_factory)


def lp22_tail_attack_plan(
    config: ProtocolConfig,
    behaviour_factory: Callable[[], Behaviour] = SilentLeaderBehaviour,
) -> CorruptionPlan:
    """The single-Byzantine-processor attack that gives LP22 Omega(n*Delta) gaps.

    One silent leader suffices: whenever its view falls late in an epoch, all
    QCs produced early in the epoch were fast, clocks lag far behind, and the
    epoch cannot finish until clocks grind through the remaining views.
    """
    return epoch_tail_corruption(
        config, epoch_length=config.f + 1, epoch_index=1, behaviour_factory=behaviour_factory
    )


def worst_case_clock_dispersion_model(
    config: ProtocolConfig,
    actual_delay: float,
    pre_gst_max_delay: Optional[float] = None,
) -> DelayModel:
    """A delay model that maximises clock dispersion before GST.

    Messages sent before GST are delayed close to the maximum the model
    allows, so processors make unequal progress before GST and start the
    post-GST period with views and clocks spread apart — the situation the
    worst-case rows of Table 1 are about.
    """
    if pre_gst_max_delay is None:
        pre_gst_max_delay = 100.0 * config.delta
    return PreGSTChaos(FixedDelay(actual_delay), pre_gst_max_delay=pre_gst_max_delay)
