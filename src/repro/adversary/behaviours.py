"""Byzantine behaviours.

A :class:`Behaviour` is attached to a replica and consulted by the consensus
engine and the pacemaker at the points where a Byzantine processor could
deviate: proposing, voting, broadcasting QCs, and participating in view
synchronisation.  The default :class:`HonestBehaviour` never deviates.

Behaviours deliberately express *omission and timing* faults plus
equivocation — the deviations that actually matter for the paper's results.
(Arbitrary message forgery is impossible by construction of the simulated
cryptography: a Byzantine processor can only sign in its own name.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


class Behaviour:
    """Base class: answers the engine's and pacemaker's "may I / should I" queries.

    The default implementation is fully honest.  Subclasses override the
    hooks relevant to their deviation.  ``is_byzantine`` distinguishes
    corrupted processors for metrics purposes (corrupted processors' messages
    are not counted in communication complexity).
    """

    is_byzantine: bool = False

    # --- consensus-engine hooks -------------------------------------------------
    def suppress_proposal(self, view: int) -> bool:
        """Return True to make the leader stay silent instead of proposing."""
        return False

    def proposal_delay(self, view: int) -> float:
        """Extra delay (in time units) before the leader sends its proposal."""
        return 0.0

    def equivocate(self, view: int) -> bool:
        """Return True to make the leader propose two conflicting blocks."""
        return False

    def suppress_vote(self, view: int) -> bool:
        """Return True to withhold this replica's vote in ``view``."""
        return False

    def suppress_qc_broadcast(self, view: int) -> bool:
        """Return True to make the leader withhold the QC it formed."""
        return False

    def qc_broadcast_delay(self, view: int) -> float:
        """Extra delay before the leader broadcasts a formed QC."""
        return 0.0

    # --- pacemaker hooks ----------------------------------------------------------
    def suppress_view_sync(self, kind: str, view: int) -> bool:
        """Return True to withhold a view-synchronisation message.

        ``kind`` identifies the message class (e.g. ``"view"``, ``"epoch_view"``,
        ``"vc"``, ``"wish"``); ``view`` is the view it concerns.
        """
        return False

    # --- lifecycle ---------------------------------------------------------------
    def crash_time(self) -> Optional[float]:
        """If not ``None``, the simulation time at which this processor halts."""
        return None

    def describe(self) -> str:
        """Human-readable description used in scenario reports."""
        return type(self).__name__


class HonestBehaviour(Behaviour):
    """Never deviates."""


@dataclass
class CrashBehaviour(Behaviour):
    """Crash-stop at a given time (benign fault)."""

    at_time: float = 0.0
    is_byzantine: bool = True

    def crash_time(self) -> Optional[float]:
        return self.at_time

    def describe(self) -> str:
        return f"CrashBehaviour(at={self.at_time})"


class SilentLeaderBehaviour(Behaviour):
    """Participates normally except it never proposes when it is the leader.

    This is the canonical fault for latency attacks: a silent leader forces
    every honest processor to wait out the full view timer.
    """

    is_byzantine = True

    def suppress_proposal(self, view: int) -> bool:
        return True

    def suppress_qc_broadcast(self, view: int) -> bool:
        return True


@dataclass
class SlowLeaderBehaviour(Behaviour):
    """Delays proposals and QC broadcasts by a fixed amount when leader.

    Used to exercise Lumiere's QC-production deadline: a QC produced too late
    must not be produced at all by an honest leader, and a Byzantine leader
    producing one late cannot slow the honest processors down by more than
    Gamma per view it controls.
    """

    delay: float = 0.0
    is_byzantine: bool = True

    def proposal_delay(self, view: int) -> float:
        return self.delay

    def qc_broadcast_delay(self, view: int) -> float:
        return self.delay

    def describe(self) -> str:
        return f"SlowLeaderBehaviour(delay={self.delay})"


class EquivocatingBehaviour(Behaviour):
    """Proposes two conflicting blocks to different halves of the processors."""

    is_byzantine = True

    def equivocate(self, view: int) -> bool:
        return True


class MuteViewSyncBehaviour(Behaviour):
    """Votes and proposes, but never sends any view-synchronisation message.

    Against epoch-based protocols this withholds epoch-view messages so that
    honest processors must reach the 2f+1 threshold among themselves.
    """

    is_byzantine = True

    def suppress_view_sync(self, kind: str, view: int) -> bool:
        return True


class WithholdQCBehaviour(Behaviour):
    """Forms QCs as leader but never broadcasts them (omission at the worst point)."""

    is_byzantine = True

    def suppress_qc_broadcast(self, view: int) -> bool:
        return True
