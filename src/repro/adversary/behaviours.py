"""Byzantine behaviours.

A :class:`Behaviour` is attached to a replica and consulted by the consensus
engine and the pacemaker at the points where a Byzantine processor could
deviate: proposing, voting, broadcasting QCs, and participating in view
synchronisation.  The default :class:`HonestBehaviour` never deviates.

Behaviours deliberately express *omission and timing* faults plus
equivocation — the deviations that actually matter for the paper's results.
(Arbitrary message forgery is impossible by construction of the simulated
cryptography: a Byzantine processor can only sign in its own name.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


class Behaviour:
    """Base class: answers the engine's and pacemaker's "may I / should I" queries.

    The default implementation is fully honest.  Subclasses override the
    hooks relevant to their deviation.  ``is_byzantine`` distinguishes
    corrupted processors for metrics purposes (corrupted processors' messages
    are not counted in communication complexity).
    """

    is_byzantine: bool = False

    # --- consensus-engine hooks -------------------------------------------------
    def suppress_proposal(self, view: int) -> bool:
        """Return True to make the leader stay silent instead of proposing."""
        return False

    def proposal_delay(self, view: int) -> float:
        """Extra delay (in time units) before the leader sends its proposal."""
        return 0.0

    def equivocate(self, view: int) -> bool:
        """Return True to make the leader propose two conflicting blocks."""
        return False

    def suppress_vote(self, view: int) -> bool:
        """Return True to withhold this replica's vote in ``view``."""
        return False

    def suppress_qc_broadcast(self, view: int) -> bool:
        """Return True to make the leader withhold the QC it formed."""
        return False

    def qc_broadcast_delay(self, view: int) -> float:
        """Extra delay before the leader broadcasts a formed QC."""
        return 0.0

    # --- pacemaker hooks ----------------------------------------------------------
    def suppress_view_sync(self, kind: str, view: int) -> bool:
        """Return True to withhold a view-synchronisation message.

        ``kind`` identifies the message class (e.g. ``"view"``, ``"epoch_view"``,
        ``"vc"``, ``"wish"``); ``view`` is the view it concerns.
        """
        return False

    # --- lifecycle ---------------------------------------------------------------
    def crash_time(self) -> Optional[float]:
        """If not ``None``, the simulation time at which this processor halts."""
        return None

    def recover_time(self) -> Optional[float]:
        """If not ``None``, the time at which a crashed processor restarts.

        Only meaningful together with :meth:`crash_time`; must be strictly
        after it.  ``None`` (the default) means a crash is permanent.
        """
        return None

    def downtime_windows(self) -> list[tuple[float, Optional[float]]]:
        """All ``(crash_at, recover_at)`` windows, in increasing order.

        The general lifecycle hook: a replica crashes at the start of each
        window and recovers at its end (``None`` end = never).  The default
        derives a single window from :meth:`crash_time` / :meth:`recover_time`;
        churn behaviours override this to cycle through many windows.
        """
        crash_at = self.crash_time()
        if crash_at is None:
            return []
        return [(crash_at, self.recover_time())]

    def describe(self) -> str:
        """Human-readable description used in scenario reports."""
        return type(self).__name__


class HonestBehaviour(Behaviour):
    """Never deviates."""


@dataclass
class CrashBehaviour(Behaviour):
    """Crash-stop at a given time (benign fault), optionally recovering later."""

    at_time: float = 0.0
    is_byzantine: bool = True
    #: When set, the processor restarts at this time (must exceed ``at_time``).
    recover_at: Optional[float] = None

    def crash_time(self) -> Optional[float]:
        return self.at_time

    def recover_time(self) -> Optional[float]:
        return self.recover_at

    def describe(self) -> str:
        if self.recover_at is None:
            return f"CrashBehaviour(at={self.at_time})"
        return f"CrashBehaviour(at={self.at_time}, recover_at={self.recover_at})"


@dataclass
class ChurnBehaviour(Behaviour):
    """Repeated crash/recovery cycles: down for ``downtime`` out of every ``period``.

    Starting at ``first_crash``, the processor crashes, stays down for
    ``downtime`` time units, recovers, and repeats every ``period`` time units
    for ``cycles`` cycles (the last recovery still happens, so the processor
    ends the run alive).  This models restart churn — processors that keep
    rejoining the protocol with their local clocks intact but having missed
    messages.
    """

    first_crash: float = 0.0
    downtime: float = 1.0
    period: float = 10.0
    cycles: int = 3
    is_byzantine: bool = True

    def __post_init__(self) -> None:
        if self.downtime <= 0 or self.period <= self.downtime:
            raise ValueError(
                f"need 0 < downtime < period, got downtime={self.downtime}, "
                f"period={self.period}"
            )
        if self.cycles < 1:
            raise ValueError(f"cycles must be >= 1, got {self.cycles}")

    def downtime_windows(self) -> list[tuple[float, Optional[float]]]:
        return [
            (
                self.first_crash + index * self.period,
                self.first_crash + index * self.period + self.downtime,
            )
            for index in range(self.cycles)
        ]

    def describe(self) -> str:
        return (
            f"ChurnBehaviour(first={self.first_crash}, down={self.downtime}, "
            f"period={self.period}, cycles={self.cycles})"
        )


class SilentLeaderBehaviour(Behaviour):
    """Participates normally except it never proposes when it is the leader.

    This is the canonical fault for latency attacks: a silent leader forces
    every honest processor to wait out the full view timer.
    """

    is_byzantine = True

    def suppress_proposal(self, view: int) -> bool:
        return True

    def suppress_qc_broadcast(self, view: int) -> bool:
        return True


@dataclass
class SlowLeaderBehaviour(Behaviour):
    """Delays proposals and QC broadcasts by a fixed amount when leader.

    Used to exercise Lumiere's QC-production deadline: a QC produced too late
    must not be produced at all by an honest leader, and a Byzantine leader
    producing one late cannot slow the honest processors down by more than
    Gamma per view it controls.
    """

    delay: float = 0.0
    is_byzantine: bool = True

    def proposal_delay(self, view: int) -> float:
        return self.delay

    def qc_broadcast_delay(self, view: int) -> float:
        return self.delay

    def describe(self) -> str:
        return f"SlowLeaderBehaviour(delay={self.delay})"


class EquivocatingBehaviour(Behaviour):
    """Proposes two conflicting blocks to different halves of the processors."""

    is_byzantine = True

    def equivocate(self, view: int) -> bool:
        return True


class MuteViewSyncBehaviour(Behaviour):
    """Votes and proposes, but never sends any view-synchronisation message.

    Against epoch-based protocols this withholds epoch-view messages so that
    honest processors must reach the 2f+1 threshold among themselves.
    """

    is_byzantine = True

    def suppress_view_sync(self, kind: str, view: int) -> bool:
        return True


class WithholdQCBehaviour(Behaviour):
    """Forms QCs as leader but never broadcasts them (omission at the worst point)."""

    is_byzantine = True

    def suppress_qc_broadcast(self, view: int) -> bool:
        return True
