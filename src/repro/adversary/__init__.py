"""Adversary models: corruptions, Byzantine behaviours and attack strategies.

The adversary in the partial synchrony model controls (a) which up-to-``f``
processors are corrupted and how they misbehave, (b) GST, and (c) message
delays subject to the post-GST bound.  (a) is expressed here as a
:class:`CorruptionPlan` mapping processor ids to :class:`Behaviour` objects;
(b) and (c) are expressed through :class:`~repro.sim.network.NetworkConfig`
and :class:`~repro.sim.network.DelayModel` (see :mod:`repro.adversary.attacks`
for pre-packaged worst-case schedules).
"""

from repro.adversary.behaviours import (
    Behaviour,
    ChurnBehaviour,
    CrashBehaviour,
    EquivocatingBehaviour,
    HonestBehaviour,
    MuteViewSyncBehaviour,
    SilentLeaderBehaviour,
    SlowLeaderBehaviour,
    WithholdQCBehaviour,
)
from repro.adversary.corruption import CorruptionPlan
from repro.adversary.attacks import (
    epoch_tail_corruption,
    lp22_tail_attack_plan,
    spread_corruption,
    worst_case_clock_dispersion_model,
)

__all__ = [
    "Behaviour",
    "ChurnBehaviour",
    "CorruptionPlan",
    "CrashBehaviour",
    "EquivocatingBehaviour",
    "HonestBehaviour",
    "MuteViewSyncBehaviour",
    "SilentLeaderBehaviour",
    "SlowLeaderBehaviour",
    "WithholdQCBehaviour",
    "epoch_tail_corruption",
    "lp22_tail_attack_plan",
    "spread_corruption",
    "worst_case_clock_dispersion_model",
]
