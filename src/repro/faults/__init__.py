"""Fault injection: composable network schedules and the named scenario library.

This package is the adversarial half of the reproduction's workload surface:

* :mod:`repro.faults.schedules` — composable
  :class:`~repro.sim.network.DelayModel` subclasses shaping delays by time
  (intermittent synchrony), topology (partitions), target (rotating
  leader-DoS) or traffic class (view-sync vs. consensus throttling);
* :mod:`repro.faults.library` — a registry of named, parameterised scenarios
  combining schedules with corruption plans.  A scenario name is a valid
  :class:`~repro.runner.campaign.Sweep` axis value via
  ``ScenarioConfig(scenario=...)``, so campaigns sweep the adversarial design
  space the same way they sweep system sizes or seeds.

Everything here proposes delays *within* the partial-synchrony envelope: the
network still clamps every delivery to ``max(GST, send_time) + Delta``, so no
schedule can break the model — only fill it.
"""

from repro.faults.library import (
    FaultScenario,
    ScenarioParameter,
    available_scenarios,
    get_scenario,
    scenario,
    scenario_catalogue,
)
from repro.faults.schedules import (
    MESSAGE_CLASSES,
    IntermittentSynchrony,
    MessageClassDelay,
    PartitionSchedule,
    RotatingLeaderDelay,
)

__all__ = [
    "MESSAGE_CLASSES",
    "FaultScenario",
    "IntermittentSynchrony",
    "MessageClassDelay",
    "PartitionSchedule",
    "RotatingLeaderDelay",
    "ScenarioParameter",
    "available_scenarios",
    "get_scenario",
    "scenario",
    "scenario_catalogue",
]
