"""Composable adversarial network schedules.

A *schedule* is a :class:`~repro.sim.network.DelayModel` that shapes message
delays as a function of simulation time, topology, or traffic class — the
three levers the partial-synchrony adversary actually has.  Schedules wrap a
``base`` model and perturb only the traffic they target, so they compose:
an :class:`IntermittentSynchrony` whose chaotic phase is a
:class:`PartitionSchedule` is a network that periodically splits in half.

Every schedule here respects the model envelope by construction: the network
still clamps delivery to ``max(GST, send_time) + Delta``, so a schedule can
*propose* arbitrarily hostile delays without ever violating partial
synchrony.  The practical consequence is documented per class (e.g. a
partition whose heal time exceeds ``GST + Delta`` is cut short by the
clamp — pair partitions with a GST at or after the heal time).

All schedules implement a parameter-faithful ``describe()`` so campaign run
keys and the on-disk result cache stay sound (see
:func:`repro.runner.campaign.config_fingerprint`).
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence

from repro.consensus.messages import ConsensusMessage
from repro.errors import ConfigurationError
from repro.pacemakers.base import PacemakerMessage
from repro.sim.events import Simulator
from repro.sim.network import DelayModel, PendingSend

#: Traffic classes understood by :class:`MessageClassDelay`.
MESSAGE_CLASSES = ("view-sync", "consensus")


class PartitionSchedule(DelayModel):
    """Split the processors into groups between ``split_at`` and ``heal_at``.

    Messages crossing group boundaries while the partition holds are delayed
    until the heal time (plus ``flush_delay``); traffic within a group, and
    all traffic outside the split window, uses the ``base`` model.

    Parameters
    ----------
    base:
        Delay model for unaffected traffic (and for cross-group traffic
        outside the split window).
    groups:
        Disjoint processor-id groups.  Processors not listed in any group are
        unrestricted (they can talk across the split — e.g. a designated
        observer).
    split_at:
        Time the partition forms.
    heal_at:
        Time the partition heals.  Must exceed ``split_at``.  To model a
        *real* partition the heal time must not exceed ``GST + Delta``: the
        network clamp delivers every message by ``max(GST, send) + Delta``
        regardless of what this schedule proposes, so a later heal is cut
        short.  The named library scenarios pair ``heal_at`` with GST for
        exactly this reason.
    flush_delay:
        Extra delay applied to cross-group messages after the heal, modelling
        the backlog flush of a real partition (default ``0.0``: the backlog
        arrives the instant the partition heals).
    """

    def __init__(
        self,
        base: DelayModel,
        groups: Sequence[Iterable[int]],
        split_at: float,
        heal_at: float,
        flush_delay: float = 0.0,
    ) -> None:
        if heal_at <= split_at:
            raise ConfigurationError(
                f"heal_at must exceed split_at, got split_at={split_at}, heal_at={heal_at}"
            )
        if flush_delay < 0:
            raise ConfigurationError(f"flush_delay must be non-negative, got {flush_delay}")
        self.base = base
        self.groups = tuple(tuple(sorted(group)) for group in groups)
        if len(self.groups) < 2:
            raise ConfigurationError("a partition needs at least two groups")
        self.split_at = split_at
        self.heal_at = heal_at
        self.flush_delay = flush_delay
        self._group_of: dict[int, int] = {}
        for index, group in enumerate(self.groups):
            for pid in group:
                if pid in self._group_of:
                    raise ConfigurationError(f"processor {pid} appears in two groups")
                self._group_of[pid] = index

    def _crosses_split(self, envelope_info: PendingSend) -> bool:
        sender_group = self._group_of.get(envelope_info.sender)
        recipient_group = self._group_of.get(envelope_info.recipient)
        if sender_group is None or recipient_group is None:
            return False
        return sender_group != recipient_group

    def propose_delay(self, envelope_info: PendingSend, sim: Simulator) -> float:
        send_time = envelope_info.send_time
        if self.split_at <= send_time < self.heal_at and self._crosses_split(envelope_info):
            return (self.heal_at - send_time) + self.flush_delay
        return self.base.propose_delay(envelope_info, sim)

    def describe(self) -> str:
        groups = ";".join("-".join(str(pid) for pid in group) for group in self.groups)
        return (
            f"Partition(groups=[{groups}], split={self.split_at}, heal={self.heal_at}, "
            f"flush={self.flush_delay}, base={self.base.describe()})"
        )


class IntermittentSynchrony(DelayModel):
    """Alternate between a calm and a chaotic delay model in fixed windows.

    Starting at ``start`` the network cycles: ``calm_duration`` time units
    governed by ``calm``, then ``chaos_duration`` governed by ``chaotic``,
    repeating forever.  Before ``start`` the network is calm.  This models
    the adversary the paper's liveness argument must survive: synchrony that
    keeps lapsing *after* GST within the ``Delta`` envelope (the chaotic
    model's proposals are still clamped to ``max(GST, send) + Delta``).

    Parameters
    ----------
    calm:
        Delay model during calm windows (typically network-speed).
    chaotic:
        Delay model during chaotic windows (typically near the ``Delta``
        envelope, a partition, or targeted delays).
    calm_duration, chaos_duration:
        Window lengths; both must be positive.
    start:
        When the alternation begins (default ``0.0``).  A *calm* window
        opens at ``start``; the first chaotic window begins at
        ``start + calm_duration``.
    """

    def __init__(
        self,
        calm: DelayModel,
        chaotic: DelayModel,
        calm_duration: float,
        chaos_duration: float,
        start: float = 0.0,
    ) -> None:
        if calm_duration <= 0 or chaos_duration <= 0:
            raise ConfigurationError(
                f"window lengths must be positive, got calm={calm_duration}, "
                f"chaos={chaos_duration}"
            )
        self.calm = calm
        self.chaotic = chaotic
        self.calm_duration = calm_duration
        self.chaos_duration = chaos_duration
        self.start = start

    def in_chaos(self, time: float) -> bool:
        """Whether ``time`` falls inside a chaotic window."""
        if time < self.start:
            return False
        offset = (time - self.start) % (self.calm_duration + self.chaos_duration)
        return offset >= self.calm_duration

    def propose_delay(self, envelope_info: PendingSend, sim: Simulator) -> float:
        model = self.chaotic if self.in_chaos(envelope_info.send_time) else self.calm
        return model.propose_delay(envelope_info, sim)

    def describe(self) -> str:
        return (
            f"IntermittentSynchrony(calm={self.calm_duration}@{self.calm.describe()}, "
            f"chaos={self.chaos_duration}@{self.chaotic.describe()}, start={self.start})"
        )


class RotatingLeaderDelay(DelayModel):
    """Targeted denial-of-service that follows the leader schedule.

    At time ``t`` the attack estimates the current view as
    ``int(t / view_duration)`` and delays traffic touching that view's leader
    by ``target_delay``; everyone else uses ``base``.  With the default
    round-robin ``leader_fn`` (``view % n``) this tracks the rotation used by
    the epoch-based baselines; pass a custom ``leader_fn`` (with a ``name``)
    to key the attack off a pseudo-random
    :class:`~repro.core.leader_schedule.LeaderSchedule`.

    Parameters
    ----------
    base:
        Delay model for traffic not touching the current victim.
    n:
        System size (used by the default round-robin victim rotation).
    view_duration:
        The attacker's estimate of wall-clock time per view; must be positive.
    target_delay:
        Proposed delay for victim traffic (values above ``Delta`` are clamped
        by the network envelope after GST — proposing huge values is how this
        schedule pins the victim at the worst legal delay).
    leader_fn:
        Optional ``view -> leader pid`` override.  Requires ``name``.
    name:
        Stable identifier for a custom ``leader_fn``, used in ``describe()``
        (and hence campaign cache keys).
    direction:
        ``"to"`` (victim's inbound traffic, the default), ``"from"``, or
        ``"both"``.
    """

    def __init__(
        self,
        base: DelayModel,
        n: int,
        view_duration: float,
        target_delay: float,
        leader_fn: Optional[Callable[[int], int]] = None,
        name: str = "",
        direction: str = "to",
    ) -> None:
        if n < 1:
            raise ConfigurationError(f"n must be positive, got {n}")
        if view_duration <= 0:
            raise ConfigurationError(f"view_duration must be positive, got {view_duration}")
        if direction not in ("to", "from", "both"):
            raise ConfigurationError(f"direction must be 'to', 'from' or 'both', got {direction!r}")
        if leader_fn is not None and not name:
            raise ConfigurationError(
                "a custom leader_fn needs a stable name for describe() "
                "(campaign cache keys depend on it)"
            )
        self.base = base
        self.n = n
        self.view_duration = view_duration
        self.target_delay = target_delay
        self.leader_fn = leader_fn
        self.name = name or "round-robin"
        self.direction = direction

    def victim_at(self, time: float) -> int:
        """The processor under attack at simulation time ``time``."""
        view = int(time / self.view_duration)
        if self.leader_fn is not None:
            return self.leader_fn(view)
        return view % self.n

    def propose_delay(self, envelope_info: PendingSend, sim: Simulator) -> float:
        victim = self.victim_at(envelope_info.send_time)
        hit = False
        if self.direction in ("to", "both") and envelope_info.recipient == victim:
            hit = True
        if self.direction in ("from", "both") and envelope_info.sender == victim:
            hit = True
        if hit:
            return self.target_delay
        return self.base.propose_delay(envelope_info, sim)

    def describe(self) -> str:
        return (
            f"RotatingLeaderDelay(n={self.n}, view_duration={self.view_duration}, "
            f"delay={self.target_delay}, schedule={self.name}, "
            f"direction={self.direction}, base={self.base.describe()})"
        )


class MessageClassDelay(DelayModel):
    """Delay only one class of protocol traffic.

    ``match`` selects the class: ``"view-sync"`` matches every
    :class:`~repro.pacemakers.base.PacemakerMessage` (view messages, view
    certificates, epoch syncs, wishes), ``"consensus"`` matches every
    :class:`~repro.consensus.messages.ConsensusMessage` (proposals, votes, QC
    announcements).  Matching traffic is delayed by ``delay``; everything
    else uses ``base``.  This isolates which half of a protocol its liveness
    actually rides on — e.g. Lumiere's view synchronisation under throttled
    sync traffic but fast proposals, or vice versa.

    Parameters
    ----------
    base:
        Delay model for non-matching traffic.
    match:
        One of :data:`MESSAGE_CLASSES`.
    delay:
        Proposed delay for matching traffic (clamped to the partial-synchrony
        envelope by the network).
    """

    def __init__(self, base: DelayModel, match: str, delay: float) -> None:
        if match not in MESSAGE_CLASSES:
            raise ConfigurationError(
                f"match must be one of {MESSAGE_CLASSES}, got {match!r}"
            )
        if delay < 0:
            raise ConfigurationError(f"delay must be non-negative, got {delay}")
        self.base = base
        self.match = match
        self.delay = delay

    def matches(self, payload: object) -> bool:
        """Whether ``payload`` belongs to the targeted traffic class."""
        if self.match == "view-sync":
            return isinstance(payload, PacemakerMessage)
        return isinstance(payload, ConsensusMessage)

    def propose_delay(self, envelope_info: PendingSend, sim: Simulator) -> float:
        if self.matches(envelope_info.payload):
            return self.delay
        return self.base.propose_delay(envelope_info, sim)

    def describe(self) -> str:
        return (
            f"MessageClassDelay(match={self.match}, delay={self.delay}, "
            f"base={self.base.describe()})"
        )
