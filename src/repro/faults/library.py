"""The named scenario library.

Every entry is a :class:`FaultScenario`: a named, parameterised adversarial
setup — a delay schedule, a corruption plan, or both — documented with the
paper claim it stresses.  Scenarios are referenced *by name* from
:class:`~repro.experiments.scenario.ScenarioConfig` (the ``scenario`` field)
and therefore from :class:`~repro.runner.campaign.Campaign` sweeps
(``Sweep("scenario", available_scenarios())``), which makes the whole
adversarial design space one more campaign axis.

A scenario is a *builder*, not a config: it receives the fully-populated
``ScenarioConfig`` (so it can key off ``n``, ``gst``, ``delta``,
``actual_delay``) plus its resolved parameters, and returns the
``(delay_model, corruption)`` pair the config should run under.  Defaults of
``None`` are derived from the config at build time, so one scenario name
means the same *relative* adversary at every system size.

The documentation site's scenario catalogue page is generated from this
registry (``docs/gen_ref.py``) — intent, parameters and stressed claim all
come from the :func:`scenario` registrations below, so the catalogue can
never drift from the code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Mapping, Optional, Sequence

from repro.adversary.attacks import lp22_tail_attack_plan, spread_corruption
from repro.adversary.behaviours import (
    ChurnBehaviour,
    EquivocatingBehaviour,
    SilentLeaderBehaviour,
)
from repro.adversary.corruption import CorruptionPlan
from repro.errors import ConfigurationError
from repro.faults.schedules import (
    IntermittentSynchrony,
    MessageClassDelay,
    PartitionSchedule,
    RotatingLeaderDelay,
)
from repro.sim.network import DelayModel, FixedDelay, PreGSTChaos, TargetedDelay, UniformDelay

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.experiments.scenario import ScenarioConfig

#: What a scenario builds: the delay model and corruption plan to run under
#: (either may be ``None``, meaning "the config's defaults").
ScenarioEffect = tuple[Optional[DelayModel], Optional[CorruptionPlan]]

#: Signature of a registered scenario builder.
ScenarioBuilder = Callable[["ScenarioConfig", dict[str, Any]], ScenarioEffect]


@dataclass(frozen=True)
class ScenarioParameter:
    """One tunable knob of a named scenario.

    Attributes
    ----------
    name:
        Parameter name, as accepted in ``scenario_params``.
    default:
        Default value.  ``None`` means "derived from the scenario config at
        build time" (the ``doc`` says how).
    doc:
        One-line description, surfaced in the generated catalogue.
    """

    name: str
    default: Any
    doc: str


@dataclass(frozen=True)
class FaultScenario:
    """A named, parameterised adversarial setup.

    Attributes
    ----------
    name:
        Registry key, stable across releases (campaign cache keys embed it).
    intent:
        One-line description of the adversarial situation modelled.
    claim:
        The paper claim this scenario stresses.
    parameters:
        Tunable knobs with defaults and docs.
    builder:
        The function turning (config, resolved params) into the scenario's
        ``(delay_model, corruption)`` effect.
    """

    name: str
    intent: str
    claim: str
    parameters: tuple[ScenarioParameter, ...]
    builder: ScenarioBuilder

    def resolve_params(self, overrides: Optional[Mapping[str, Any]] = None) -> dict[str, Any]:
        """Defaults merged with ``overrides``; unknown keys are rejected."""
        params = {parameter.name: parameter.default for parameter in self.parameters}
        overrides = dict(overrides or {})
        unknown = sorted(set(overrides) - set(params))
        if unknown:
            raise ConfigurationError(
                f"scenario {self.name!r} has no parameter(s) {unknown}; "
                f"available: {sorted(params)}"
            )
        params.update(overrides)
        return params

    def build(
        self, config: "ScenarioConfig", overrides: Optional[Mapping[str, Any]] = None
    ) -> ScenarioEffect:
        """The ``(delay_model, corruption)`` this scenario imposes on ``config``."""
        return self.builder(config, self.resolve_params(overrides))


_REGISTRY: dict[str, FaultScenario] = {}


def scenario(
    name: str,
    intent: str,
    claim: str,
    params: Sequence[ScenarioParameter] = (),
) -> Callable[[ScenarioBuilder], ScenarioBuilder]:
    """Register a scenario builder under ``name`` (decorator).

    Parameters
    ----------
    name:
        Registry key; must be unique.
    intent:
        One-line description of the adversarial situation.
    claim:
        The paper claim the scenario stresses.
    params:
        The scenario's tunable parameters.
    """

    def decorate(builder: ScenarioBuilder) -> ScenarioBuilder:
        if name in _REGISTRY:
            raise ConfigurationError(f"scenario {name!r} registered twice")
        _REGISTRY[name] = FaultScenario(
            name=name,
            intent=intent,
            claim=claim,
            parameters=tuple(params),
            builder=builder,
        )
        return builder

    return decorate


def available_scenarios() -> list[str]:
    """Names accepted by :func:`get_scenario` (and ``ScenarioConfig.scenario``)."""
    return sorted(_REGISTRY)


def get_scenario(name: str) -> FaultScenario:
    """The registered scenario called ``name``.

    Raises
    ------
    ConfigurationError
        If no scenario with that name exists.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown scenario {name!r}; available: {', '.join(available_scenarios())}"
        ) from None


def scenario_catalogue() -> list[FaultScenario]:
    """Every registered scenario, sorted by name (drives the docs catalogue)."""
    return [_REGISTRY[name] for name in available_scenarios()]


# ----------------------------------------------------------------------
# Shared helpers
# ----------------------------------------------------------------------
def _base_model(config: "ScenarioConfig") -> DelayModel:
    """The benign baseline every schedule perturbs: fixed network-speed delay."""
    return FixedDelay(config.actual_delay)


def _require_positive_gst(config: "ScenarioConfig", name: str) -> None:
    if config.gst <= 0:
        raise ConfigurationError(
            f"scenario {name!r} is an attack on the pre-GST period; "
            f"it needs gst > 0 (got gst={config.gst})"
        )


def _halves(n: int) -> tuple[tuple[int, ...], tuple[int, ...]]:
    split = (n + 1) // 2
    return tuple(range(split)), tuple(range(split, n))


# ----------------------------------------------------------------------
# The library
# ----------------------------------------------------------------------
@scenario(
    "split_brain_at_gst",
    intent="Two network halves cannot talk until the partition heals exactly at GST.",
    claim="Liveness after GST regardless of pre-GST history (Theorem 1.1, liveness).",
    params=(
        ScenarioParameter("split_at", 0.0, "Time the partition forms."),
        ScenarioParameter(
            "flush_delay", None, "Backlog flush delay after heal; None = actual_delay."
        ),
    ),
)
def _split_brain_at_gst(config: "ScenarioConfig", params: dict[str, Any]) -> ScenarioEffect:
    _require_positive_gst(config, "split_brain_at_gst")
    flush = params["flush_delay"] if params["flush_delay"] is not None else config.actual_delay
    first, second = _halves(config.n)
    model = PartitionSchedule(
        _base_model(config),
        groups=(first, second),
        split_at=params["split_at"],
        heal_at=config.gst,
        flush_delay=flush,
    )
    return model, None


@scenario(
    "rotating_leader_dos",
    intent="A moving denial-of-service pins the current (round-robin) leader's "
    "inbound traffic at the worst legal delay.",
    claim="Smooth optimistic responsiveness: latency degrades by O(Delta) per "
    "attacked view, never collapses (Theorem 1.1, property 3).",
    params=(
        ScenarioParameter(
            "view_duration", None, "Attacker's per-view time estimate; None = 2*delta."
        ),
        ScenarioParameter(
            "target_delay", None, "Proposed delay for victim traffic; None = delta (the max)."
        ),
    ),
)
def _rotating_leader_dos(config: "ScenarioConfig", params: dict[str, Any]) -> ScenarioEffect:
    view_duration = (
        params["view_duration"] if params["view_duration"] is not None else 2.0 * config.delta
    )
    target_delay = (
        params["target_delay"] if params["target_delay"] is not None else config.delta
    )
    model = RotatingLeaderDelay(
        _base_model(config),
        n=config.n,
        view_duration=view_duration,
        target_delay=target_delay,
    )
    return model, None


@scenario(
    "flaky_half",
    intent="Half the processors' links periodically degrade to the Delta envelope, "
    "then recover to network speed.",
    claim="View synchronisation must re-form after every lapse without heavy "
    "syncs restarting (success criterion, Section 6).",
    params=(
        ScenarioParameter("calm_duration", 20.0, "Length of each calm window."),
        ScenarioParameter("chaos_duration", 10.0, "Length of each degraded window."),
    ),
)
def _flaky_half(config: "ScenarioConfig", params: dict[str, Any]) -> ScenarioEffect:
    first, _ = _halves(config.n)
    degraded = TargetedDelay(
        _base_model(config),
        targets=first,
        target_delay=config.delta,
        direction="both",
    )
    model = IntermittentSynchrony(
        calm=_base_model(config),
        chaotic=degraded,
        calm_duration=params["calm_duration"],
        chaos_duration=params["chaos_duration"],
        start=0.0,
    )
    return model, None


@scenario(
    "late_gst_storm",
    intent="A long, maximally chaotic asynchronous period before a late GST, "
    "with the full budget of silent Byzantine leaders.",
    claim="Worst-case communication/latency after GST is bounded independent of "
    "the pre-GST chaos (Table 1, worst-case rows).",
    params=(
        ScenarioParameter(
            "pre_gst_max_delay", None, "Pre-GST delay bound; None = config.pre_gst_max_delay."
        ),
        ScenarioParameter("faults", None, "Silent leaders; None = the full budget f."),
    ),
)
def _late_gst_storm(config: "ScenarioConfig", params: dict[str, Any]) -> ScenarioEffect:
    _require_positive_gst(config, "late_gst_storm")
    pre_max = (
        params["pre_gst_max_delay"]
        if params["pre_gst_max_delay"] is not None
        else config.pre_gst_max_delay
    )
    protocol_config = config.protocol_config()
    faults = params["faults"] if params["faults"] is not None else protocol_config.f
    model = PreGSTChaos(_base_model(config), pre_gst_max_delay=pre_max)
    corruption = spread_corruption(protocol_config, faults, SilentLeaderBehaviour)
    return model, corruption


@scenario(
    "view_sync_throttle",
    intent="Only view-synchronisation traffic is throttled to the Delta envelope; "
    "proposals and votes stay at network speed.",
    claim="Lumiere's latency rides on consensus traffic, not on sync traffic, "
    "once the success criterion holds (Section 6).",
    params=(
        ScenarioParameter("delay", None, "Delay for view-sync messages; None = delta."),
    ),
)
def _view_sync_throttle(config: "ScenarioConfig", params: dict[str, Any]) -> ScenarioEffect:
    delay = params["delay"] if params["delay"] is not None else config.delta
    return MessageClassDelay(_base_model(config), match="view-sync", delay=delay), None


@scenario(
    "proposal_throttle",
    intent="Only consensus traffic (proposals, votes, QCs) is throttled to the "
    "Delta envelope; view synchronisation stays fast.",
    claim="Decision latency degrades to O(Delta) per view but view "
    "synchronisation never destabilises (Theorem 1.1, property 3).",
    params=(
        ScenarioParameter("delay", None, "Delay for consensus messages; None = delta."),
    ),
)
def _proposal_throttle(config: "ScenarioConfig", params: dict[str, Any]) -> ScenarioEffect:
    delay = params["delay"] if params["delay"] is not None else config.delta
    return MessageClassDelay(_base_model(config), match="consensus", delay=delay), None


@scenario(
    "crash_churn",
    intent="Processors keep crashing and restarting in staggered waves.",
    claim="Liveness with f_a benign faults costs O(Delta * f_a + delta) per "
    "decision, even when the faulty set keeps changing state (Theorem 1.1).",
    params=(
        ScenarioParameter("faults", None, "Churning processors; None = the full budget f."),
        ScenarioParameter("downtime", 10.0, "Time each processor stays down per cycle."),
        ScenarioParameter("period", 40.0, "Cycle length (down + up)."),
        ScenarioParameter("cycles", 3, "Crash/recover cycles per processor."),
    ),
)
def _crash_churn(config: "ScenarioConfig", params: dict[str, Any]) -> ScenarioEffect:
    protocol_config = config.protocol_config()
    faults = params["faults"] if params["faults"] is not None else protocol_config.f
    downtime = params["downtime"]
    period = params["period"]
    cycles = params["cycles"]
    stagger = period / max(1, faults)

    counter = iter(range(faults))

    def churn() -> ChurnBehaviour:
        index = next(counter)
        return ChurnBehaviour(
            first_crash=config.gst + 1.0 + index * stagger,
            downtime=downtime,
            period=period,
            cycles=cycles,
        )

    corruption = spread_corruption(protocol_config, faults, churn)
    return None, corruption


@scenario(
    "silent_spread",
    intent="The classic fault load: silent Byzantine leaders spread evenly over "
    "the id space.",
    claim="Eventual latency and communication per decision (Table 1, eventual rows).",
    params=(
        ScenarioParameter("faults", None, "Silent leaders; None = the full budget f."),
    ),
)
def _silent_spread(config: "ScenarioConfig", params: dict[str, Any]) -> ScenarioEffect:
    protocol_config = config.protocol_config()
    faults = params["faults"] if params["faults"] is not None else protocol_config.f
    return None, spread_corruption(protocol_config, faults, SilentLeaderBehaviour)


@scenario(
    "equivocator_mix",
    intent="Byzantine leaders propose conflicting blocks to different halves of "
    "the processors.",
    claim="Safety: honest ledgers stay prefix-consistent under equivocation "
    "(the 3-chain commit rule).",
    params=(
        ScenarioParameter("faults", None, "Equivocating leaders; None = the full budget f."),
    ),
)
def _equivocator_mix(config: "ScenarioConfig", params: dict[str, Any]) -> ScenarioEffect:
    protocol_config = config.protocol_config()
    faults = params["faults"] if params["faults"] is not None else protocol_config.f
    return None, spread_corruption(protocol_config, faults, EquivocatingBehaviour)


@scenario(
    "calm_chaos_waves",
    intent="The whole network alternates between network-speed calm and "
    "envelope-filling chaos after GST.",
    claim="Responsiveness must return within O(Delta) of each calm window "
    "opening (smooth optimistic responsiveness).",
    params=(
        ScenarioParameter("calm_duration", 30.0, "Length of each calm window."),
        ScenarioParameter("chaos_duration", 15.0, "Length of each chaotic window."),
    ),
)
def _calm_chaos_waves(config: "ScenarioConfig", params: dict[str, Any]) -> ScenarioEffect:
    chaotic = UniformDelay(0.0, 10.0 * config.delta)  # clamped to the envelope post-GST
    model = IntermittentSynchrony(
        calm=_base_model(config),
        chaotic=chaotic,
        calm_duration=params["calm_duration"],
        chaos_duration=params["chaos_duration"],
        start=config.gst,
    )
    return model, None


@scenario(
    "tail_leader_ambush",
    intent="A single silent leader placed to own the tail views of an epoch "
    "under round-robin schedules.",
    claim="The LP22 pathology of Figure 1: one fault causes epoch-scale stalls "
    "in epoch-based protocols but only O(Delta) in Lumiere.",
)
def _tail_leader_ambush(config: "ScenarioConfig", params: dict[str, Any]) -> ScenarioEffect:
    return None, lp22_tail_attack_plan(config.protocol_config())


@scenario(
    "split_then_silence",
    intent="A pre-GST partition heals at GST, and the recovered network still "
    "carries the full budget of silent leaders.",
    claim="Recovery bounds compose: partition recovery and fault tolerance "
    "do not multiply each other's cost (Theorem 1.1).",
    params=(
        ScenarioParameter("faults", None, "Silent leaders; None = the full budget f."),
    ),
)
def _split_then_silence(config: "ScenarioConfig", params: dict[str, Any]) -> ScenarioEffect:
    _require_positive_gst(config, "split_then_silence")
    protocol_config = config.protocol_config()
    faults = params["faults"] if params["faults"] is not None else protocol_config.f
    first, second = _halves(config.n)
    model = PartitionSchedule(
        _base_model(config),
        groups=(first, second),
        split_at=0.0,
        heal_at=config.gst,
        flush_delay=config.actual_delay,
    )
    corruption = spread_corruption(protocol_config, faults, SilentLeaderBehaviour)
    return model, corruption
