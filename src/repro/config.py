"""Shared protocol configuration.

A :class:`ProtocolConfig` captures the parameters that every protocol in the
repository agrees on: the number of processors ``n = 3f + 1``, the known
post-GST message-delay bound ``Delta``, and the view-completion constant
``x`` from assumption (⋄1) of the paper (if an honest leader has 2f+1 honest
processors with it in a view for ``x * delta`` time, the view produces a QC).

Individual pacemakers derive their own constants (``Gamma``, epoch length,
success-criterion thresholds) from this shared configuration; see the
pacemaker-specific config dataclasses.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ProtocolConfig:
    """Parameters shared by the consensus substrate and every pacemaker.

    Attributes
    ----------
    n:
        Total number of processors.  The paper assumes ``n = 3f + 1``; any
        ``n >= 4`` is accepted and ``f`` is the largest integer less than
        ``n / 3``.
    delta:
        The known bound ``Delta`` on post-GST message delay.
    x:
        View-completion constant from assumption (⋄1): an honest-leader view
        in which 2f+1 honest processors participate produces a QC within
        ``x * actual_delay`` once synchronised.  The paper requires
        ``x >= 2``; our chained-HotStuff substrate completes a view in three
        message hops after the leader enters it, so the default is 4 to
        leave slack for the leader entering last.
    crypto_backend:
        Name of the :class:`~repro.crypto.backend.CryptoBackend` every
        signature, partial signature and block id is derived through (see
        :func:`repro.crypto.backend.available_backends`).  ``"hashing"`` is
        the stable default; ``"counting"`` trades cross-run-stable digests
        for O(1) structural tokens — the large-``n`` fast path.
    """

    n: int = 4
    delta: float = 1.0
    x: int = 4
    crypto_backend: str = "hashing"

    def __post_init__(self) -> None:
        # Local import: the crypto package is a leaf dependency of this
        # module only for name validation; importing it lazily keeps config
        # importable without pulling the whole crypto layer at startup.
        from repro.crypto.backend import available_backends

        if self.n < 4:
            raise ConfigurationError(f"n must be at least 4 (so that f >= 1), got {self.n}")
        if self.delta <= 0:
            raise ConfigurationError(f"delta must be positive, got {self.delta}")
        if self.x < 2:
            raise ConfigurationError(f"x must be at least 2 (paper, Section 2), got {self.x}")
        if self.crypto_backend not in available_backends():
            raise ConfigurationError(
                f"unknown crypto backend {self.crypto_backend!r}; "
                f"available: {', '.join(available_backends())}"
            )

    @property
    def f(self) -> int:
        """Maximum number of Byzantine processors tolerated: largest integer < n/3."""
        return (self.n - 1) // 3

    @property
    def quorum_size(self) -> int:
        """Size of a quorum: ``2f + 1``."""
        return 2 * self.f + 1

    @property
    def small_quorum_size(self) -> int:
        """Size of a "small" quorum: ``f + 1`` (enough to include one honest processor)."""
        return self.f + 1

    @property
    def processor_ids(self) -> range:
        """Processor ids ``0 .. n-1``."""
        return range(self.n)
