"""Exception hierarchy shared across the repro package.

Every exception raised on purpose by this library derives from
:class:`ReproError`, so callers can catch library errors without catching
programming errors such as :class:`TypeError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """A configuration object was constructed with invalid parameters."""


class SimulationError(ReproError):
    """The simulator was used incorrectly (e.g. scheduling in the past)."""


class CryptoError(ReproError):
    """A simulated cryptographic operation failed verification."""


class InvalidSignature(CryptoError):
    """A signature did not verify against the claimed signer and payload."""


class ThresholdError(CryptoError):
    """A threshold signature could not be formed or did not verify."""


class ConsensusError(ReproError):
    """The consensus substrate detected an invalid message or state."""


class SafetyViolation(ConsensusError):
    """Two conflicting blocks were committed — should be impossible."""


class PacemakerError(ReproError):
    """A view-synchronisation protocol detected an invalid message or state."""
