"""Analytical companions to the measurements.

:mod:`repro.analysis.table1` provides the closed-form asymptotic bounds of
Table 1 (as Python callables) so that EXPERIMENTS.md and the benchmarks can
place measured values next to the bound they are supposed to track, and
:mod:`repro.analysis.fitting` provides small curve-fitting helpers used to
check that measured scaling matches the predicted exponent.
"""

from repro.analysis.table1 import (
    PAPER_TABLE1,
    AsymptoticBound,
    ProtocolBounds,
    bound_for,
)
from repro.analysis.fitting import estimate_exponent, growth_ratio

__all__ = [
    "AsymptoticBound",
    "PAPER_TABLE1",
    "ProtocolBounds",
    "bound_for",
    "estimate_exponent",
    "growth_ratio",
]
