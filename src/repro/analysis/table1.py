"""Table 1 of the paper as data.

Each protocol's four asymptotic bounds are expressed as callables of
``(n, f_a, delta_big, delta_small)`` returning the dominant term (without
constants).  Benchmarks and EXPERIMENTS.md use them to sanity-check the
*shape* of measured curves — e.g. that Lumiere's eventual communication per
decision grows linearly in ``f_a`` while LP22's stays quadratic in ``n``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

BoundFn = Callable[[int, int, float, float], float]


@dataclass(frozen=True)
class AsymptoticBound:
    """One asymptotic bound: a human-readable formula plus its dominant term."""

    formula: str
    dominant_term: BoundFn

    def __call__(self, n: int, f_a: int, delta_big: float = 1.0, delta_small: float = 0.1) -> float:
        return self.dominant_term(n, f_a, delta_big, delta_small)


@dataclass(frozen=True)
class ProtocolBounds:
    """The four Table-1 rows for one protocol."""

    protocol: str
    model: str
    worst_case_communication: AsymptoticBound
    eventual_communication: AsymptoticBound
    worst_case_latency: AsymptoticBound
    eventual_latency: AsymptoticBound


PAPER_TABLE1: dict[str, ProtocolBounds] = {
    "cogsworth": ProtocolBounds(
        protocol="cogsworth",
        model="partial synchrony",
        worst_case_communication=AsymptoticBound("O(n^3)", lambda n, f, D, d: n**3),
        eventual_communication=AsymptoticBound(
            "O(n + n * f_a^2)", lambda n, f, D, d: n + n * f**2
        ),
        worst_case_latency=AsymptoticBound("O(n^2 * Delta)", lambda n, f, D, d: n**2 * D),
        eventual_latency=AsymptoticBound(
            "O(f_a^2 * Delta + delta)", lambda n, f, D, d: f**2 * D + d
        ),
    ),
    "lp22": ProtocolBounds(
        protocol="lp22",
        model="partial synchrony",
        worst_case_communication=AsymptoticBound("O(n^2)", lambda n, f, D, d: n**2),
        eventual_communication=AsymptoticBound("O(n^2)", lambda n, f, D, d: n**2),
        worst_case_latency=AsymptoticBound("O(n * Delta)", lambda n, f, D, d: n * D),
        eventual_latency=AsymptoticBound("O(n * Delta)", lambda n, f, D, d: n * D),
    ),
    "fever": ProtocolBounds(
        protocol="fever",
        model="bounded clocks",
        worst_case_communication=AsymptoticBound("O(n^2)", lambda n, f, D, d: n**2),
        eventual_communication=AsymptoticBound(
            "O(n * f_a + n)", lambda n, f, D, d: n * f + n
        ),
        worst_case_latency=AsymptoticBound(
            "O(f_a * Delta + delta)", lambda n, f, D, d: f * D + d
        ),
        eventual_latency=AsymptoticBound(
            "O(f_a * Delta + delta)", lambda n, f, D, d: f * D + d
        ),
    ),
    "lumiere": ProtocolBounds(
        protocol="lumiere",
        model="partial synchrony",
        worst_case_communication=AsymptoticBound("O(n^2)", lambda n, f, D, d: n**2),
        eventual_communication=AsymptoticBound(
            "O(n * f_a + n)", lambda n, f, D, d: n * f + n
        ),
        worst_case_latency=AsymptoticBound("O(n * Delta)", lambda n, f, D, d: n * D),
        eventual_latency=AsymptoticBound(
            "O(f_a * Delta + delta)", lambda n, f, D, d: f * D + d
        ),
    ),
}


def bound_for(protocol: str, measure: str) -> AsymptoticBound:
    """Look up the paper's bound for ``protocol`` and ``measure``.

    ``measure`` is one of ``worst_case_communication``, ``eventual_communication``,
    ``worst_case_latency``, ``eventual_latency``.  Protocol aliases used by the
    registry (``naor-keidar``, ``basic-lumiere``, ``raresync``, ``backoff``) map
    onto the nearest column of the paper's table.
    """
    aliases = {
        "naor-keidar": "cogsworth",
        "naor_keidar": "cogsworth",
        "basic-lumiere": "lp22",
        "basic_lumiere": "lp22",
        "raresync": "lp22",
        "backoff": "cogsworth",
    }
    key = aliases.get(protocol, protocol)
    bounds = PAPER_TABLE1[key]
    return getattr(bounds, measure)
