"""Scaling-shape helpers.

The benchmarks do not try to match the paper's constants (our substrate is a
simulator, not the authors' testbed); what must match is the *shape*: which
protocol's cost grows with ``n``, which grows with ``f_a``, and roughly with
what exponent.  These helpers estimate that from a handful of measured
points.
"""

from __future__ import annotations

import math
from typing import Sequence


def estimate_exponent(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Least-squares slope of ``log y`` against ``log x``.

    For data following ``y ~ c * x^k`` this returns approximately ``k``.
    Points with non-positive coordinates are ignored; at least two valid
    points are required.
    """
    pairs = [(x, y) for x, y in zip(xs, ys) if x > 0 and y > 0]
    if len(pairs) < 2:
        raise ValueError("need at least two positive (x, y) points to estimate an exponent")
    log_x = [math.log(x) for x, _ in pairs]
    log_y = [math.log(y) for _, y in pairs]
    mean_x = sum(log_x) / len(log_x)
    mean_y = sum(log_y) / len(log_y)
    numerator = sum((lx - mean_x) * (ly - mean_y) for lx, ly in zip(log_x, log_y))
    denominator = sum((lx - mean_x) ** 2 for lx in log_x)
    if denominator == 0:
        raise ValueError("x values are all equal; exponent is undefined")
    return numerator / denominator


def growth_ratio(ys: Sequence[float]) -> float:
    """Ratio of the last to the first measurement (a crude growth indicator)."""
    valid = [y for y in ys if y is not None]
    if len(valid) < 2 or valid[0] == 0:
        return float("nan")
    return valid[-1] / valid[0]
