"""Cogsworth-style relay view synchronisation (Naor, Baudet, Malkhi, Spiegelman).

Cogsworth synchronises views through *leader relays*: a processor that times
out of view ``v`` sends a signed wish for view ``v+1`` to the leader of
``v+1``; that leader aggregates ``f+1`` wishes into a certificate and relays
it to everyone, which brings all honest processors into ``v+1`` within two
message delays.  When the relay leader is faulty, processors fall back to the
next leader after another timeout, and so on — every faulty relay costs an
extra timeout and another linear burst of messages.

This is what produces the first column of Table 1: with adversarial clock
dispersion the fallback cascade can pass through ``Theta(n)`` relays for
``Theta(n)`` views before synchronisation (cubic messages, ``O(n^2 Delta)``
latency), and in the steady state a burst of ``f_a`` faulty leaders costs
``O(f_a^2)`` relays (``O(n + n f_a^2)`` messages, ``O(f_a^2 Delta)`` latency).

The implementation is a faithful-to-the-mechanism simplification: wishes,
relay certificates and QC-driven advancement are implemented exactly;
Cogsworth's optimistic "leader relays votes" piggybacking is folded into the
QC path of the consensus substrate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.config import ProtocolConfig
from repro.consensus.quorum import QuorumCertificate
from repro.crypto.threshold import PartialSignature, ThresholdSignature
from repro.errors import ConfigurationError, ThresholdError
from repro.pacemakers.base import Pacemaker, PacemakerMessage, RoundRobinLeaderMixin
from repro.sim.clock import LocalTimer

if TYPE_CHECKING:  # pragma: no cover
    from repro.consensus.replica import Replica

_EPS = 1e-9


def cogsworth_wish_payload(view: int) -> tuple:
    """Signed payload of a wish to enter ``view``."""
    return ("cogsworth-wish", view)


@dataclass(frozen=True, slots=True)
class WishMessage(PacemakerMessage):
    """A processor's signed wish to enter ``view``, sent to a relay candidate."""

    view: int
    partial: PartialSignature


@dataclass(frozen=True, slots=True)
class RelayCertificate(PacemakerMessage):
    """``f+1`` aggregated wishes for ``view``, broadcast by a relay."""

    view: int
    aggregate: ThresholdSignature


@dataclass(frozen=True)
class CogsworthConfig:
    """Parameters of the relay pacemaker.

    ``view_duration`` is the time a processor waits in a view before wishing
    to leave it; ``relay_patience`` is how long it waits for a relay to act
    before falling back to the next relay candidate; ``parallel_relays`` is
    how many relay candidates receive each wish burst (1 = Cogsworth,
    ``f+1`` = the Naor-Keidar style fallback that gives expected-constant
    relay rounds).
    """

    protocol: ProtocolConfig
    view_duration_override: Optional[float] = None
    relay_patience_override: Optional[float] = None
    parallel_relays: int = 1

    def __post_init__(self) -> None:
        if self.parallel_relays < 1:
            raise ConfigurationError("parallel_relays must be >= 1")

    @property
    def view_duration(self) -> float:
        if self.view_duration_override is not None:
            return self.view_duration_override
        return (self.protocol.x + 1) * self.protocol.delta

    @property
    def relay_patience(self) -> float:
        if self.relay_patience_override is not None:
            return self.relay_patience_override
        return 2.0 * self.protocol.delta


class CogsworthPacemaker(RoundRobinLeaderMixin, Pacemaker):
    """Relay-based view synchronisation with leader fallback."""

    name = "cogsworth"

    def __init__(
        self,
        replica: "Replica",
        config: ProtocolConfig,
        cogsworth_config: Optional[CogsworthConfig] = None,
    ) -> None:
        super().__init__(replica, config)
        self.cfg = cogsworth_config or CogsworthConfig(protocol=config)
        self._wish_partials: dict[int, dict[int, PartialSignature]] = {}
        self._relay_broadcast: set[int] = set()
        self._cert_seen: set[int] = set()
        self._qc_handled: set[int] = set()
        self._wished_relays: dict[int, int] = {}  # view -> how many relays contacted
        self._view_timer: Optional[LocalTimer] = None
        self._relay_timer = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        self._enter(0)

    def _enter(self, view: int) -> None:
        if view <= self._current_view:
            return
        self.enter_view(view)
        self._cancel_timers()
        # Arm the in-view timeout on the local clock.
        target = self.clock.read() + self.cfg.view_duration
        self._view_timer = self.clock.schedule_at_local(
            target, lambda: self._on_view_timeout(view), label=f"cogsworth-timeout-v{view}"
        )

    def _cancel_timers(self) -> None:
        if self._view_timer is not None:
            self._view_timer.cancel()
            self._view_timer = None
        if self._relay_timer is not None:
            self._relay_timer.cancel()
            self._relay_timer = None

    # ------------------------------------------------------------------
    # Timeouts and wishes
    # ------------------------------------------------------------------
    def _on_view_timeout(self, view: int) -> None:
        if self._current_view != view:
            return
        self._send_wishes(view + 1)

    def _send_wishes(self, target_view: int) -> None:
        """Send wishes for ``target_view`` to the next batch of relay candidates."""
        if target_view <= self._current_view:
            return
        already = self._wished_relays.get(target_view, 0)
        if already >= self.config.n:
            return
        batch = self.cfg.parallel_relays
        relays = [
            self.leader_of(target_view + offset) for offset in range(already, already + batch)
        ]
        self._wished_relays[target_view] = already + batch
        if not self.replica.behaviour.suppress_view_sync("wish", target_view):
            partial = self.replica.scheme.partial_sign(
                self.replica.signing_key, cogsworth_wish_payload(target_view)
            )
            for relay in relays:
                self.send(relay, WishMessage(view=target_view, partial=partial))
        self.trace("cogsworth_wish", view=target_view, relays=len(relays))
        # If the relay does not bring us into the view, fall back to the next one.
        self._relay_timer = self.replica.runtime.set_timer(
            self.cfg.relay_patience,
            self._on_relay_timeout,
            target_view,
            label=f"cogsworth-relay-v{target_view}",
        )

    def _on_relay_timeout(self, target_view: int) -> None:
        if self._current_view >= target_view:
            return
        self._send_wishes(target_view)

    # ------------------------------------------------------------------
    # Messages
    # ------------------------------------------------------------------
    def on_message(self, msg: PacemakerMessage, sender: int) -> None:
        if isinstance(msg, WishMessage):
            self._on_wish(msg, sender)
        elif isinstance(msg, RelayCertificate):
            self._on_certificate(msg)

    def _on_wish(self, msg: WishMessage, sender: int) -> None:
        view = msg.view
        if view <= 0:
            return
        if not self.replica.scheme.verify_partial(msg.partial, cogsworth_wish_payload(view)):
            return
        bucket = self._wish_partials.setdefault(view, {})
        bucket[sender] = msg.partial
        if len(bucket) < self.config.small_quorum_size or view in self._relay_broadcast:
            return
        try:
            aggregate = self.replica.scheme.combine(
                list(bucket.values()),
                self.config.small_quorum_size,
                cogsworth_wish_payload(view),
            )
        except ThresholdError:
            return
        self._relay_broadcast.add(view)
        if self.replica.behaviour.suppress_view_sync("relay", view):
            return
        self.broadcast(RelayCertificate(view=view, aggregate=aggregate))

    def _on_certificate(self, msg: RelayCertificate) -> None:
        view = msg.view
        if view in self._cert_seen:
            return
        if not self.replica.scheme.verify(msg.aggregate, cogsworth_wish_payload(view)):
            return
        self._cert_seen.add(view)
        if view > self._current_view:
            self._enter(view)

    # ------------------------------------------------------------------
    # QCs
    # ------------------------------------------------------------------
    def on_qc(self, qc: QuorumCertificate) -> None:
        view = qc.view
        if view < 0 or view in self._qc_handled:
            return
        self._qc_handled.add(view)
        if view + 1 > self._current_view:
            self._enter(view + 1)
