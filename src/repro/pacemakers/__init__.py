"""View-synchronisation protocols ("pacemakers").

Every pacemaker implements the :class:`~repro.pacemakers.base.Pacemaker`
interface so that the consensus substrate, the adversary and the experiment
harness treat them interchangeably.  The paper's own protocol lives in
:mod:`repro.core`; this package contains the baselines from Table 1 plus a
classical exponential-backoff pacemaker used as a control.
"""

from repro.pacemakers.base import Pacemaker, PacemakerMessage, RoundRobinLeaderMixin
from repro.pacemakers.backoff import ExponentialBackoffConfig, ExponentialBackoffPacemaker
from repro.pacemakers.cogsworth import CogsworthConfig, CogsworthPacemaker
from repro.pacemakers.fever import FeverConfig, FeverPacemaker
from repro.pacemakers.lp22 import LP22Config, LP22Pacemaker
from repro.pacemakers.naor_keidar import NaorKeidarConfig, NaorKeidarPacemaker
from repro.pacemakers.raresync import RareSyncConfig, RareSyncPacemaker
from repro.pacemakers.registry import available_pacemakers, make_pacemaker_factory

__all__ = [
    "CogsworthConfig",
    "CogsworthPacemaker",
    "ExponentialBackoffConfig",
    "ExponentialBackoffPacemaker",
    "FeverConfig",
    "FeverPacemaker",
    "LP22Config",
    "LP22Pacemaker",
    "NaorKeidarConfig",
    "NaorKeidarPacemaker",
    "Pacemaker",
    "PacemakerMessage",
    "RareSyncConfig",
    "RareSyncPacemaker",
    "RoundRobinLeaderMixin",
    "available_pacemakers",
    "make_pacemaker_factory",
]
