"""The Byzantine View Synchronization (pacemaker) interface.

A pacemaker decides, for its replica, *which view it is in* and *when to move
to the next one*.  It receives its own message type hierarchy
(:class:`PacemakerMessage`), is notified of every QC the underlying protocol
produces, and tells the replica to enter views.  Per the task definition in
Section 2 of the paper, a correct pacemaker must guarantee:

1. view monotonicity at every honest processor, and
2. that eventually (after GST) some view with an honest leader holds all
   honest processors together long enough to produce a QC.

The interface also exposes :meth:`Pacemaker.may_produce_qc`, which Lumiere
uses to implement its rule that honest leaders only produce a QC if they can
do so within ``Gamma/2 - 2*Delta`` of sending the corresponding VC (or of
sending the previous view's QC).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Optional

from repro.config import ProtocolConfig
from repro.consensus.quorum import QuorumCertificate

if TYPE_CHECKING:  # pragma: no cover - import only for type checkers
    from repro.consensus.replica import Replica


@dataclass(frozen=True, slots=True)
class PacemakerMessage:
    """Base class for all view-synchronisation messages."""


class Pacemaker(ABC):
    """Abstract base class of every view-synchronisation protocol."""

    #: Short machine-readable name used by the registry and in reports.
    name: str = "abstract"

    def __init__(self, replica: "Replica", config: ProtocolConfig) -> None:
        self.replica = replica
        self.config = config
        self._current_view = -1

    # ------------------------------------------------------------------
    # Accessors shared by all pacemakers
    # ------------------------------------------------------------------
    @property
    def current_view(self) -> int:
        """The view this replica is currently in (-1 before the protocol starts)."""
        return self._current_view

    @property
    def clock(self):
        """The replica's local clock (``lc(p)`` in the paper)."""
        return self.replica.clock

    @property
    def now(self) -> float:
        """Current simulation time (used only for tracing, never for decisions)."""
        return self.replica.now

    @property
    def pid(self) -> int:
        """The replica's processor id."""
        return self.replica.pid

    # ------------------------------------------------------------------
    # Protocol hooks
    # ------------------------------------------------------------------
    @abstractmethod
    def start(self) -> None:
        """Called once when the simulation starts."""

    @abstractmethod
    def on_message(self, msg: PacemakerMessage, sender: int) -> None:
        """Handle an incoming pacemaker message."""

    def on_qc(self, qc: QuorumCertificate) -> None:
        """Called whenever the replica observes a QC (formed locally or received)."""

    def on_local_qc(self, qc: QuorumCertificate) -> None:
        """Called when this replica, acting as leader, produced a QC itself.

        Lumiere uses this to time the QC-production deadline of the *next*
        (non-initial) view it leads.  Default: no-op.
        """

    @abstractmethod
    def leader_of(self, view: int) -> int:
        """The designated leader of ``view``."""

    def may_produce_qc(self, view: int) -> bool:
        """Whether the leader (this replica) may still produce a QC for ``view``.

        Defaults to always true; Lumiere overrides it to enforce its
        ``Gamma/2 - 2*Delta`` production deadline.
        """
        return True

    # ------------------------------------------------------------------
    # View transitions
    # ------------------------------------------------------------------
    def enter_view(self, view: int) -> None:
        """Move this replica into ``view`` (monotonically) and notify the engine."""
        if view <= self._current_view:
            return
        self._current_view = view
        self.replica.on_view_entered(view)

    # ------------------------------------------------------------------
    # Messaging helpers (thin wrappers over the replica's process methods)
    # ------------------------------------------------------------------
    def send(self, recipient: int, msg: PacemakerMessage) -> None:
        """Send a pacemaker message to one processor."""
        self.replica.send(recipient, msg)

    def broadcast(self, msg: PacemakerMessage) -> None:
        """Send a pacemaker message to all processors (including self)."""
        self.replica.broadcast(msg)

    def trace(self, kind: str, **details: Any) -> None:
        """Record a trace event attributed to this replica."""
        self.replica.trace(kind, **details)

    def describe(self) -> str:
        """Human-readable description for reports."""
        return f"{type(self).__name__}(view={self._current_view})"


class RoundRobinLeaderMixin:
    """Leader schedule ``lead(v) = v mod n`` used by several baselines."""

    config: ProtocolConfig

    def leader_of(self, view: int) -> int:
        """Round-robin leader assignment."""
        return view % self.config.n


class PairedLeaderMixin:
    """Leader schedule ``lead(v) = floor(v / 2) mod n`` (two views per leader).

    Used by Fever and by Basic Lumiere: each leader gets an *initial* view
    (even ``v``) followed by a *non-initial* grace view (odd ``v``).
    """

    config: ProtocolConfig

    def leader_of(self, view: int) -> int:
        """Each leader owns two consecutive views."""
        return (view // 2) % self.config.n
