"""Classical exponential-backoff pacemaker (PBFT-style view changes).

This is the folklore pacemaker most deployed BFT systems shipped before the
view-synchronisation literature caught up: every view has a timeout, a
processor that times out broadcasts a view-change message for the next view,
a processor enters the next view once it has view-change messages from a
quorum, and timeouts double after consecutive failures (resetting on
progress).  Every view change costs Theta(n^2) messages and the doubling
makes worst-case latency exponential in the number of consecutive failures
before GST — which is exactly why it is a useful control in the benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.config import ProtocolConfig
from repro.consensus.quorum import QuorumCertificate
from repro.crypto.threshold import PartialSignature
from repro.errors import ConfigurationError
from repro.pacemakers.base import Pacemaker, PacemakerMessage, RoundRobinLeaderMixin
from repro.sim.clock import LocalTimer

if TYPE_CHECKING:  # pragma: no cover
    from repro.consensus.replica import Replica


def backoff_payload(view: int) -> tuple:
    """Signed payload of a view-change message."""
    return ("backoff-view-change", view)


@dataclass(frozen=True, slots=True)
class ViewChangeMessage(PacemakerMessage):
    """Broadcast complaint that the current view failed; wish to enter ``view``."""

    view: int
    partial: PartialSignature


@dataclass(frozen=True)
class ExponentialBackoffConfig:
    """Parameters of the backoff pacemaker."""

    protocol: ProtocolConfig
    base_timeout_override: Optional[float] = None
    multiplier: float = 2.0
    max_timeout_factor: float = 64.0

    def __post_init__(self) -> None:
        if self.multiplier < 1.0:
            raise ConfigurationError("multiplier must be >= 1.0")
        if self.max_timeout_factor < 1.0:
            raise ConfigurationError("max_timeout_factor must be >= 1.0")

    @property
    def base_timeout(self) -> float:
        if self.base_timeout_override is not None:
            return self.base_timeout_override
        return (self.protocol.x + 1) * self.protocol.delta

    @property
    def max_timeout(self) -> float:
        return self.base_timeout * self.max_timeout_factor


class ExponentialBackoffPacemaker(RoundRobinLeaderMixin, Pacemaker):
    """PBFT-style view changes with doubling timeouts."""

    name = "backoff"

    def __init__(
        self,
        replica: "Replica",
        config: ProtocolConfig,
        backoff_config: Optional[ExponentialBackoffConfig] = None,
    ) -> None:
        super().__init__(replica, config)
        self.cfg = backoff_config or ExponentialBackoffConfig(protocol=config)
        self._timeout = self.cfg.base_timeout
        self._view_change_signers: dict[int, set[int]] = {}
        self._view_change_sent: set[int] = set()
        self._qc_handled: set[int] = set()
        self._view_timer: Optional[LocalTimer] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        self._enter(0, reset_timeout=True)

    def _enter(self, view: int, reset_timeout: bool) -> None:
        if view <= self._current_view:
            return
        if reset_timeout:
            self._timeout = self.cfg.base_timeout
        self.enter_view(view)
        if self._view_timer is not None:
            self._view_timer.cancel()
        target = self.clock.read() + self._timeout
        self._view_timer = self.clock.schedule_at_local(
            target, lambda: self._on_timeout(view), label=f"backoff-timeout-v{view}"
        )

    def _on_timeout(self, view: int) -> None:
        if self._current_view != view:
            return
        # The view failed: complain, double the timeout, and keep waiting.
        self._timeout = min(self._timeout * self.cfg.multiplier, self.cfg.max_timeout)
        self._send_view_change(view + 1)
        target = self.clock.read() + self._timeout
        self._view_timer = self.clock.schedule_at_local(
            target, lambda: self._on_timeout(view), label=f"backoff-retry-v{view}"
        )

    # ------------------------------------------------------------------
    # Messages
    # ------------------------------------------------------------------
    def _send_view_change(self, target_view: int) -> None:
        if target_view in self._view_change_sent:
            return
        self._view_change_sent.add(target_view)
        if self.replica.behaviour.suppress_view_sync("view_change", target_view):
            return
        partial = self.replica.scheme.partial_sign(
            self.replica.signing_key, backoff_payload(target_view)
        )
        self.broadcast(ViewChangeMessage(view=target_view, partial=partial))

    def on_message(self, msg: PacemakerMessage, sender: int) -> None:
        if not isinstance(msg, ViewChangeMessage):
            return
        view = msg.view
        if view <= self._current_view:
            return
        if not self.replica.scheme.verify_partial(msg.partial, backoff_payload(view)):
            return
        signers = self._view_change_signers.setdefault(view, set())
        signers.add(sender)
        # Amplification: join the complaint once f+1 processors raised it.
        if len(signers) >= self.config.small_quorum_size:
            self._send_view_change(view)
        if len(signers) >= self.config.quorum_size:
            self._enter(view, reset_timeout=False)

    # ------------------------------------------------------------------
    # QCs
    # ------------------------------------------------------------------
    def on_qc(self, qc: QuorumCertificate) -> None:
        view = qc.view
        if view < 0 or view in self._qc_handled:
            return
        self._qc_handled.add(view)
        if view + 1 > self._current_view:
            self._enter(view + 1, reset_timeout=True)
