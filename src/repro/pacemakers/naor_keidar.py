"""Naor-Keidar (NK20) style view synchronisation.

NK20 improves Cogsworth's relay mechanism so that it tolerates Byzantine
relays with expected-constant overhead: instead of waiting one relay at a
time, wishes fan out to ``f+1`` relay candidates at once, so at least one of
them is honest and the expected number of relay rounds is constant.  The
worst case remains super-quadratic (Table 1 groups Cogsworth and NK20 in the
same column), but the expected steady-state cost is linear per view change.

The implementation reuses the relay machinery of
:class:`~repro.pacemakers.cogsworth.CogsworthPacemaker` with
``parallel_relays = f + 1``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.config import ProtocolConfig
from repro.pacemakers.cogsworth import CogsworthConfig, CogsworthPacemaker

if TYPE_CHECKING:  # pragma: no cover
    from repro.consensus.replica import Replica


class NaorKeidarConfig(CogsworthConfig):
    """NK20 parameters: identical to Cogsworth except for the relay fan-out."""


class NaorKeidarPacemaker(CogsworthPacemaker):
    """NK20: Cogsworth with wishes fanned out to ``f+1`` relays in parallel."""

    name = "naor-keidar"

    def __init__(
        self,
        replica: "Replica",
        config: ProtocolConfig,
        cogsworth_config: Optional[CogsworthConfig] = None,
    ) -> None:
        if cogsworth_config is None:
            cogsworth_config = CogsworthConfig(
                protocol=config, parallel_relays=config.small_quorum_size
            )
        super().__init__(replica, config, cogsworth_config)
