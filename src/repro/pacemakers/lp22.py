"""The LP22 pacemaker (Lewis-Pye 2022), Section 3.2 of the paper.

LP22 batches views into epochs of ``f + 1`` views.  Entering an epoch
requires a heavy all-to-all synchronisation (epoch-view messages from
``2f+1`` processors, aggregated into an Epoch Certificate that is itself
broadcast).  Within an epoch, a processor enters non-epoch view ``v`` when
the first of two events occurs: its local clock reaches ``c_v = Gamma * v``,
or it sees a QC for view ``v - 1`` (which is what makes LP22 optimistically
responsive).

Crucially — and this is the weakness Lumiere fixes — LP22 never bumps local
clocks forward on QCs.  After a run of fast QCs, clocks lag far behind the
view number, so a single Byzantine leader near the end of an epoch forces
honest processors to wait out the remaining ``Theta(n * Delta)`` of clock
time before the next epoch synchronisation (Figure 1 of the paper).  And
every epoch begins with a Theta(n^2) synchronisation, so the eventual
worst-case communication complexity stays quadratic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.config import ProtocolConfig
from repro.consensus.quorum import QuorumCertificate
from repro.crypto.threshold import PartialSignature, ThresholdSignature
from repro.errors import ConfigurationError, ThresholdError
from repro.pacemakers.base import Pacemaker, PacemakerMessage, RoundRobinLeaderMixin
from repro.sim.clock import LocalTimer

if TYPE_CHECKING:  # pragma: no cover
    from repro.consensus.replica import Replica

_EPS = 1e-9


def lp22_epoch_payload(view: int) -> tuple:
    """Signed payload of an LP22 epoch-view message."""
    return ("lp22-epoch-view", view)


@dataclass(frozen=True, slots=True)
class LP22EpochViewMessage(PacemakerMessage):
    """Broadcast wish to start the epoch whose first view is ``view``."""

    view: int
    partial: PartialSignature


@dataclass(frozen=True, slots=True)
class LP22EpochCertificate(PacemakerMessage):
    """Aggregated 2f+1 epoch-view messages, broadcast by whoever assembles it first."""

    view: int
    aggregate: ThresholdSignature


@dataclass(frozen=True)
class LP22Config:
    """Parameters of LP22: ``Gamma = (x + 1) Delta`` and epochs of ``f + 1`` views."""

    protocol: ProtocolConfig
    gamma_override: Optional[float] = None

    def __post_init__(self) -> None:
        if self.gamma_override is not None and self.gamma_override <= 0:
            raise ConfigurationError("gamma_override must be positive")

    @property
    def gamma(self) -> float:
        if self.gamma_override is not None:
            return self.gamma_override
        return (self.protocol.x + 1) * self.protocol.delta

    @property
    def epoch_length(self) -> int:
        return self.protocol.f + 1

    def clock_time(self, view: int) -> float:
        return self.gamma * view

    def epoch_of(self, view: int) -> int:
        return view // self.epoch_length

    def is_epoch_view(self, view: int) -> bool:
        return view % self.epoch_length == 0

    def first_view_of_epoch(self, epoch: int) -> int:
        return epoch * self.epoch_length


class LP22Pacemaker(RoundRobinLeaderMixin, Pacemaker):
    """LP22: epoch-based synchronisation with optimistic responsiveness."""

    name = "lp22"

    def __init__(
        self,
        replica: "Replica",
        config: ProtocolConfig,
        lp22_config: Optional[LP22Config] = None,
    ) -> None:
        super().__init__(replica, config)
        self.cfg = lp22_config or LP22Config(protocol=config)
        self._current_epoch = -1
        self._epoch_msgs_sent: set[int] = set()
        self._ec_broadcast: set[int] = set()
        self._ec_seen: set[int] = set()
        self._qc_handled: set[int] = set()
        self._epoch_clock_handled: set[int] = set()
        self._epoch_partials: dict[int, dict[int, PartialSignature]] = {}
        self._clock_timer: Optional[LocalTimer] = None

    # ------------------------------------------------------------------
    # Shorthands
    # ------------------------------------------------------------------
    @property
    def gamma(self) -> float:
        return self.cfg.gamma

    @property
    def current_epoch(self) -> int:
        return self._current_epoch

    def clock_time(self, view: int) -> float:
        return self.cfg.clock_time(view)

    # ------------------------------------------------------------------
    # Lifecycle and clock events
    # ------------------------------------------------------------------
    def start(self) -> None:
        self._schedule_next_clock_event(include_current=True)

    def _schedule_next_clock_event(self, include_current: bool = False) -> None:
        if self._clock_timer is not None:
            self._clock_timer.cancel()
            self._clock_timer = None
        lc = self.clock.read()
        candidate = int(math.floor(lc / self.gamma + _EPS))
        if candidate < 0:
            candidate = 0
        if include_current:
            while self.clock_time(candidate) < lc - _EPS:
                candidate += 1
        else:
            while self.clock_time(candidate) <= lc + _EPS:
                candidate += 1
        target = candidate
        self._clock_timer = self.clock.schedule_at_local(
            self.clock_time(target),
            lambda: self._on_clock_target(target),
            label=f"lp22-clock-v{target}",
        )

    def _on_clock_target(self, view: int) -> None:
        self._clock_timer = None
        try:
            if view <= self._current_view:
                return
            if self.clock.read() + _EPS < self.clock_time(view):
                return
            if self.cfg.is_epoch_view(view):
                self._on_clock_reaches_epoch_view(view)
            else:
                # Non-epoch view: enter when the clock reaches its time, if we
                # are in the same epoch and a lower view.
                if self.cfg.epoch_of(view) == self._current_epoch:
                    self._enter(view)
        finally:
            if self._clock_timer is None:
                self._schedule_next_clock_event()

    def _on_clock_reaches_epoch_view(self, view: int) -> None:
        if view in self._epoch_clock_handled:
            return
        self._epoch_clock_handled.add(view)
        # Pause the clock and broadcast the epoch-view wish (heavy sync).
        self.clock.pause()
        self.trace("lp22_epoch_pause", view=view, epoch=self.cfg.epoch_of(view))
        self._send_epoch_view_message(view)

    def _send_epoch_view_message(self, view: int) -> None:
        if view in self._epoch_msgs_sent:
            return
        self._epoch_msgs_sent.add(view)
        self.replica.record_epoch_sync(self.cfg.epoch_of(view))
        if self.replica.behaviour.suppress_view_sync("epoch_view", view):
            return
        partial = self.replica.scheme.partial_sign(
            self.replica.signing_key, lp22_epoch_payload(view)
        )
        self.broadcast(LP22EpochViewMessage(view=view, partial=partial))

    # ------------------------------------------------------------------
    # Messages
    # ------------------------------------------------------------------
    def on_message(self, msg: PacemakerMessage, sender: int) -> None:
        if isinstance(msg, LP22EpochViewMessage):
            self._on_epoch_view_message(msg, sender)
        elif isinstance(msg, LP22EpochCertificate):
            self._on_epoch_certificate(msg.view, msg.aggregate)

    def _on_epoch_view_message(self, msg: LP22EpochViewMessage, sender: int) -> None:
        view = msg.view
        if not self.cfg.is_epoch_view(view) or view < 0:
            return
        if not self.replica.scheme.verify_partial(msg.partial, lp22_epoch_payload(view)):
            return
        if self._current_view >= view:
            return  # only processors in a lower view aggregate
        bucket = self._epoch_partials.setdefault(view, {})
        bucket[sender] = msg.partial
        if len(bucket) < self.config.quorum_size or view in self._ec_broadcast:
            return
        try:
            aggregate = self.replica.scheme.combine(
                list(bucket.values()), self.config.quorum_size, lp22_epoch_payload(view)
            )
        except ThresholdError:
            return
        self._ec_broadcast.add(view)
        if not self.replica.behaviour.suppress_view_sync("ec", view):
            self.broadcast(LP22EpochCertificate(view=view, aggregate=aggregate))
        # Broadcasting to all includes ourselves, which handles our own entry.

    def _on_epoch_certificate(self, view: int, aggregate: ThresholdSignature) -> None:
        if not self.cfg.is_epoch_view(view) or view < 0:
            return
        if view in self._ec_seen:
            return
        if not self.replica.scheme.verify(aggregate, lp22_epoch_payload(view)):
            return
        if aggregate.size < self.config.quorum_size:
            return
        self._ec_seen.add(view)
        if view <= self._current_view:
            return
        # Set lc := c_v, unpause, and enter the epoch.
        self.clock.bump_to(self.clock_time(view))
        self.clock.unpause()
        self._enter(view)
        self.trace("lp22_enter_epoch", view=view, epoch=self.cfg.epoch_of(view))
        self._schedule_next_clock_event()

    # ------------------------------------------------------------------
    # QCs: optimistic responsiveness (enter v on QC for v-1; never bump clocks)
    # ------------------------------------------------------------------
    def on_qc(self, qc: QuorumCertificate) -> None:
        view = qc.view
        if view < 0 or view in self._qc_handled:
            return
        self._qc_handled.add(view)
        next_view = view + 1
        if next_view <= self._current_view:
            return
        if self.cfg.is_epoch_view(next_view):
            # Entering the next epoch still requires the heavy synchronisation.
            return
        if self.cfg.epoch_of(next_view) != self._current_epoch:
            return
        self._enter(next_view)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _enter(self, view: int) -> None:
        if view <= self._current_view:
            return
        self._current_epoch = self.cfg.epoch_of(view)
        self.enter_view(view)
