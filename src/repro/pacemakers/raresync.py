"""RareSync-style pacemaker (Civit et al., DISC 2022).

RareSync was, together with LP22, the first protocol to match the
Dolev-Reischuk bound in partial synchrony: views are batched into epochs of
``f+1`` views, a quadratic all-to-all synchronisation happens once per
epoch, and within an epoch views advance purely by timer.  Unlike LP22 it is
*not* optimistically responsive: even when every leader is honest and the
network is fast, each view occupies its full ``Gamma`` of clock time.

The epoch-synchronisation machinery is identical to LP22's; only the
in-epoch behaviour differs (no QC-driven early entry), so the implementation
subclasses :class:`~repro.pacemakers.lp22.LP22Pacemaker` and disables the
responsive path.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.config import ProtocolConfig
from repro.consensus.quorum import QuorumCertificate
from repro.pacemakers.lp22 import LP22Config, LP22Pacemaker

if TYPE_CHECKING:  # pragma: no cover
    from repro.consensus.replica import Replica


class RareSyncConfig(LP22Config):
    """RareSync uses the same timing parameters as LP22."""


class RareSyncPacemaker(LP22Pacemaker):
    """Epoch-synchronised pacemaker without optimistic responsiveness."""

    name = "raresync"

    def __init__(
        self,
        replica: "Replica",
        config: ProtocolConfig,
        lp22_config: Optional[LP22Config] = None,
    ) -> None:
        super().__init__(replica, config, lp22_config)

    def on_qc(self, qc: QuorumCertificate) -> None:
        """RareSync ignores QCs for view advancement: views advance by timer only."""
        return None
