"""Registry of pacemaker implementations.

The experiment harness and the benchmarks refer to protocols by name; the
registry turns a name plus shared configuration into the factory callable a
:class:`~repro.consensus.replica.Replica` expects.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.config import ProtocolConfig
from repro.errors import ConfigurationError


def available_pacemakers() -> list[str]:
    """Names accepted by :func:`make_pacemaker_factory`.

    Returns
    -------
    list[str]
        Every registered protocol name, in roster order (Lumiere variants
        first, then the baselines it is compared against).
    """
    return [
        "lumiere",
        "basic-lumiere",
        "lp22",
        "fever",
        "cogsworth",
        "naor-keidar",
        "raresync",
        "backoff",
    ]


def make_pacemaker_factory(
    name: str,
    config: ProtocolConfig,
    pacemaker_config: Optional[Any] = None,
) -> Callable[[Any], Any]:
    """Return a ``replica -> Pacemaker`` factory for the named protocol.

    Parameters
    ----------
    name:
        Protocol name; case-insensitive, with ``_`` and ``-`` treated alike
        (see :func:`available_pacemakers`).
    config:
        The shared :class:`~repro.config.ProtocolConfig` (system size,
        ``Delta``, the view-completion constant ``x``).
    pacemaker_config:
        Protocol-specific configuration object (e.g. a
        :class:`~repro.core.config.LumiereConfig`); ``None`` uses the
        protocol's defaults.

    Returns
    -------
    Callable
        A factory mapping a :class:`~repro.consensus.replica.Replica` to a
        fresh pacemaker instance wired to it.

    Raises
    ------
    ConfigurationError
        If ``name`` is not a registered protocol.
    """
    # Imports are local so that importing the registry does not pull in every
    # protocol module (and to keep the package import graph acyclic).
    normalized = name.lower().replace("_", "-")
    if normalized == "lumiere":
        from repro.core.lumiere import LumierePacemaker

        return lambda replica: LumierePacemaker(replica, config, pacemaker_config)
    if normalized == "basic-lumiere":
        from repro.core.lumiere import BasicLumierePacemaker

        return lambda replica: BasicLumierePacemaker(replica, config, pacemaker_config)
    if normalized == "lp22":
        from repro.pacemakers.lp22 import LP22Pacemaker

        return lambda replica: LP22Pacemaker(replica, config, pacemaker_config)
    if normalized == "fever":
        from repro.pacemakers.fever import FeverPacemaker

        return lambda replica: FeverPacemaker(replica, config, pacemaker_config)
    if normalized == "cogsworth":
        from repro.pacemakers.cogsworth import CogsworthPacemaker

        return lambda replica: CogsworthPacemaker(replica, config, pacemaker_config)
    if normalized == "naor-keidar":
        from repro.pacemakers.naor_keidar import NaorKeidarPacemaker

        return lambda replica: NaorKeidarPacemaker(replica, config, pacemaker_config)
    if normalized == "raresync":
        from repro.pacemakers.raresync import RareSyncPacemaker

        return lambda replica: RareSyncPacemaker(replica, config, pacemaker_config)
    if normalized == "backoff":
        from repro.pacemakers.backoff import ExponentialBackoffPacemaker

        return lambda replica: ExponentialBackoffPacemaker(replica, config, pacemaker_config)
    raise ConfigurationError(
        f"unknown pacemaker {name!r}; available: {', '.join(available_pacemakers())}"
    )
