"""The Fever pacemaker (Lewis-Pye & Abraham 2023), Section 3.3 of the paper.

Fever has no epochs at all.  It relies on the *non-standard* assumption that
the local clocks of honest processors are within ``Gamma`` of each other at
the start of the execution (and do not drift before GST).  Views come in
pairs: the even "initial" view and the odd grace view after it, both led by
the same processor.  Processors enter an initial view when their local clock
reaches ``c_v``, send a signed view message to its leader, and the leader
aggregates ``f+1`` of them into a View Certificate.  QCs and VCs bump local
clocks forward, which is what keeps the (f+1)-st honest clock gap bounded by
``Gamma`` forever and yields latency ``O(f_a * Delta + delta)``.

In the simulator, the clock assumption is satisfied automatically (all local
clocks start at 0); scenarios that want to study what happens when the
assumption is violated can perturb clocks via ``LocalClock.set_to`` before
starting the run.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.config import ProtocolConfig
from repro.consensus.quorum import QuorumCertificate
from repro.crypto.threshold import PartialSignature, ThresholdSignature
from repro.errors import ConfigurationError
from repro.pacemakers.base import Pacemaker, PacemakerMessage, PairedLeaderMixin
from repro.sim.clock import LocalTimer

if TYPE_CHECKING:  # pragma: no cover
    from repro.consensus.replica import Replica

_EPS = 1e-9


def fever_view_payload(view: int) -> tuple:
    """Signed payload of a Fever view message."""
    return ("fever-view", view)


@dataclass(frozen=True, slots=True)
class FeverViewMessage(PacemakerMessage):
    """A processor's signed wish to run initial view ``view``, sent to its leader."""

    view: int
    partial: PartialSignature


@dataclass(frozen=True, slots=True)
class FeverViewCertificate(PacemakerMessage):
    """Threshold signature of f+1 view messages, broadcast by the leader."""

    view: int
    aggregate: ThresholdSignature


@dataclass(frozen=True)
class FeverConfig:
    """Parameters of Fever: ``Gamma = 2 (x + 1) Delta``."""

    protocol: ProtocolConfig
    gamma_override: Optional[float] = None

    def __post_init__(self) -> None:
        if self.gamma_override is not None and self.gamma_override <= 0:
            raise ConfigurationError("gamma_override must be positive")

    @property
    def gamma(self) -> float:
        if self.gamma_override is not None:
            return self.gamma_override
        return 2.0 * (self.protocol.x + 1) * self.protocol.delta

    def clock_time(self, view: int) -> float:
        return self.gamma * view

    def is_initial(self, view: int) -> bool:
        return view % 2 == 0


class FeverPacemaker(PairedLeaderMixin, Pacemaker):
    """Fever: clock-bump view synchronisation without epochs."""

    name = "fever"

    def __init__(
        self,
        replica: "Replica",
        config: ProtocolConfig,
        fever_config: Optional[FeverConfig] = None,
    ) -> None:
        super().__init__(replica, config)
        self.cfg = fever_config or FeverConfig(protocol=config)
        self._view_msgs_sent: set[int] = set()
        self._vc_partials: dict[int, dict[int, PartialSignature]] = {}
        self._vc_formed: set[int] = set()
        self._vc_seen: set[int] = set()
        self._qc_handled: set[int] = set()
        self._clock_timer: Optional[LocalTimer] = None

    @property
    def gamma(self) -> float:
        return self.cfg.gamma

    def clock_time(self, view: int) -> float:
        return self.cfg.clock_time(view)

    # ------------------------------------------------------------------
    # Lifecycle and clock events
    # ------------------------------------------------------------------
    def start(self) -> None:
        self._schedule_next_clock_event(include_current=True)

    def _schedule_next_clock_event(self, include_current: bool = False) -> None:
        if self._clock_timer is not None:
            self._clock_timer.cancel()
            self._clock_timer = None
        lc = self.clock.read()
        step = 2 * self.gamma
        candidate = int(math.floor(lc / step + _EPS)) * 2
        if candidate < 0:
            candidate = 0
        if include_current:
            while self.clock_time(candidate) < lc - _EPS:
                candidate += 2
        else:
            while self.clock_time(candidate) <= lc + _EPS:
                candidate += 2
        target = candidate
        self._clock_timer = self.clock.schedule_at_local(
            self.clock_time(target),
            lambda: self._on_clock_target(target),
            label=f"fever-clock-v{target}",
        )

    def _on_clock_target(self, view: int) -> None:
        self._clock_timer = None
        try:
            if view <= self._current_view:
                return
            if self.clock.read() + _EPS < self.clock_time(view):
                return
            # Initial view reached by real-time clock advance.
            self.enter_view(view)
            self._send_view_message(view)
        finally:
            if self._clock_timer is None:
                self._schedule_next_clock_event()

    # ------------------------------------------------------------------
    # Messages
    # ------------------------------------------------------------------
    def on_message(self, msg: PacemakerMessage, sender: int) -> None:
        if isinstance(msg, FeverViewMessage):
            self._on_view_message(msg, sender)
        elif isinstance(msg, FeverViewCertificate):
            self._on_view_certificate(msg, sender)

    def _on_view_message(self, msg: FeverViewMessage, sender: int) -> None:
        view = msg.view
        if not self.cfg.is_initial(view) or view < 0:
            return
        if self.leader_of(view) != self.pid or view < self._current_view:
            return
        if not self.replica.scheme.verify_partial(msg.partial, fever_view_payload(view)):
            return
        bucket = self._vc_partials.setdefault(view, {})
        bucket[sender] = msg.partial
        if len(bucket) < self.config.small_quorum_size or view in self._vc_formed:
            return
        aggregate = self.replica.scheme.combine(
            list(bucket.values()), self.config.small_quorum_size, fever_view_payload(view)
        )
        self._vc_formed.add(view)
        if not self.replica.behaviour.suppress_view_sync("vc", view):
            self.broadcast(FeverViewCertificate(view=view, aggregate=aggregate))

    def _on_view_certificate(self, msg: FeverViewCertificate, sender: int) -> None:
        view = msg.view
        if not self.cfg.is_initial(view) or view < 0 or view in self._vc_seen:
            return
        if not self.replica.scheme.verify(msg.aggregate, fever_view_payload(view)):
            return
        self._vc_seen.add(view)
        if view <= self._current_view:
            return
        if self.clock.read() < self.clock_time(view) - _EPS:
            self.clock.bump_to(self.clock_time(view))
        self.enter_view(view)
        self._schedule_next_clock_event()

    # ------------------------------------------------------------------
    # QCs
    # ------------------------------------------------------------------
    def on_qc(self, qc: QuorumCertificate) -> None:
        view = qc.view
        if view < 0 or view in self._qc_handled:
            return
        self._qc_handled.add(view)
        next_view = view + 1
        if self.clock.read() < self.clock_time(next_view) - _EPS:
            self.clock.bump_to(self.clock_time(next_view))
        if next_view > self._current_view:
            self.enter_view(next_view)
        self._schedule_next_clock_event()

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _send_view_message(self, view: int) -> None:
        if view in self._view_msgs_sent:
            return
        self._view_msgs_sent.add(view)
        if self.replica.behaviour.suppress_view_sync("view", view):
            return
        partial = self.replica.scheme.partial_sign(
            self.replica.signing_key, fever_view_payload(view)
        )
        self.send(self.leader_of(view), FeverViewMessage(view=view, partial=partial))
