"""Reproduction of "Lumiere: Making Optimal BFT for Partial Synchrony Practical".

The package is organised around a discrete-event simulator of the partial
synchrony model (:mod:`repro.sim`), a simulated cryptography layer
(:mod:`repro.crypto`), a chained-HotStuff consensus substrate
(:mod:`repro.consensus`), the Lumiere view-synchronisation protocol that is
the paper's contribution (:mod:`repro.core`), the baseline pacemakers it is
compared against (:mod:`repro.pacemakers`), adversary models
(:mod:`repro.adversary`), metrics (:mod:`repro.metrics`) and the experiment
harness that regenerates the paper's table and figure
(:mod:`repro.experiments`), and the campaign runner that executes
declarative sweeps over it — serially or on a process pool, with an
on-disk result cache (:mod:`repro.runner`).

The protocol core is runtime-agnostic (:mod:`repro.runtime`): the same
replicas run under the simulator, on an asyncio loop in-memory, or over
real TCP sockets (``examples/live_cluster.py`` boots a live n=4 cluster).

Quickstart::

    from repro.experiments import ScenarioConfig, run_scenario

    result = run_scenario(ScenarioConfig(n=4, pacemaker="lumiere", duration=200.0))
    print(result.summary())

Sweeps::

    from repro.runner import Campaign, Sweep

    campaign = Campaign(name="sweep", build=my_module.build_config,
                        sweeps=(Sweep("pacemaker", ("lumiere", "lp22")),))
    records = campaign.run(backend="process", cache=".repro-cache").records
"""

from repro.version import __version__

__all__ = ["__version__"]
