"""Event queue and virtual-time simulator kernel.

The kernel is intentionally small: a priority queue of ``(time, sequence)``
ordered events, each carrying a callback.  Everything else in the library
(network delivery, local-clock timers, protocol timeouts) is built on top of
:meth:`Simulator.schedule` / :meth:`Simulator.schedule_at` (cancellable
timers) and :meth:`Simulator.schedule_fired` /
:meth:`Simulator.schedule_fired_at` (the handle-free fast lane used by
network deliveries).

Determinism: ties on time are broken by insertion order, and all randomness
in the library flows through :attr:`Simulator.rng`, which is seeded at
construction.  Two runs with the same configuration and seed produce
identical traces.
"""

from __future__ import annotations

import heapq
import random
from typing import Any, Callable, Optional

from repro.errors import SimulationError

# Heap entries are plain ``(time, seq, handle_or_None, callback, args)``
# tuples: tuple comparison runs in C and never reaches the third element
# (seq is unique), where a dataclass with ``order=True`` paid a Python-level
# ``__lt__`` on every sift — a measurable share of large-n runs.  Fire-and-
# forget events (the bulk of all events: every network delivery) carry
# ``None`` in the handle slot, so they cost one tuple and nothing else — no
# EventHandle allocation and no cancellation bookkeeping on the hot path.


class EventHandle:
    """Handle returned by the scheduling methods, used to cancel an event."""

    __slots__ = ("time", "callback", "args", "cancelled", "fired", "label", "_sim")

    def __init__(
        self,
        time: float,
        callback: Callable[..., None],
        args: tuple[Any, ...],
        label: str = "",
        sim: Optional["Simulator"] = None,
    ) -> None:
        self.time = time
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.fired = False
        self.label = label
        self._sim = sim

    def cancel(self) -> None:
        """Prevent the event from firing. Safe to call more than once."""
        if self.cancelled or self.fired:
            return
        self.cancelled = True
        if self._sim is not None:
            self._sim._note_cancelled()

    @property
    def pending(self) -> bool:
        """True while the event is still scheduled and not cancelled."""
        return not self.cancelled and not self.fired

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "fired" if self.fired else ("cancelled" if self.cancelled else "pending")
        return f"EventHandle(t={self.time:.3f}, {state}, label={self.label!r})"


class Simulator:
    """A deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Seed for :attr:`rng`.  All random choices made by delay models,
        leader-schedule shuffles, workloads etc. must use this generator so
        that runs are reproducible.
    """

    #: Compaction kicks in once this many cancelled entries linger in the
    #: queue *and* they outnumber the live ones (see :meth:`_note_cancelled`).
    COMPACTION_MIN_CANCELLED = 256

    #: Hard cap on events executed at one virtual timestamp.  A zero-delay
    #: event chain (e.g. a delay model proposing 0.0 for every message) makes
    #: unbounded progress without virtual time ever advancing, so
    #: ``run(until=...)`` would otherwise never return.  Exceeding the budget
    #: raises :class:`SimulationError` instead of livelocking; legitimate
    #: bursts (n^2 broadcast deliveries at one instant) sit far below it.
    #: Handle-free :meth:`schedule_fired` events draw on the same budget.
    MAX_EVENTS_PER_TIMESTAMP = 100_000

    def __init__(self, seed: int = 0) -> None:
        self._now = 0.0
        self._seq = 0
        self._queue: list[tuple[float, int, Optional[EventHandle], Callable[..., None], tuple]] = []
        self._events_processed = 0
        self._events_at_now = 0
        self._cancelled_pending = 0
        self.rng = random.Random(seed)
        self.seed = seed

    # ------------------------------------------------------------------
    # Time
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far (useful for run budgets)."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of heap entries still queued, *including* cancelled ones.

        Cancellation is lazy: a cancelled event stays in the heap until it is
        popped or a compaction sweep removes it, so this is a measure of heap
        size, not of outstanding work.  Use :attr:`active_events` for the
        number of events that will actually fire.
        """
        return len(self._queue)

    @property
    def active_events(self) -> int:
        """Number of queued events that are not cancelled (i.e. will fire)."""
        return len(self._queue) - self._cancelled_pending

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        callback: Callable[..., None],
        *args: Any,
        label: str = "",
    ) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule with negative delay {delay!r}")
        return self.schedule_at(self._now + delay, callback, *args, label=label)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., None],
        *args: Any,
        label: str = "",
    ) -> EventHandle:
        """Schedule ``callback(*args)`` to run at absolute virtual ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at {time!r}, which is before now={self._now!r}"
            )
        handle = EventHandle(time, callback, args, label=label, sim=self)
        self._seq += 1
        heapq.heappush(self._queue, (time, self._seq, handle, callback, args))
        return handle

    def schedule_fired(
        self,
        delay: float,
        callback: Callable[..., None],
        *args: Any,
    ) -> None:
        """Schedule ``callback(*args)`` ``delay`` units from now, fire-and-forget.

        The fast lane for events that are never cancelled or inspected:
        no :class:`EventHandle` is allocated and no cancellation bookkeeping
        happens — the event is one heap tuple.  All network deliveries go
        through this path; use :meth:`schedule` when the caller may need to
        cancel (timers, timeouts).
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule with negative delay {delay!r}")
        self._seq += 1
        heapq.heappush(self._queue, (self._now + delay, self._seq, None, callback, args))

    def schedule_fired_at(
        self,
        time: float,
        callback: Callable[..., None],
        *args: Any,
    ) -> None:
        """Schedule ``callback(*args)`` at absolute ``time``, fire-and-forget.

        The absolute-time variant of :meth:`schedule_fired`; same contract
        (no handle, no cancellation).
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at {time!r}, which is before now={self._now!r}"
            )
        self._seq += 1
        heapq.heappush(self._queue, (time, self._seq, None, callback, args))

    # ------------------------------------------------------------------
    # Lazy-cancellation bookkeeping
    # ------------------------------------------------------------------
    def _note_cancelled(self) -> None:
        """Called by :meth:`EventHandle.cancel` the first time a handle is cancelled.

        Timer-heavy protocols (Lumiere/Fever pacemakers re-arm timeouts on
        every view) cancel thousands of events that would otherwise linger in
        the heap until their scheduled time.  Once the cancelled entries both
        exceed :attr:`COMPACTION_MIN_CANCELLED` and outnumber the live ones,
        the queue is rebuilt without them, keeping push/pop costs bounded by
        the *active* event count.
        """
        self._cancelled_pending += 1
        if (
            self._cancelled_pending >= self.COMPACTION_MIN_CANCELLED
            and self._cancelled_pending * 2 > len(self._queue)
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries from the heap and restore the invariant.

        Compacts **in place**: run() holds a local reference to the queue
        list across events, so rebinding ``self._queue`` here would leave it
        draining a stale list.
        """
        queue = self._queue
        queue[:] = [entry for entry in queue if entry[2] is None or not entry[2].cancelled]
        heapq.heapify(queue)
        self._cancelled_pending = 0

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _budget_exceeded(self) -> SimulationError:
        return SimulationError(
            f"more than {self.MAX_EVENTS_PER_TIMESTAMP} events executed at "
            f"timestamp {self._now!r} without time advancing; this is almost "
            "always a zero-delay event chain (e.g. a delay model proposing "
            "0.0 for every message) — give NetworkConfig a min_delay floor "
            "or raise Simulator.MAX_EVENTS_PER_TIMESTAMP"
        )

    def step(self) -> bool:
        """Execute the next non-cancelled event.

        Returns ``True`` if an event was executed and ``False`` if the queue
        is empty.

        Raises
        ------
        SimulationError
            If more than :attr:`MAX_EVENTS_PER_TIMESTAMP` events execute
            without virtual time advancing (a zero-delay event chain).
        """
        queue = self._queue
        while queue:
            time, _, handle, callback, args = heapq.heappop(queue)
            if handle is not None:
                if handle.cancelled:
                    self._cancelled_pending -= 1
                    continue
                handle.fired = True
            if time != self._now:
                self._now = time
                self._events_at_now = 0
            self._events_at_now += 1
            if self._events_at_now > self.MAX_EVENTS_PER_TIMESTAMP:
                raise self._budget_exceeded()
            self._events_processed += 1
            callback(*args)
            return True
        return False

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> None:
        """Run events until the queue is empty, ``until`` is reached, or
        ``max_events`` further events have been processed.

        When ``until`` is given, the simulator finishes with ``now`` equal to
        ``until`` even if the queue drained earlier, so callers can treat it
        as "advance virtual time to this point".
        """
        # The pop loop is inlined rather than composed from _peek_time() +
        # step(): the composed form peeked and re-popped the heap root for
        # every event, which profiling showed was the single largest
        # kernel-side cost of large-n runs.
        queue = self._queue
        budget = max_events if max_events is not None else -1
        if max_events is not None and budget <= 0:
            return
        max_at_now = self.MAX_EVENTS_PER_TIMESTAMP
        while queue:
            if budget == 0:
                return
            entry = queue[0]
            handle = entry[2]
            if handle is not None and handle.cancelled:
                heapq.heappop(queue)
                self._cancelled_pending -= 1
                continue
            time = entry[0]
            if until is not None and time > until:
                if until > self._now:
                    self._now = until
                    self._events_at_now = 0
                return
            heapq.heappop(queue)
            if handle is not None:
                handle.fired = True
            if time != self._now:
                self._now = time
                self._events_at_now = 1
            else:
                self._events_at_now += 1
                if self._events_at_now > max_at_now:
                    raise self._budget_exceeded()
            self._events_processed += 1
            entry[3](*entry[4])
            if budget > 0:
                budget -= 1
        if until is not None and until > self._now:
            self._now = until
            self._events_at_now = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Simulator(now={self._now:.3f}, active={self.active_events}, "
            f"processed={self._events_processed})"
        )
