"""Partial-synchrony network model.

The network enforces the defining constraint of the partial synchrony model
of Dwork, Lynch and Stockmeyer: a message sent at time ``t`` is delivered by
``max(GST, t) + Delta``.  Within that constraint, the adversary (modelled by
a :class:`DelayModel`) chooses the actual delivery time of every message.

Messages are never lost.  A processor sending a message "to all processors"
includes itself, and the copy to itself is delivered immediately, matching
the convention stated in Section 4 of the paper.
"""

from __future__ import annotations

import itertools
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional, Sequence

from repro.errors import ConfigurationError, SimulationError
from repro.sim.events import Simulator


@dataclass(frozen=True)
class NetworkConfig:
    """Timing parameters of the partial synchrony model.

    Attributes
    ----------
    delta:
        The known bound ``Delta`` on message delay after GST.
    gst:
        The Global Stabilisation Time chosen by the adversary.  Unknown to
        the protocols (they never read it); known to the simulator.
    actual_delay:
        The actual (unknown to the protocol) bound ``delta`` on message
        delay after GST, used by the default delay models.  Must satisfy
        ``0 < actual_delay <= delta``.
    pre_gst_max_delay:
        Upper bound used by delay models for messages sent before GST.  The
        model itself caps delivery at ``GST + delta`` anyway; this bound only
        shapes how chaotic the pre-GST period looks.
    min_delay:
        Floor applied to every delay a :class:`DelayModel` proposes for a
        message between *distinct* processors (self-messages stay immediate).
        The default of ``0.0`` keeps the historical behaviour; setting it
        positive guarantees virtual time advances along every message chain,
        so a model proposing ``0.0`` forever can no longer livelock
        ``Simulator.run(until=...)`` (see also
        :attr:`~repro.sim.events.Simulator.MAX_EVENTS_PER_TIMESTAMP`, the
        complementary guard that trips when no floor is set).
    """

    delta: float = 1.0
    gst: float = 0.0
    actual_delay: float = 0.1
    pre_gst_max_delay: float = 50.0
    min_delay: float = 0.0

    def __post_init__(self) -> None:
        if self.delta <= 0:
            raise ConfigurationError(f"delta must be positive, got {self.delta}")
        if self.actual_delay <= 0 or self.actual_delay > self.delta:
            raise ConfigurationError(
                f"actual_delay must be in (0, delta={self.delta}], got {self.actual_delay}"
            )
        if self.gst < 0:
            raise ConfigurationError(f"gst must be non-negative, got {self.gst}")
        if self.pre_gst_max_delay < 0:
            raise ConfigurationError(
                f"pre_gst_max_delay must be non-negative, got {self.pre_gst_max_delay}"
            )
        if self.min_delay < 0 or self.min_delay > self.delta:
            raise ConfigurationError(
                f"min_delay must be in [0, delta={self.delta}], got {self.min_delay}"
            )


@dataclass(frozen=True)
class Envelope:
    """A single point-to-point message in flight.

    Attributes
    ----------
    msg_id:
        Unique, monotonically increasing id assigned by the network.
    sender, recipient:
        Processor ids of the two endpoints.
    payload:
        The message content, delivered verbatim.
    send_time:
        Virtual time the message was sent.
    deliver_time:
        Virtual time the message will be (or was) delivered.
    """

    msg_id: int
    sender: int
    recipient: int
    payload: Any
    send_time: float
    deliver_time: float

    @property
    def is_self_message(self) -> bool:
        """Whether the message was sent by a processor to itself."""
        return self.sender == self.recipient


class DelayModel(ABC):
    """Strategy choosing the delay of each message, i.e. the network adversary."""

    @abstractmethod
    def propose_delay(self, envelope_info: "PendingSend", sim: Simulator) -> float:
        """Return the proposed delay for the message described by ``envelope_info``.

        Parameters
        ----------
        envelope_info:
            The :class:`PendingSend` describing the message (sender,
            recipient, payload, send time, whether the send is after GST).
        sim:
            The simulator; use ``sim.rng`` for randomness so runs stay
            reproducible, and ``sim.now`` for the current time.

        Returns
        -------
        float
            The proposed delay in virtual-time units.  Advisory: the network
            floors it at :attr:`NetworkConfig.min_delay` and clamps delivery
            to the partial-synchrony deadline ``max(GST, send_time) + Delta``.
        """

    def describe(self) -> str:
        """Human-readable description used in experiment reports."""
        return type(self).__name__


@dataclass(frozen=True)
class PendingSend:
    """The information a :class:`DelayModel` may base its decision on.

    Attributes
    ----------
    sender, recipient:
        Processor ids of the two endpoints.
    payload:
        The message content (delay models may inspect its type, e.g. to
        throttle one traffic class).
    send_time:
        Virtual time of the send.
    after_gst:
        Whether ``send_time >= GST``.
    """

    sender: int
    recipient: int
    payload: Any
    send_time: float
    after_gst: bool


class FixedDelay(DelayModel):
    """Every message takes exactly ``delay`` time units (the synchronous case).

    Parameters
    ----------
    delay:
        The delay applied to every message; must be non-negative.
    """

    def __init__(self, delay: float) -> None:
        if delay < 0:
            raise ConfigurationError(f"delay must be non-negative, got {delay}")
        self.delay = delay

    def propose_delay(self, envelope_info: PendingSend, sim: Simulator) -> float:
        return self.delay

    def describe(self) -> str:
        return f"FixedDelay({self.delay})"


class UniformDelay(DelayModel):
    """Delays drawn uniformly from ``[low, high]`` using the simulator's RNG.

    Parameters
    ----------
    low, high:
        Bounds of the uniform range; need ``0 <= low <= high``.
    """

    def __init__(self, low: float, high: float) -> None:
        if low < 0 or high < low:
            raise ConfigurationError(f"invalid uniform delay range [{low}, {high}]")
        self.low = low
        self.high = high

    def propose_delay(self, envelope_info: PendingSend, sim: Simulator) -> float:
        return sim.rng.uniform(self.low, self.high)

    def describe(self) -> str:
        return f"UniformDelay({self.low}, {self.high})"


class PreGSTChaos(DelayModel):
    """Adversarial asynchrony before GST, a benign model after GST.

    Before GST, every message is delayed by a value drawn uniformly from
    ``[0, pre_gst_max_delay]`` (the network clamp still guarantees delivery by
    ``GST + Delta``).  After GST the wrapped ``post_model`` decides.

    Parameters
    ----------
    post_model:
        Delay model governing messages sent at or after GST.
    pre_gst_max_delay:
        Upper bound of the uniform pre-GST delay distribution.
    """

    def __init__(self, post_model: DelayModel, pre_gst_max_delay: float = 50.0) -> None:
        if pre_gst_max_delay < 0:
            raise ConfigurationError("pre_gst_max_delay must be non-negative")
        self.post_model = post_model
        self.pre_gst_max_delay = pre_gst_max_delay

    def propose_delay(self, envelope_info: PendingSend, sim: Simulator) -> float:
        if envelope_info.after_gst:
            return self.post_model.propose_delay(envelope_info, sim)
        return sim.rng.uniform(0.0, self.pre_gst_max_delay)

    def describe(self) -> str:
        return f"PreGSTChaos(pre_max={self.pre_gst_max_delay}, post={self.post_model.describe()})"


class AdversarialDelay(DelayModel):
    """Delegates the delay decision to an arbitrary callable.

    The callable receives ``(pending_send, sim)`` and returns a delay.  Used
    by attack strategies that need full control of the schedule.

    ``describe()`` identifies the model in campaign cache keys, so it must
    distinguish different schedules.  The default (the callable's qualname)
    is only sound for module-level functions; campaigns reject lambdas and
    closures, whose qualnames collide across different captured parameters —
    give those a distinctive ``name``.

    Parameters
    ----------
    fn:
        Callable ``(pending_send, sim) -> delay`` deciding each message.
    name:
        Stable identifier used by ``describe()``; required for lambdas and
        closures (see above).
    """

    def __init__(self, fn: Callable[[PendingSend, Simulator], float], name: str = "") -> None:
        self.fn = fn
        self.name = name

    def propose_delay(self, envelope_info: PendingSend, sim: Simulator) -> float:
        return self.fn(envelope_info, sim)

    def describe(self) -> str:
        if self.name:
            return f"AdversarialDelay({self.name})"
        # Default to the callable's identity so two different module-level
        # schedules never share a description (and hence a cache key).
        fn_id = getattr(self.fn, "__qualname__", None) or repr(self.fn)
        return f"AdversarialDelay({fn_id})"


class TargetedDelay(DelayModel):
    """Delay messages touching a set of target processors; others use a base model.

    This captures attacks where the adversary slows down traffic to or from
    specific honest processors (e.g. to maximise the honest clock gap)
    without violating the post-GST bound.

    Parameters
    ----------
    base:
        Delay model for traffic not touching a target.
    targets:
        Processor ids under attack.
    target_delay:
        Proposed delay for targeted traffic (clamped by the network).
    direction:
        ``"to"`` (inbound), ``"from"`` (outbound) or ``"both"`` (default).
    """

    def __init__(
        self,
        base: DelayModel,
        targets: Iterable[int],
        target_delay: float,
        direction: str = "both",
    ) -> None:
        if direction not in ("to", "from", "both"):
            raise ConfigurationError(f"direction must be 'to', 'from' or 'both', got {direction!r}")
        self.base = base
        self.targets = frozenset(targets)
        self.target_delay = target_delay
        self.direction = direction

    def propose_delay(self, envelope_info: PendingSend, sim: Simulator) -> float:
        hit = False
        if self.direction in ("to", "both") and envelope_info.recipient in self.targets:
            hit = True
        if self.direction in ("from", "both") and envelope_info.sender in self.targets:
            hit = True
        if hit:
            return self.target_delay
        return self.base.propose_delay(envelope_info, sim)

    def describe(self) -> str:
        return (
            f"TargetedDelay(targets={sorted(self.targets)}, delay={self.target_delay}, "
            f"direction={self.direction}, base={self.base.describe()})"
        )


class Network:
    """Delivers messages between registered processes under partial synchrony.

    The network exposes two observation hooks used by the metrics layer:

    * ``send_listeners`` — called with each :class:`Envelope` when it is sent;
    * ``deliver_listeners`` — called with each :class:`Envelope` when it is
      delivered to its recipient.

    Parameters
    ----------
    sim:
        The simulator that schedules deliveries.
    config:
        Timing parameters of the partial-synchrony model.
    delay_model:
        The network adversary; ``None`` means
        ``FixedDelay(config.actual_delay)``.
    """

    def __init__(
        self,
        sim: Simulator,
        config: NetworkConfig,
        delay_model: Optional[DelayModel] = None,
    ) -> None:
        self.sim = sim
        self.config = config
        self.delay_model = delay_model or FixedDelay(config.actual_delay)
        self._processes: dict[int, Any] = {}
        self._sorted_ids: tuple[int, ...] = ()
        self._msg_ids = itertools.count()
        self.send_listeners: list[Callable[[Envelope], None]] = []
        self.deliver_listeners: list[Callable[[Envelope], None]] = []
        self.messages_sent = 0
        self.messages_delivered = 0

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(self, process: Any) -> None:
        """Register a process as a message endpoint.

        Parameters
        ----------
        process:
            Anything with a ``pid`` attribute and a
            ``deliver(payload, sender)`` method.  Ids must be unique;
            processes never unregister.

        Raises
        ------
        SimulationError
            If a process with the same ``pid`` is already registered.
        """
        pid = process.pid
        if pid in self._processes:
            raise SimulationError(f"process id {pid} registered twice")
        self._processes[pid] = process
        # The sorted id list is read on every broadcast; re-sorting there was
        # a measurable hot-path cost, so it is cached and only invalidated
        # here (processes never unregister).
        self._sorted_ids = tuple(sorted(self._processes))

    @property
    def process_ids(self) -> list[int]:
        """Sorted ids of all registered processes."""
        return list(self._sorted_ids)

    def process(self, pid: int) -> Any:
        """Return the registered process with id ``pid``."""
        return self._processes[pid]

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(self, sender: int, recipient: int, payload: Any) -> Envelope:
        """Send ``payload`` from ``sender`` to ``recipient``.

        Returns
        -------
        Envelope
            The in-flight message; its ``deliver_time`` records when it will
            arrive.

        Raises
        ------
        SimulationError
            If ``recipient`` is not a registered process id.
        """
        if recipient not in self._processes:
            raise SimulationError(f"unknown recipient {recipient}")
        return self._send_one(sender, recipient, payload, self.sim.now, self.send_listeners)

    def broadcast(
        self, sender: int, payload: Any, include_self: bool = True
    ) -> list[Envelope]:
        """Send ``payload`` from ``sender`` to every registered process.

        Parameters
        ----------
        sender:
            Sending processor id.
        payload:
            Message content, shared (not copied) across all envelopes.
        include_self:
            Whether to include the sender itself (the paper's convention;
            the self-copy is delivered immediately).

        Returns
        -------
        list[Envelope]
            One envelope per recipient, in ascending processor-id order.
        """
        now = self.sim.now
        listeners = self.send_listeners
        envelopes = []
        for pid in self._sorted_ids:
            if pid == sender and not include_self:
                continue
            envelopes.append(self._send_one(sender, pid, payload, now, listeners))
        return envelopes

    def multicast(self, sender: int, recipients: Sequence[int], payload: Any) -> list[Envelope]:
        """Send ``payload`` from ``sender`` to each processor in ``recipients``.

        Returns
        -------
        list[Envelope]
            One envelope per recipient, in ``recipients`` order.

        Raises
        ------
        SimulationError
            If any recipient is not a registered process id.
        """
        now = self.sim.now
        listeners = self.send_listeners
        processes = self._processes
        envelopes = []
        for pid in recipients:
            if pid not in processes:
                raise SimulationError(f"unknown recipient {pid}")
            envelopes.append(self._send_one(sender, pid, payload, now, listeners))
        return envelopes

    def _send_one(
        self,
        sender: int,
        recipient: int,
        payload: Any,
        now: float,
        listeners: Sequence[Callable[[Envelope], None]],
    ) -> Envelope:
        """Construct, announce and schedule one envelope; shared send path."""
        deliver_time = self._delivery_time(sender, recipient, payload, now)
        envelope = Envelope(
            msg_id=next(self._msg_ids),
            sender=sender,
            recipient=recipient,
            payload=payload,
            send_time=now,
            deliver_time=deliver_time,
        )
        self.messages_sent += 1
        for listener in listeners:
            listener(envelope)
        self.sim.schedule_at(deliver_time, self._deliver, envelope, label="deliver")
        return envelope

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _delivery_time(self, sender: int, recipient: int, payload: Any, now: float) -> float:
        if sender == recipient:
            # Self-messages are received immediately (paper, Section 4).
            return now
        after_gst = now >= self.config.gst
        pending = PendingSend(
            sender=sender,
            recipient=recipient,
            payload=payload,
            send_time=now,
            after_gst=after_gst,
        )
        raw_delay = max(self.config.min_delay, self.delay_model.propose_delay(pending, self.sim))
        deadline = max(self.config.gst, now) + self.config.delta
        return min(now + raw_delay, deadline)

    def _deliver(self, envelope: Envelope) -> None:
        self.messages_delivered += 1
        for listener in self.deliver_listeners:
            listener(envelope)
        process = self._processes.get(envelope.recipient)
        if process is None:  # pragma: no cover - defensive; processes never unregister
            return
        process.deliver(envelope.payload, envelope.sender)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Network(n={len(self._processes)}, sent={self.messages_sent}, "
            f"delivered={self.messages_delivered}, model={self.delay_model.describe()})"
        )
