"""Partial-synchrony network model.

The network enforces the defining constraint of the partial synchrony model
of Dwork, Lynch and Stockmeyer: a message sent at time ``t`` is delivered by
``max(GST, t) + Delta``.  Within that constraint, the adversary (modelled by
a :class:`DelayModel`) chooses the actual delivery time of every message.

Messages are never lost.  A processor sending a message "to all processors"
includes itself, and the copy to itself is delivered immediately, matching
the convention stated in Section 4 of the paper.
"""

from __future__ import annotations

import itertools
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Iterable, NamedTuple, Optional, Sequence

from repro.errors import ConfigurationError, SimulationError
from repro.sim.events import Simulator

if TYPE_CHECKING:  # pragma: no cover - type-checking only (keeps sim crypto-free)
    from repro.crypto.backend import CryptoBackend


@dataclass(frozen=True)
class NetworkConfig:
    """Timing parameters of the partial synchrony model.

    Attributes
    ----------
    delta:
        The known bound ``Delta`` on message delay after GST.
    gst:
        The Global Stabilisation Time chosen by the adversary.  Unknown to
        the protocols (they never read it); known to the simulator.
    actual_delay:
        The actual (unknown to the protocol) bound ``delta`` on message
        delay after GST, used by the default delay models.  Must satisfy
        ``0 < actual_delay <= delta``.
    pre_gst_max_delay:
        Upper bound used by delay models for messages sent before GST.  The
        model itself caps delivery at ``GST + delta`` anyway; this bound only
        shapes how chaotic the pre-GST period looks.
    min_delay:
        Floor applied to every delay a :class:`DelayModel` proposes for a
        message between *distinct* processors (self-messages stay immediate).
        The default of ``0.0`` keeps the historical behaviour; setting it
        positive guarantees virtual time advances along every message chain,
        so a model proposing ``0.0`` forever can no longer livelock
        ``Simulator.run(until=...)`` (see also
        :attr:`~repro.sim.events.Simulator.MAX_EVENTS_PER_TIMESTAMP`, the
        complementary guard that trips when no floor is set).  Must satisfy
        ``0 <= min_delay <= actual_delay``: a floor above ``actual_delay``
        would contradict the claim that ``actual_delay`` bounds every
        post-GST delay (and a floor above ``delta`` would break the partial
        synchrony model outright).
    """

    delta: float = 1.0
    gst: float = 0.0
    actual_delay: float = 0.1
    pre_gst_max_delay: float = 50.0
    min_delay: float = 0.0

    def __post_init__(self) -> None:
        if self.delta <= 0:
            raise ConfigurationError(f"delta must be positive, got {self.delta}")
        if self.actual_delay <= 0 or self.actual_delay > self.delta:
            raise ConfigurationError(
                f"actual_delay must be in (0, delta={self.delta}], got {self.actual_delay}"
            )
        if self.gst < 0:
            raise ConfigurationError(f"gst must be non-negative, got {self.gst}")
        if self.pre_gst_max_delay < 0:
            raise ConfigurationError(
                f"pre_gst_max_delay must be non-negative, got {self.pre_gst_max_delay}"
            )
        if self.min_delay < 0 or self.min_delay > self.delta:
            raise ConfigurationError(
                f"min_delay must be in [0, delta={self.delta}], got {self.min_delay}"
            )
        if self.min_delay > self.actual_delay:
            raise ConfigurationError(
                f"min_delay={self.min_delay} exceeds actual_delay={self.actual_delay}: "
                "the floor would push every post-GST delay above the actual bound "
                "delta, making the timing parameters contradictory — raise "
                "actual_delay or lower min_delay"
            )


class Envelope(NamedTuple):
    """A single point-to-point message in flight.

    Tuple-backed (``NamedTuple``) rather than a frozen dataclass: one
    envelope is allocated per delivery, and the frozen-dataclass ``__init__``
    (one guarded ``object.__setattr__`` per field) was the single largest
    allocation cost of the send path — tuple construction is one C call,
    ~4x cheaper, while staying immutable with named-field access.

    Attributes
    ----------
    msg_id:
        Unique, monotonically increasing id assigned by the network.
    sender, recipient:
        Processor ids of the two endpoints.
    payload:
        The message content, delivered verbatim.
    send_time:
        Virtual time the message was sent.
    deliver_time:
        Virtual time the message will be (or was) delivered.
    payload_digest:
        Content digest of the payload under the network's crypto backend, or
        ``None`` when the network has no backend attached.  Broadcast and
        multicast canonicalise the payload *once per send*, so all envelopes
        of one send share this value (see :meth:`Network.broadcast`).
    """

    msg_id: int
    sender: int
    recipient: int
    payload: Any
    send_time: float
    deliver_time: float
    payload_digest: Optional[str] = None

    @property
    def is_self_message(self) -> bool:
        """Whether the message was sent by a processor to itself."""
        return self.sender == self.recipient


class DelayModel(ABC):
    """Strategy choosing the delay of each message, i.e. the network adversary."""

    @abstractmethod
    def propose_delay(self, envelope_info: "PendingSend", sim: Simulator) -> float:
        """Return the proposed delay for the message described by ``envelope_info``.

        Parameters
        ----------
        envelope_info:
            The :class:`PendingSend` describing the message (sender,
            recipient, payload, send time, whether the send is after GST).
        sim:
            The simulator; use ``sim.rng`` for randomness so runs stay
            reproducible, and ``sim.now`` for the current time.

        Returns
        -------
        float
            The proposed delay in virtual-time units.  Advisory: the network
            floors it at :attr:`NetworkConfig.min_delay` and clamps delivery
            to the partial-synchrony deadline ``max(GST, send_time) + Delta``.
        """

    def propose_delays(self, sends: Sequence["PendingSend"], sim: Simulator) -> list[float]:
        """Propose delays for a whole batch of messages at once, in order.

        The vectorised form of :meth:`propose_delay`, called by the
        network's batched send paths (:meth:`Network.broadcast` /
        :meth:`Network.multicast`) to obtain every recipient's delay up
        front before grouping deliveries by identical deliver-time.

        The default delegates to :meth:`propose_delay` once per send, **in
        list order**, so any model is automatically batchable with an
        unchanged RNG stream — a batched run and a per-recipient run draw
        the same random numbers in the same order.  Models that can do
        better override it (:class:`FixedDelay` skips the calls entirely,
        :class:`UniformDelay` draws directly); overrides must preserve the
        one-draw-per-send RNG discipline or document that they diverge.

        Parameters
        ----------
        sends:
            The :class:`PendingSend` descriptions, one per recipient, in
            delivery-schedule order.
        sim:
            The simulator (``sim.rng`` for randomness, ``sim.now`` for time).

        Returns
        -------
        list[float]
            One proposed delay per entry of ``sends``, same order.  Advisory
            like :meth:`propose_delay`: the network floors and clamps each.
        """
        propose = self.propose_delay
        return [propose(send, sim) for send in sends]

    def propose_delays_bulk(
        self, count: int, now: float, after_gst: bool, sim: Simulator
    ) -> Optional[list[float]]:
        """Delays for ``count`` recipients of one send, **without** per-send
        descriptions.

        The fastest batched form: models whose decision depends only on the
        clock and the GST flag — not on sender, recipient or payload —
        return ``count`` delays directly, and the network never builds the
        O(recipients) :class:`PendingSend` list at all.  Returning ``None``
        (the default) means the model needs per-send information; the
        network then falls back to building the descriptions and calling
        :meth:`propose_delays`.

        Overrides must draw exactly the random numbers :meth:`propose_delays`
        would — one draw per recipient, in recipient order — so bulk and
        per-recipient runs stay byte-identical (the equivalence property
        tests exercise this).
        """
        return None

    def describe(self) -> str:
        """Human-readable description used in experiment reports."""
        return type(self).__name__

    def constant_delay(self) -> Optional[float]:
        """The delay this model proposes for *every* message, if one exists.

        Models that delay every message identically (the synchronous case)
        return it here; the network then skips building a
        :class:`PendingSend` and calling :meth:`propose_delay` per message —
        a measurable saving on large-``n`` broadcasts.  Default ``None``
        (no constant; the per-message path is used).
        """
        return None


class PendingSend(NamedTuple):
    """The information a :class:`DelayModel` may base its decision on.

    Tuple-backed for the same reason as :class:`Envelope`: one is built per
    recipient on every non-constant-delay send.

    Attributes
    ----------
    sender, recipient:
        Processor ids of the two endpoints.
    payload:
        The message content (delay models may inspect its type, e.g. to
        throttle one traffic class).
    send_time:
        Virtual time of the send.
    after_gst:
        Whether ``send_time >= GST``.
    """

    sender: int
    recipient: int
    payload: Any
    send_time: float
    after_gst: bool


class FixedDelay(DelayModel):
    """Every message takes exactly ``delay`` time units (the synchronous case).

    Parameters
    ----------
    delay:
        The delay applied to every message; must be non-negative.
    """

    def __init__(self, delay: float) -> None:
        if delay < 0:
            raise ConfigurationError(f"delay must be non-negative, got {delay}")
        self.delay = delay

    def propose_delay(self, envelope_info: PendingSend, sim: Simulator) -> float:
        return self.delay

    def propose_delays(self, sends: Sequence[PendingSend], sim: Simulator) -> list[float]:
        return [self.delay] * len(sends)

    def constant_delay(self) -> Optional[float]:
        return self.delay

    def describe(self) -> str:
        return f"FixedDelay({self.delay})"


class UniformDelay(DelayModel):
    """Delays drawn uniformly from ``[low, high]`` using the simulator's RNG.

    Parameters
    ----------
    low, high:
        Bounds of the uniform range; need ``0 <= low <= high``.
    """

    def __init__(self, low: float, high: float) -> None:
        if low < 0 or high < low:
            raise ConfigurationError(f"invalid uniform delay range [{low}, {high}]")
        self.low = low
        self.high = high

    def propose_delay(self, envelope_info: PendingSend, sim: Simulator) -> float:
        return sim.rng.uniform(self.low, self.high)

    def propose_delays(self, sends: Sequence[PendingSend], sim: Simulator) -> list[float]:
        # Same draws in the same order as the per-message path, without the
        # per-send method dispatch.
        uniform = sim.rng.uniform
        low, high = self.low, self.high
        return [uniform(low, high) for _ in sends]

    def propose_delays_bulk(
        self, count: int, now: float, after_gst: bool, sim: Simulator
    ) -> Optional[list[float]]:
        # The decision ignores everything but the RNG, so the network can
        # skip building PendingSend descriptions entirely.  One draw per
        # recipient in order — the same stream as propose_delays.
        uniform = sim.rng.uniform
        low, high = self.low, self.high
        return [uniform(low, high) for _ in range(count)]

    def describe(self) -> str:
        return f"UniformDelay({self.low}, {self.high})"


class PreGSTChaos(DelayModel):
    """Adversarial asynchrony before GST, a benign model after GST.

    Before GST, every message is delayed by a value drawn uniformly from
    ``[0, pre_gst_max_delay]`` (the network clamp still guarantees delivery by
    ``GST + Delta``).  After GST the wrapped ``post_model`` decides.

    Parameters
    ----------
    post_model:
        Delay model governing messages sent at or after GST.
    pre_gst_max_delay:
        Upper bound of the uniform pre-GST delay distribution.
    """

    def __init__(self, post_model: DelayModel, pre_gst_max_delay: float = 50.0) -> None:
        if pre_gst_max_delay < 0:
            raise ConfigurationError("pre_gst_max_delay must be non-negative")
        self.post_model = post_model
        self.pre_gst_max_delay = pre_gst_max_delay

    def propose_delay(self, envelope_info: PendingSend, sim: Simulator) -> float:
        if envelope_info.after_gst:
            return self.post_model.propose_delay(envelope_info, sim)
        return sim.rng.uniform(0.0, self.pre_gst_max_delay)

    def propose_delays_bulk(
        self, count: int, now: float, after_gst: bool, sim: Simulator
    ) -> Optional[list[float]]:
        # All sends of one batch share a send time, hence one GST side.
        # Pre-GST the chaos draws need no per-send information; post-GST
        # the wrapped model decides whether it can go bulk.
        if after_gst:
            return self.post_model.propose_delays_bulk(count, now, after_gst, sim)
        uniform = sim.rng.uniform
        bound = self.pre_gst_max_delay
        return [uniform(0.0, bound) for _ in range(count)]

    def describe(self) -> str:
        return f"PreGSTChaos(pre_max={self.pre_gst_max_delay}, post={self.post_model.describe()})"


class AdversarialDelay(DelayModel):
    """Delegates the delay decision to an arbitrary callable.

    The callable receives ``(pending_send, sim)`` and returns a delay.  Used
    by attack strategies that need full control of the schedule.

    ``describe()`` identifies the model in campaign cache keys, so it must
    distinguish different schedules.  The default (the callable's qualname)
    is only sound for module-level functions; campaigns reject lambdas and
    closures, whose qualnames collide across different captured parameters —
    give those a distinctive ``name``.

    Parameters
    ----------
    fn:
        Callable ``(pending_send, sim) -> delay`` deciding each message.
    name:
        Stable identifier used by ``describe()``; required for lambdas and
        closures (see above).
    """

    def __init__(self, fn: Callable[[PendingSend, Simulator], float], name: str = "") -> None:
        self.fn = fn
        self.name = name

    def propose_delay(self, envelope_info: PendingSend, sim: Simulator) -> float:
        return self.fn(envelope_info, sim)

    def describe(self) -> str:
        if self.name:
            return f"AdversarialDelay({self.name})"
        # Default to the callable's identity so two different module-level
        # schedules never share a description (and hence a cache key).
        fn_id = getattr(self.fn, "__qualname__", None) or repr(self.fn)
        return f"AdversarialDelay({fn_id})"


class TargetedDelay(DelayModel):
    """Delay messages touching a set of target processors; others use a base model.

    This captures attacks where the adversary slows down traffic to or from
    specific honest processors (e.g. to maximise the honest clock gap)
    without violating the post-GST bound.

    Parameters
    ----------
    base:
        Delay model for traffic not touching a target.
    targets:
        Processor ids under attack.
    target_delay:
        Proposed delay for targeted traffic (clamped by the network).
    direction:
        ``"to"`` (inbound), ``"from"`` (outbound) or ``"both"`` (default).
    """

    def __init__(
        self,
        base: DelayModel,
        targets: Iterable[int],
        target_delay: float,
        direction: str = "both",
    ) -> None:
        if direction not in ("to", "from", "both"):
            raise ConfigurationError(f"direction must be 'to', 'from' or 'both', got {direction!r}")
        self.base = base
        self.targets = frozenset(targets)
        self.target_delay = target_delay
        self.direction = direction

    def propose_delay(self, envelope_info: PendingSend, sim: Simulator) -> float:
        hit = False
        if self.direction in ("to", "both") and envelope_info.recipient in self.targets:
            hit = True
        if self.direction in ("from", "both") and envelope_info.sender in self.targets:
            hit = True
        if hit:
            return self.target_delay
        return self.base.propose_delay(envelope_info, sim)

    def describe(self) -> str:
        return (
            f"TargetedDelay(targets={sorted(self.targets)}, delay={self.target_delay}, "
            f"direction={self.direction}, base={self.base.describe()})"
        )


class Network:
    """Delivers messages between registered processes under partial synchrony.

    The network exposes two observation hooks used by the metrics layer:

    * ``send_listeners`` — called with each :class:`Envelope` when it is sent;
    * ``deliver_listeners`` — called with each :class:`Envelope` when it is
      delivered to its recipient.

    Parameters
    ----------
    sim:
        The simulator that schedules deliveries.
    config:
        Timing parameters of the partial-synchrony model.
    delay_model:
        The network adversary; ``None`` means
        ``FixedDelay(config.actual_delay)``.
    crypto_backend:
        Optional :class:`~repro.crypto.backend.CryptoBackend`.  When set,
        every :class:`Envelope` carries a ``payload_digest`` giving messages
        a content identity — the metrics collector aggregates it into
        ``distinct_payloads_sent`` / ``broadcast_amplification``.  The
        digest is computed **once per send call** — :meth:`broadcast` and
        :meth:`multicast` hoist it out of their per-recipient loops, so a
        payload is canonicalised once however many recipients it goes to.
    batch_deliveries:
        Whether :meth:`broadcast` / :meth:`multicast` group recipients by
        identical deliver-time and schedule **one** fire-and-forget event
        per distinct timestamp (the default).  ``False`` selects the
        per-recipient reference path — one scheduled event per envelope —
        kept for the equivalence property tests; both paths produce the
        same envelopes, delivery times and delivery order (see
        :meth:`DelayModel.propose_delays` for the RNG discipline that
        makes this hold for randomised models).
    """

    def __init__(
        self,
        sim: Simulator,
        config: NetworkConfig,
        delay_model: Optional[DelayModel] = None,
        crypto_backend: Optional["CryptoBackend"] = None,
        batch_deliveries: bool = True,
    ) -> None:
        self.sim = sim
        self.config = config
        self.batch_deliveries = batch_deliveries
        self.delay_model = delay_model or FixedDelay(config.actual_delay)
        self.crypto_backend = crypto_backend
        self._processes: dict[int, Any] = {}
        self._sorted_ids: tuple[int, ...] = ()
        self._msg_ids = itertools.count()
        self.send_listeners: list[Callable[[Envelope], None]] = []
        self.deliver_listeners: list[Callable[[Envelope], None]] = []
        self.messages_sent = 0
        self.messages_delivered = 0

    @property
    def delay_model(self) -> DelayModel:
        """The network adversary deciding each message's delay."""
        return self._delay_model

    @delay_model.setter
    def delay_model(self, model: DelayModel) -> None:
        # Fast path: a model with one constant delay for every message lets
        # _delivery_time skip the per-message PendingSend + propose_delay
        # call.  The floored value is cached here (and kept consistent if a
        # test swaps the model mid-run).
        self._delay_model = model
        constant = model.constant_delay()
        self._constant_floored_delay = (
            None if constant is None else max(self.config.min_delay, constant)
        )

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(self, process: Any) -> None:
        """Register a process as a message endpoint.

        Parameters
        ----------
        process:
            Anything with a ``pid`` attribute and a
            ``deliver(payload, sender)`` method.  Ids must be unique;
            processes never unregister.

        Raises
        ------
        SimulationError
            If a process with the same ``pid`` is already registered.
        """
        pid = process.pid
        if pid in self._processes:
            raise SimulationError(f"process id {pid} registered twice")
        self._processes[pid] = process
        # The sorted id list is read on every broadcast; re-sorting there was
        # a measurable hot-path cost, so it is cached and only invalidated
        # here (processes never unregister).
        self._sorted_ids = tuple(sorted(self._processes))

    @property
    def process_ids(self) -> list[int]:
        """Sorted ids of all registered processes."""
        return list(self._sorted_ids)

    def process(self, pid: int) -> Any:
        """Return the registered process with id ``pid``."""
        return self._processes[pid]

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(self, sender: int, recipient: int, payload: Any) -> Envelope:
        """Send ``payload`` from ``sender`` to ``recipient``.

        Returns
        -------
        Envelope
            The in-flight message; its ``deliver_time`` records when it will
            arrive.

        Raises
        ------
        SimulationError
            If ``recipient`` is not a registered process id.
        """
        if recipient not in self._processes:
            raise SimulationError(f"unknown recipient {recipient}")
        return self._send_one(
            sender,
            recipient,
            payload,
            self.sim.now,
            self.send_listeners,
            self._payload_digest(payload),
        )

    def broadcast(
        self, sender: int, payload: Any, include_self: bool = True
    ) -> list[Envelope]:
        """Send ``payload`` from ``sender`` to every registered process.

        Parameters
        ----------
        sender:
            Sending processor id.
        payload:
            Message content, shared (not copied) across all envelopes.
        include_self:
            Whether to include the sender itself (the paper's convention;
            the self-copy is delivered immediately).

        Returns
        -------
        list[Envelope]
            One envelope per recipient, in ascending processor-id order.
        """
        now = self.sim.now
        listeners = self.send_listeners
        # Hoisted out of the loop: the payload is shared by every envelope,
        # so it is canonicalised/digested once per broadcast, not once per
        # recipient (regression-tested with a call-counting backend).
        payload_digest = self._payload_digest(payload)
        if include_self:
            pids: Sequence[int] = self._sorted_ids
        else:
            pids = [pid for pid in self._sorted_ids if pid != sender]
        if self.batch_deliveries:
            return self._send_grouped(sender, pids, payload, now, payload_digest)
        envelopes = []
        for pid in pids:
            envelopes.append(
                self._send_one(sender, pid, payload, now, listeners, payload_digest)
            )
        return envelopes

    def _send_grouped(
        self,
        sender: int,
        pids: Sequence[int],
        payload: Any,
        now: float,
        payload_digest: Optional[str],
    ) -> list[Envelope]:
        """Shared batched send path: one delivery event per distinct timestamp.

        All recipient delays are proposed up front (a constant-delay model
        skips the :class:`PendingSend` construction and the
        :meth:`DelayModel.propose_delays` call entirely), deliveries are
        grouped by identical deliver-time, and each group is scheduled as a
        single handle-free event instead of one event per recipient — heap
        entries, handle allocations and dispatches all drop from
        O(recipients) to O(distinct timestamps).  Within a group, envelopes
        are delivered in ``pids`` order, exactly the order the per-recipient
        events would have fired in (equal time, ascending insertion seq), so
        runs are unchanged — including a self-copy, which joins the ``now``
        group at its ``pids`` position and so keeps both its immediate
        delivery and its place relative to zero-delay peers.  Note
        ``events_processed`` counts each group as one event.
        """
        sim = self.sim
        listeners = self.send_listeners
        config = self.config
        deadline = max(config.gst, now) + config.delta
        constant = self._constant_floored_delay
        delay_iter = None
        constant_time = now
        min_delay = 0.0
        if constant is not None:
            constant_time = now + constant
            if constant_time > deadline:
                constant_time = deadline
        else:
            after_gst = now >= config.gst
            count = sum(1 for pid in pids if pid != sender)
            # Fastest lane first: models that decide from (now, after_gst)
            # alone hand back the whole delay vector with no per-send
            # descriptions built at all.
            delays = self._delay_model.propose_delays_bulk(count, now, after_gst, sim)
            if delays is None:
                # Positional NamedTuple construction: this list is built per
                # broadcast under every send-inspecting delay model.
                pending = [
                    PendingSend(sender, pid, payload, now, after_gst)
                    for pid in pids
                    if pid != sender
                ]
                delays = self._delay_model.propose_delays(pending, sim)
            if len(delays) != count:
                raise SimulationError(
                    f"{self._delay_model.describe()}.propose_delays(_bulk) returned "
                    f"{len(delays)} delays for {count} sends"
                )
            delay_iter = iter(delays)
            min_delay = config.min_delay
        next_id = self._msg_ids
        envelopes: list[Envelope] = []
        if delay_iter is None:
            # Constant-delay fast lane: at most two delivery groups can
            # exist — the self-copy at ``now`` and everyone else at
            # ``constant_time`` — so group membership is a comparison
            # instead of a dict lookup per envelope.  Zero-delay models
            # collapse both into the ``now`` group, preserving ``pids``
            # order exactly as the general grouping would.
            now_group: list[Envelope] = []
            late_group: list[Envelope] = []
            for pid in pids:
                deliver_time = now if pid == sender else constant_time
                envelope = Envelope(
                    next(next_id), sender, pid, payload, now, deliver_time, payload_digest
                )
                self.messages_sent += 1
                for listener in listeners:
                    listener(envelope)
                envelopes.append(envelope)
                (now_group if deliver_time == now else late_group).append(envelope)
            deliver = self._deliver
            for deliver_time, batch in ((now, now_group), (constant_time, late_group)):
                if not batch:
                    continue
                if len(batch) == 1:
                    sim.schedule_fired_at(deliver_time, deliver, batch[0])
                else:
                    sim.schedule_fired_at(deliver_time, self._deliver_batch, batch)
            return envelopes
        groups: dict[float, list[Envelope]] = {}
        for pid in pids:
            if pid == sender:
                # Self-messages are received immediately (paper, Section 4).
                deliver_time = now
            elif delay_iter is None:
                deliver_time = constant_time
            else:
                delay = next(delay_iter)
                if delay < min_delay:
                    delay = min_delay
                deliver_time = now + delay
                if deliver_time > deadline:
                    deliver_time = deadline
            envelope = Envelope(
                next(next_id), sender, pid, payload, now, deliver_time, payload_digest
            )
            self.messages_sent += 1
            for listener in listeners:
                listener(envelope)
            envelopes.append(envelope)
            group = groups.get(deliver_time)
            if group is None:
                groups[deliver_time] = [envelope]
            else:
                group.append(envelope)
        deliver = self._deliver
        for deliver_time, batch in groups.items():
            if len(batch) == 1:
                sim.schedule_fired_at(deliver_time, deliver, batch[0])
            else:
                sim.schedule_fired_at(deliver_time, self._deliver_batch, batch)
        return envelopes

    def _deliver_batch(self, envelopes: Sequence[Envelope]) -> None:
        for envelope in envelopes:
            self._deliver(envelope)

    def multicast(self, sender: int, recipients: Sequence[int], payload: Any) -> list[Envelope]:
        """Send ``payload`` from ``sender`` to each processor in ``recipients``.

        Returns
        -------
        list[Envelope]
            One envelope per recipient, in ``recipients`` order.

        Raises
        ------
        SimulationError
            If any recipient is not a registered process id.
        """
        now = self.sim.now
        listeners = self.send_listeners
        processes = self._processes
        for pid in recipients:
            if pid not in processes:
                raise SimulationError(f"unknown recipient {pid}")
        # Hoisted digest, as in broadcast(): one canonicalisation per send.
        payload_digest = self._payload_digest(payload)
        if self.batch_deliveries:
            return self._send_grouped(sender, recipients, payload, now, payload_digest)
        envelopes = []
        for pid in recipients:
            envelopes.append(
                self._send_one(sender, pid, payload, now, listeners, payload_digest)
            )
        return envelopes

    def _payload_digest(self, payload: Any) -> Optional[str]:
        """Digest of ``payload`` under the attached backend (``None`` without one)."""
        if self.crypto_backend is None:
            return None
        return self.crypto_backend.digest(payload)

    def _send_one(
        self,
        sender: int,
        recipient: int,
        payload: Any,
        now: float,
        listeners: Sequence[Callable[[Envelope], None]],
        payload_digest: Optional[str] = None,
    ) -> Envelope:
        """Construct, announce and schedule one envelope; shared send path.

        ``payload_digest`` is computed by the caller (once per send call,
        even for an n-recipient broadcast) and attached verbatim.
        """
        deliver_time = self._delivery_time(sender, recipient, payload, now)
        envelope = Envelope(
            next(self._msg_ids), sender, recipient, payload, now, deliver_time, payload_digest
        )
        self.messages_sent += 1
        for listener in listeners:
            listener(envelope)
        # Deliveries are fire-and-forget: the handle-free lane skips the
        # EventHandle allocation and cancellation bookkeeping entirely.
        self.sim.schedule_fired_at(deliver_time, self._deliver, envelope)
        return envelope

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _delivery_time(self, sender: int, recipient: int, payload: Any, now: float) -> float:
        if sender == recipient:
            # Self-messages are received immediately (paper, Section 4).
            return now
        config = self.config
        raw_delay = self._constant_floored_delay
        if raw_delay is None:
            pending = PendingSend(sender, recipient, payload, now, now >= config.gst)
            raw_delay = max(config.min_delay, self.delay_model.propose_delay(pending, self.sim))
        deadline = max(config.gst, now) + config.delta
        return min(now + raw_delay, deadline)

    def _deliver(self, envelope: Envelope) -> None:
        self.messages_delivered += 1
        for listener in self.deliver_listeners:
            listener(envelope)
        process = self._processes.get(envelope.recipient)
        if process is None:  # pragma: no cover - defensive; processes never unregister
            return
        process.deliver(envelope.payload, envelope.sender)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Network(n={len(self._processes)}, sent={self.messages_sent}, "
            f"delivered={self.messages_delivered}, model={self.delay_model.describe()})"
        )
