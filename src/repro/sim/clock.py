"""Local clocks with the pause / bump-forward semantics of the paper.

Every processor ``p`` in Lumiere (and in LP22 / Fever) maintains a local
clock value ``lc(p)`` that

* advances in real time while the processor is not paused,
* can be *paused* (e.g. while waiting for an Epoch Certificate),
* can be *bumped forward* instantaneously to a larger value (e.g. on seeing
  a QC, VC, EC or TC), and never moves backwards.

Protocols need to react "when ``lc(p)`` reaches the clock time ``c_v`` of a
view ``v``".  :class:`LocalClock` therefore supports scheduling callbacks at
*local* times.  A local-time target may be reached either by real-time
advance (in which case the underlying runtime timer fires) or by a bump
(in which case the callback runs immediately at the bump instant).  Pausing
suspends all pending local timers; unpausing reschedules them.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.errors import SimulationError


class LocalTimer:
    """A callback registered to fire when a :class:`LocalClock` reaches a target.

    Instances are created via :meth:`LocalClock.schedule_at_local`.  The
    callback fires exactly once unless the timer is cancelled first.
    """

    __slots__ = ("target", "callback", "cancelled", "fired", "_event", "label")

    def __init__(self, target: float, callback: Callable[[], None], label: str = "") -> None:
        self.target = target
        self.callback = callback
        self.cancelled = False
        self.fired = False
        # Backing runtime timer (an EventHandle under simulation, an
        # asyncio-backed handle when live); any TimerHandle works.
        self._event: Optional[Any] = None
        self.label = label

    def cancel(self) -> None:
        """Cancel the timer; the callback will not run."""
        self.cancelled = True
        if self._event is not None:
            self._event.cancel()
            self._event = None

    @property
    def pending(self) -> bool:
        """True while the timer has neither fired nor been cancelled."""
        return not self.fired and not self.cancelled

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "fired" if self.fired else ("cancelled" if self.cancelled else "pending")
        return f"LocalTimer(target={self.target:.3f}, {state}, label={self.label!r})"


class LocalClock:
    """A processor-local clock driven by its runtime's ("real") time.

    The clock value is ``anchor_value + (runtime.now - anchor_time)`` while
    running, and ``anchor_value`` while paused.  ``bump_to`` moves the value
    forward (never backwards) and re-anchors.

    The time source may be anything exposing ``now`` plus a cancellable
    timer method: a :class:`~repro.runtime.base.Runtime` (``set_timer``) or
    a bare :class:`Simulator` (``schedule``) — the two signatures agree.
    """

    def __init__(self, source: Any, initial: float = 0.0) -> None:
        self._source = source
        self._set_timer = getattr(source, "set_timer", None) or source.schedule
        self._anchor_value = initial
        self._anchor_time = source.now
        self._paused = False
        self._timers: list[LocalTimer] = []
        self.bump_count = 0
        self.pause_count = 0

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def read(self) -> float:
        """Current local-clock value."""
        if self._paused:
            return self._anchor_value
        return self._anchor_value + (self._source.now - self._anchor_time)

    @property
    def value(self) -> float:
        """Alias for :meth:`read`, convenient in expressions."""
        return self.read()

    @property
    def paused(self) -> bool:
        """Whether the clock is currently paused."""
        return self._paused

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def pause(self) -> None:
        """Freeze the clock at its current value.  Idempotent."""
        if self._paused:
            return
        self._anchor_value = self.read()
        self._anchor_time = self._source.now
        self._paused = True
        self.pause_count += 1
        self._resync_timers()

    def unpause(self) -> None:
        """Resume real-time advance from the current value.  Idempotent."""
        if not self._paused:
            return
        self._anchor_time = self._source.now
        self._paused = False
        self._resync_timers()

    def bump_to(self, value: float) -> bool:
        """Move the clock instantaneously forward to ``value``.

        Returns ``True`` if the clock actually moved (i.e. ``value`` was
        strictly greater than the current reading).  Bumping never moves the
        clock backwards; a smaller or equal value is a no-op.  Bumping does
        not unpause a paused clock (protocols unpause explicitly).
        """
        current = self.read()
        if value <= current:
            return False
        self._anchor_value = value
        self._anchor_time = self._source.now
        self.bump_count += 1
        self._fire_reached_timers()
        self._resync_timers()
        return True

    def set_to(self, value: float) -> None:
        """Force the clock to ``value`` regardless of direction.

        Only used by test fixtures and adversarial setups that model
        arbitrary clock drift before GST; honest protocol code uses
        :meth:`bump_to`.
        """
        self._anchor_value = value
        self._anchor_time = self._source.now
        self._fire_reached_timers()
        self._resync_timers()

    # ------------------------------------------------------------------
    # Local-time scheduling
    # ------------------------------------------------------------------
    def schedule_at_local(
        self, target: float, callback: Callable[[], None], label: str = ""
    ) -> LocalTimer:
        """Run ``callback`` when the local clock first reaches ``target``.

        If the clock is already at or past ``target`` the callback is
        scheduled to run immediately (at the current simulation instant, but
        after the caller returns — callbacks never run re-entrantly).
        """
        if callback is None:
            raise SimulationError("schedule_at_local requires a callback")
        timer = LocalTimer(target, callback, label=label)
        self._timers.append(timer)
        self._arm(timer)
        return timer

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _arm(self, timer: LocalTimer) -> None:
        """(Re)schedule the runtime timer backing ``timer``, if appropriate."""
        if not timer.pending:
            return
        if timer._event is not None:
            timer._event.cancel()
            timer._event = None
        current = self.read()
        if current >= timer.target:
            timer._event = self._set_timer(0.0, self._fire, timer, label=timer.label)
        elif not self._paused:
            delay = timer.target - current
            timer._event = self._set_timer(delay, self._fire, timer, label=timer.label)
        # else: paused and target not reached — leave unarmed until unpause/bump.

    def _fire(self, timer: LocalTimer) -> None:
        if not timer.pending:
            return
        if self.read() + 1e-12 < timer.target:
            # The clock was paused or re-anchored after this event was
            # scheduled; re-arm instead of firing early.
            self._arm(timer)
            return
        timer.fired = True
        timer._event = None
        timer.callback()

    def _fire_reached_timers(self) -> None:
        """After a bump, immediately schedule any timer whose target was passed."""
        for timer in self._timers:
            if timer.pending and self.read() >= timer.target:
                self._arm(timer)

    def _resync_timers(self) -> None:
        """Re-arm all pending timers after a pause/unpause/bump."""
        self._timers = [t for t in self._timers if t.pending]
        for timer in self._timers:
            self._arm(timer)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "paused" if self._paused else "running"
        return f"LocalClock(value={self.read():.3f}, {state}, timers={len(self._timers)})"
