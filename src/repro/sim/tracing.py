"""Structured execution traces.

Traces are optional: protocol code calls ``self.trace(kind, **details)`` and
pays nothing when no recorder is attached.  When attached, the recorder keeps
an append-only list of :class:`TraceEvent` entries that tests, examples and
the Figure-1 harness inspect to reconstruct timelines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional


@dataclass(frozen=True)
class TraceEvent:
    """One recorded protocol event."""

    time: float
    pid: int
    kind: str
    details: dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        detail_str = ", ".join(f"{k}={v}" for k, v in sorted(self.details.items()))
        return f"[t={self.time:9.3f}] p{self.pid:<3} {self.kind:<24} {detail_str}"


class TraceRecorder:
    """Collects :class:`TraceEvent` entries during a simulation run."""

    def __init__(self, enabled: bool = True, max_events: Optional[int] = None) -> None:
        self.enabled = enabled
        self.max_events = max_events
        self.events: list[TraceEvent] = []

    def record(self, time: float, pid: int, kind: str, details: dict[str, Any]) -> None:
        """Append an event (no-op if disabled or over the size limit)."""
        if not self.enabled:
            return
        if self.max_events is not None and len(self.events) >= self.max_events:
            return
        self.events.append(TraceEvent(time=time, pid=pid, kind=kind, details=dict(details)))

    # ------------------------------------------------------------------
    # Querying
    # ------------------------------------------------------------------
    def of_kind(self, kind: str) -> list[TraceEvent]:
        """All events with the given kind, in time order."""
        return [event for event in self.events if event.kind == kind]

    def for_pid(self, pid: int) -> list[TraceEvent]:
        """All events recorded by processor ``pid``, in time order."""
        return [event for event in self.events if event.pid == pid]

    def where(self, predicate: Callable[[TraceEvent], bool]) -> list[TraceEvent]:
        """All events matching an arbitrary predicate."""
        return [event for event in self.events if predicate(event)]

    def first(self, kind: str) -> Optional[TraceEvent]:
        """Earliest event of the given kind, or ``None``."""
        for event in self.events:
            if event.kind == kind:
                return event
        return None

    def last(self, kind: str) -> Optional[TraceEvent]:
        """Latest event of the given kind, or ``None``."""
        result = None
        for event in self.events:
            if event.kind == kind:
                result = event
        return result

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def timeline(self, kinds: Optional[set[str]] = None) -> str:
        """Render the trace (optionally filtered by kind) as a printable timeline."""
        lines = []
        for event in self.events:
            if kinds is not None and event.kind not in kinds:
                continue
            lines.append(str(event))
        return "\n".join(lines)
