"""Discrete-event simulation of the partial synchrony model.

The simulator provides virtual time, an event queue, a network whose message
delays are chosen by a pluggable :class:`~repro.sim.network.DelayModel`
subject to the partial synchrony constraint (every message sent at time ``t``
arrives by ``max(GST, t) + Delta``), per-processor local clocks with the
pause/bump semantics the paper's protocols rely on, and a ``Process`` base
class that protocol replicas derive from.
"""

from repro.sim.events import EventHandle, Simulator
from repro.sim.clock import LocalClock, LocalTimer
from repro.sim.network import (
    AdversarialDelay,
    DelayModel,
    Envelope,
    FixedDelay,
    Network,
    NetworkConfig,
    PreGSTChaos,
    TargetedDelay,
    UniformDelay,
)
from repro.sim.process import Process, SimContext
from repro.sim.tracing import TraceEvent, TraceRecorder

__all__ = [
    "AdversarialDelay",
    "DelayModel",
    "Envelope",
    "EventHandle",
    "FixedDelay",
    "LocalClock",
    "LocalTimer",
    "Network",
    "NetworkConfig",
    "PreGSTChaos",
    "Process",
    "SimContext",
    "Simulator",
    "TargetedDelay",
    "TraceEvent",
    "TraceRecorder",
    "UniformDelay",
]
