"""Process abstraction: the unit a runtime schedules and the transport addresses.

A :class:`Process` owns a :class:`~repro.sim.clock.LocalClock` and receives
messages from its :class:`~repro.runtime.base.Runtime`.  Protocol replicas
(see :mod:`repro.consensus.replica`) derive from it, as do purpose-built
Byzantine processes in :mod:`repro.adversary`.

A process is constructed over a *context* exposing ``runtime`` and
``trace``: either a :class:`SimContext` (simulator + network, the
discrete-event world) or a :class:`~repro.runtime.base.RuntimeContext`
(any other runtime, e.g. asyncio).  All messaging, timing and scheduling
flows through :attr:`Process.runtime`; the :attr:`sim` / :attr:`network`
accessors exist only for simulation-side tooling and raise when the
process runs on a non-simulated runtime.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.sim.clock import LocalClock
from repro.sim.events import Simulator
from repro.sim.network import Network
from repro.sim.tracing import TraceRecorder


@dataclass
class SimContext:
    """Shared handles of a simulated run: simulator, network and (optional) trace.

    Exposes :attr:`runtime` — a lazily built, cached
    :class:`~repro.runtime.simulation.SimRuntime` over the same simulator
    and network — which is what processes actually talk to.
    """

    sim: Simulator
    network: Network
    trace: Optional[TraceRecorder] = None

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self.sim.now

    @property
    def runtime(self):
        """The (cached) :class:`~repro.runtime.simulation.SimRuntime` adapter."""
        runtime = self.__dict__.get("_runtime")
        if runtime is None:
            # Local import: repro.runtime is a sibling package layered above
            # repro.sim; importing it lazily keeps sim importable alone.
            from repro.runtime.simulation import SimRuntime

            runtime = SimRuntime(self.sim, self.network, trace=self.trace)
            self.__dict__["_runtime"] = runtime
        return runtime


class Process:
    """Base class for all protocol processors, runtime-agnostic.

    Subclasses implement :meth:`on_message` (and usually :meth:`start`).
    A process that has crashed stops receiving messages and sending anything.
    """

    def __init__(self, pid: int, ctx: Any) -> None:
        self.pid = pid
        self.ctx = ctx
        self.runtime = ctx.runtime
        self.clock = LocalClock(self.runtime)
        self.crashed = False
        self.byzantine = False
        self.runtime.register(self)

    # ------------------------------------------------------------------
    # Convenience accessors
    # ------------------------------------------------------------------
    @property
    def sim(self) -> Simulator:
        """The simulator this process runs in (simulated contexts only)."""
        return self.ctx.sim

    @property
    def network(self) -> Network:
        """The network this process is attached to (simulated contexts only)."""
        return self.ctx.network

    @property
    def now(self) -> float:
        """Current runtime time (virtual under simulation, wall-clock when live)."""
        return self.runtime.now

    @property
    def local_time(self) -> float:
        """Current local-clock value ``lc(p)``."""
        return self.clock.read()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Called once when the run begins.  Default: no-op."""

    def crash(self) -> None:
        """Stop the process: it will neither send nor react to messages."""
        self.crashed = True
        self.trace("crash")

    def recover(self) -> None:
        """Restart a crashed process: it resumes sending and receiving.

        Recovery is deliberately minimal: the local clock kept running and any
        timers armed before the crash were never cancelled, so the process
        rejoins exactly where a real restarted replica with persisted state
        would — alive, but having missed every message sent while it was down
        (delivery to crashed processes is dropped, never queued).
        """
        if not self.crashed:
            return
        self.crashed = False
        self.trace("recover")

    # ------------------------------------------------------------------
    # Messaging
    # ------------------------------------------------------------------
    def send(self, recipient: int, payload: Any) -> None:
        """Send ``payload`` to ``recipient`` unless crashed."""
        if self.crashed:
            return
        self.runtime.send(self.pid, recipient, payload)

    def broadcast(self, payload: Any) -> None:
        """Send ``payload`` to every processor, including self, unless crashed."""
        if self.crashed:
            return
        self.runtime.broadcast(self.pid, payload)

    def deliver(self, payload: Any, sender: int) -> None:
        """Entry point used by the runtime; dispatches to :meth:`on_message`."""
        if self.crashed:
            return
        self.on_message(payload, sender)

    def on_message(self, payload: Any, sender: int) -> None:
        """Handle an incoming message.  Subclasses override."""

    # ------------------------------------------------------------------
    # Tracing
    # ------------------------------------------------------------------
    def trace(self, kind: str, **details: Any) -> None:
        """Record a trace event if a recorder is attached."""
        if self.ctx.trace is not None:
            self.ctx.trace.record(self.now, self.pid, kind, details)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flags = []
        if self.byzantine:
            flags.append("byzantine")
        if self.crashed:
            flags.append("crashed")
        suffix = f" [{', '.join(flags)}]" if flags else ""
        return f"{type(self).__name__}(pid={self.pid}{suffix})"
