"""Process abstraction: the unit the simulator schedules and the network addresses.

A :class:`Process` owns a :class:`~repro.sim.clock.LocalClock` and receives
messages from the :class:`~repro.sim.network.Network`.  Protocol replicas
(see :mod:`repro.consensus.replica`) derive from it, as do purpose-built
Byzantine processes in :mod:`repro.adversary`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.sim.clock import LocalClock
from repro.sim.events import Simulator
from repro.sim.network import Network
from repro.sim.tracing import TraceRecorder


@dataclass
class SimContext:
    """Shared handles a process needs: simulator, network and (optional) trace."""

    sim: Simulator
    network: Network
    trace: Optional[TraceRecorder] = None

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self.sim.now


class Process:
    """Base class for all simulated processors.

    Subclasses implement :meth:`on_message` (and usually :meth:`start`).
    A process that has crashed stops receiving messages and sending anything.
    """

    def __init__(self, pid: int, ctx: SimContext) -> None:
        self.pid = pid
        self.ctx = ctx
        self.clock = LocalClock(ctx.sim)
        self.crashed = False
        self.byzantine = False
        ctx.network.register(self)

    # ------------------------------------------------------------------
    # Convenience accessors
    # ------------------------------------------------------------------
    @property
    def sim(self) -> Simulator:
        """The simulator this process runs in."""
        return self.ctx.sim

    @property
    def network(self) -> Network:
        """The network this process is attached to."""
        return self.ctx.network

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self.ctx.sim.now

    @property
    def local_time(self) -> float:
        """Current local-clock value ``lc(p)``."""
        return self.clock.read()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Called once when the simulation begins.  Default: no-op."""

    def crash(self) -> None:
        """Stop the process: it will neither send nor react to messages."""
        self.crashed = True
        self.trace("crash")

    def recover(self) -> None:
        """Restart a crashed process: it resumes sending and receiving.

        Recovery is deliberately minimal: the local clock kept running and any
        timers armed before the crash were never cancelled, so the process
        rejoins exactly where a real restarted replica with persisted state
        would — alive, but having missed every message sent while it was down
        (the network drops deliveries to crashed processes, it never queues
        them).
        """
        if not self.crashed:
            return
        self.crashed = False
        self.trace("recover")

    # ------------------------------------------------------------------
    # Messaging
    # ------------------------------------------------------------------
    def send(self, recipient: int, payload: Any) -> None:
        """Send ``payload`` to ``recipient`` unless crashed."""
        if self.crashed:
            return
        self.network.send(self.pid, recipient, payload)

    def broadcast(self, payload: Any) -> None:
        """Send ``payload`` to every processor, including self, unless crashed."""
        if self.crashed:
            return
        self.network.broadcast(self.pid, payload)

    def deliver(self, payload: Any, sender: int) -> None:
        """Entry point used by the network; dispatches to :meth:`on_message`."""
        if self.crashed:
            return
        self.on_message(payload, sender)

    def on_message(self, payload: Any, sender: int) -> None:
        """Handle an incoming message.  Subclasses override."""

    # ------------------------------------------------------------------
    # Tracing
    # ------------------------------------------------------------------
    def trace(self, kind: str, **details: Any) -> None:
        """Record a trace event if a recorder is attached."""
        if self.ctx.trace is not None:
            self.ctx.trace.record(self.now, self.pid, kind, details)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flags = []
        if self.byzantine:
            flags.append("byzantine")
        if self.crashed:
            flags.append("crashed")
        suffix = f" [{', '.join(flags)}]" if flags else ""
        return f"{type(self).__name__}(pid={self.pid}{suffix})"
