"""Client commands and their compact batch encoding.

A command is the unit of client work the replicated state machine applies:
``(client, seq, op, key, value)``.  ``(client, seq)`` is the exactly-once
identity — clients number their commands from 0 and never reuse a number,
so any two occurrences of the same pair (a batch re-forwarded to a new
leader after a failed view, a retry racing an in-flight proposal) are the
*same* request and must mutate the store once.

Batches cross the wire many times (proposal broadcast, QC announce,
forward, re-forward), so commands are encoded **once**, at batch-build
time, into a single varint-packed blob; every later hop memcpys the blob
(the binary codec's bytes tag), and decoding happens exactly once per
replica — at apply time.  The format is LEB128 uvarints for ``client``,
``seq`` and string lengths, one op byte, and UTF-8 key/value bytes:

``uvarint count || (uvarint client, uvarint seq, op byte,
uvarint len || key, uvarint len || value)*``

The blob is deliberately independent of the wire codec: the same bytes
ride inside JSON frames (base64), binary frames (bytes tag) and block
digests (``canonical_bytes`` passes ``bytes`` through untouched).
"""

from __future__ import annotations

from typing import Iterable, NamedTuple

#: Operation codes.  The vocabulary is intentionally tiny: a replicated KV
#: only needs writes to be interesting (reads never enter the ledger).
OP_PUT = 0
OP_DELETE = 1

_OPS = (OP_PUT, OP_DELETE)


class Command(NamedTuple):
    """One client request: a write against the replicated key-value store."""

    #: Globally unique client id (load generators mint ``pid + n * k``).
    client: int
    #: Per-client sequence number, from 0, never reused.
    seq: int
    #: :data:`OP_PUT` or :data:`OP_DELETE`.
    op: int
    #: Key to mutate.
    key: str
    #: Value to store (ignored by deletes).
    value: str


def _pack_uvarint(value: int, out: bytearray) -> None:
    while value > 0x7F:
        out.append((value & 0x7F) | 0x80)
        value >>= 7
    out.append(value)


def _unpack_uvarint(buf: bytes, pos: int) -> tuple[int, int]:
    result = 0
    shift = 0
    while True:
        byte = buf[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7


def encode_commands(commands: Iterable[Command]) -> bytes:
    """Encode a sequence of commands into one compact blob (done once)."""
    commands = list(commands)
    out = bytearray()
    _pack_uvarint(len(commands), out)
    for command in commands:
        _pack_uvarint(command.client, out)
        _pack_uvarint(command.seq, out)
        out.append(command.op)
        key = command.key.encode("utf-8")
        _pack_uvarint(len(key), out)
        out += key
        value = command.value.encode("utf-8")
        _pack_uvarint(len(value), out)
        out += value
    return bytes(out)


def decode_commands(blob: bytes) -> tuple[Command, ...]:
    """Decode a blob back into commands (done once per replica, at apply)."""
    count, pos = _unpack_uvarint(blob, 0)
    commands = []
    for _ in range(count):
        client, pos = _unpack_uvarint(blob, pos)
        seq, pos = _unpack_uvarint(blob, pos)
        op = blob[pos]
        pos += 1
        if op not in _OPS:
            raise ValueError(f"unknown command op {op}")
        length, pos = _unpack_uvarint(blob, pos)
        key = blob[pos : pos + length].decode("utf-8")
        pos += length
        length, pos = _unpack_uvarint(blob, pos)
        value = blob[pos : pos + length].decode("utf-8")
        pos += length
        commands.append(Command(client, seq, op, key, value))
    if pos != len(blob):
        raise ValueError(f"command blob has {len(blob) - pos} trailing bytes")
    return tuple(commands)
