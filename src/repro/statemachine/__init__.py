"""Deterministic replicated key-value state machine over the ledger.

The client-facing layer of the stack: commands (:mod:`.commands`), their
wire messages (:mod:`.messages`), and the store that applies committed
blocks exactly once (:mod:`.kvstore`).  The load generators and request
gateway that *drive* this state machine live in
:mod:`repro.runner.workload`; this package depends on nothing above the
consensus layer, so the consensus code can import it freely.
"""

from repro.statemachine.commands import (
    OP_DELETE,
    OP_PUT,
    Command,
    decode_commands,
    encode_commands,
)
from repro.statemachine.kvstore import (
    KVStore,
    ReplicatedKV,
    apply_chains_consistent,
)
from repro.statemachine.messages import ClientMessage, CommandBatch, CommandForward

__all__ = [
    "OP_DELETE",
    "OP_PUT",
    "Command",
    "decode_commands",
    "encode_commands",
    "KVStore",
    "ReplicatedKV",
    "apply_chains_consistent",
    "ClientMessage",
    "CommandBatch",
    "CommandForward",
]
