"""Client-path wire messages.

These ride the same transports and wire codecs as consensus traffic, but
the replica routes them to the client path (mempool ingest), never to the
consensus engine or pacemaker — see ``Replica.on_message``.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class ClientMessage:
    """Base class for client-path traffic (dispatch marker, like
    ``ConsensusMessage`` / ``PacemakerMessage``)."""


@dataclass(frozen=True, slots=True)
class CommandBatch:
    """A batch of client commands, encoded once into a compact blob.

    ``data`` is the :func:`repro.statemachine.commands.encode_commands`
    encoding of ``count`` commands.  The batch travels as an opaque byte
    string through forwards, proposals and QC announces — the leader never
    re-encodes it and replicas decode it exactly once, at apply time.
    ``canonical_bytes`` passes ``bytes`` through untouched, so batches
    inside a block payload digest without any special-casing.
    """

    count: int
    data: bytes


@dataclass(frozen=True, slots=True)
class CommandForward(ClientMessage):
    """A batch forwarded from a non-leader's request gateway to the
    replica it believes is the current leader."""

    batch: CommandBatch
