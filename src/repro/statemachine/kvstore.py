"""The deterministic replicated key-value store.

Consensus orders :class:`~repro.statemachine.messages.CommandBatch` blobs
into the ledger; this module turns that order into state.  Two layers:

* :class:`KVStore` — the state machine proper: a dict plus an
  exactly-once filter.  Commands carry a ``(client, seq)`` identity, and
  the same command can legitimately be committed twice (a gateway
  re-forwards outstanding commands to a new leader after a failed view,
  and the original proposal may still commit later).  The store keeps one
  arbitrary-precision bitmask per client — ``mask >> seq & 1`` — so the
  duplicate check is O(1) with no per-command allocation, and applies
  each identity at most once no matter how often it is committed.

* :class:`ReplicatedKV` — the ledger adapter: tracks how many ledger
  entries have been applied and catches up to the current length on each
  commit.  ``Ledger.commit`` silently dedupes re-committed block ids, so
  progress is tracked by *position*, never by counting commit callbacks.

Determinism is checkable two ways.  :meth:`KVStore.state_digest` hashes
the full state (for runs that stop at the same ledger length, e.g. sim vs
zero-jitter live).  :attr:`ReplicatedKV.apply_chain` is a running hash
chained per applied block, so two replicas stopped at *different* ledger
lengths — normal for wall-clock clusters — are still comparable over
their common prefix (:func:`apply_chains_consistent`).  Digests use
stdlib SHA-256, not the pluggable crypto backend: the counting backend's
digests are process-local and could not be compared across nodes.
"""

from __future__ import annotations

import hashlib
from typing import Callable, Iterable, Optional

from repro.statemachine.commands import OP_DELETE, OP_PUT, Command, decode_commands
from repro.statemachine.messages import CommandBatch


class KVStore:
    """Dict state machine with an exactly-once ``(client, seq)`` filter."""

    __slots__ = ("_data", "_applied_masks", "applied_total", "duplicates_skipped")

    def __init__(self) -> None:
        self._data: dict[str, str] = {}
        self._applied_masks: dict[int, int] = {}
        #: Commands applied (duplicates excluded).
        self.applied_total = 0
        #: Committed duplicates the exactly-once filter rejected.
        self.duplicates_skipped = 0

    def apply(self, command: Command) -> bool:
        """Apply one command; ``False`` if its identity was already applied."""
        mask = self._applied_masks.get(command.client, 0)
        bit = 1 << command.seq
        if mask & bit:
            self.duplicates_skipped += 1
            return False
        self._applied_masks[command.client] = mask | bit
        if command.op == OP_PUT:
            self._data[command.key] = command.value
        elif command.op == OP_DELETE:
            self._data.pop(command.key, None)
        self.applied_total += 1
        return True

    def get(self, key: str) -> Optional[str]:
        """Current value of ``key`` (``None`` if absent)."""
        return self._data.get(key)

    def __len__(self) -> int:
        return len(self._data)

    def applied(self, client: int, seq: int) -> bool:
        """Whether the identity ``(client, seq)`` has been applied."""
        return bool(self._applied_masks.get(client, 0) >> seq & 1)

    def applied_count(self, client: int) -> int:
        """How many commands of ``client`` have been applied."""
        return self._applied_masks.get(client, 0).bit_count()

    def state_digest(self) -> str:
        """SHA-256 over the sorted contents *and* the applied sets.

        Two replicas agree on this digest iff they hold the same key-value
        map and have applied exactly the same command identities.
        """
        hasher = hashlib.sha256()
        for key in sorted(self._data):
            hasher.update(key.encode("utf-8"))
            hasher.update(b"\x00")
            hasher.update(self._data[key].encode("utf-8"))
            hasher.update(b"\x01")
        for client in sorted(self._applied_masks):
            mask = self._applied_masks[client]
            hasher.update(b"\x02")
            hasher.update(client.to_bytes(8, "big"))
            hasher.update(mask.to_bytes((mask.bit_length() + 7) // 8 or 1, "big"))
        return hasher.hexdigest()


class ReplicatedKV:
    """Applies committed ledger blocks to a :class:`KVStore`, by position.

    ``on_apply(command, time)`` fires for every *first* application of an
    identity — the request gateway hooks it to complete outstanding client
    requests and record end-to-end latency.
    """

    __slots__ = ("store", "on_apply", "_applied_entries", "_chain", "_chain_history")

    def __init__(
        self, on_apply: Optional[Callable[[Command, float], None]] = None
    ) -> None:
        self.store = KVStore()
        self.on_apply = on_apply
        self._applied_entries = 0
        self._chain = hashlib.sha256(b"genesis").hexdigest()
        self._chain_history: list[str] = []

    @property
    def applied_entries(self) -> int:
        """Ledger entries applied so far (the position cursor)."""
        return self._applied_entries

    @property
    def apply_chain(self) -> tuple[str, ...]:
        """Running state hash after each applied ledger entry.

        Chained per block, so replicas stopped at different ledger lengths
        are comparable over the common prefix.
        """
        return tuple(self._chain_history)

    def catch_up(self, ledger, now: float) -> int:
        """Apply every ledger entry past the cursor; return commands applied."""
        applied = 0
        entries = ledger.entries
        while self._applied_entries < len(entries):
            block = entries[self._applied_entries].block
            self._applied_entries += 1
            hasher = hashlib.sha256(self._chain.encode("ascii"))
            for item in block.payload:
                if not isinstance(item, CommandBatch):
                    continue  # synthetic filler / equivocation markers
                for command in decode_commands(item.data):
                    if self.store.apply(command):
                        applied += 1
                        hasher.update(
                            b"%d:%d:%d" % (command.client, command.seq, command.op)
                        )
                        hasher.update(command.key.encode("utf-8"))
                        hasher.update(command.value.encode("utf-8"))
                        if self.on_apply is not None:
                            self.on_apply(command, now)
            self._chain = hasher.hexdigest()
            self._chain_history.append(self._chain)
        return applied

    def digest(self) -> str:
        """The store's :meth:`KVStore.state_digest`."""
        return self.store.state_digest()


def apply_chains_consistent(chains: Iterable[tuple[str, ...]]) -> bool:
    """Prefix-consistency over per-replica apply chains.

    The state-machine analogue of ``ledgers_consistent``: every pair of
    replicas must agree on the state hash after every block both applied.
    """
    sequences = [tuple(chain) for chain in chains]
    for i, chain_a in enumerate(sequences):
        for chain_b in sequences[i + 1 :]:
            shorter = min(len(chain_a), len(chain_b))
            if chain_a[:shorter] != chain_b[:shorter]:
                return False
    return True
