"""Simulated digital signatures and PKI.

A :class:`Signature` over a message digest can only be produced through the
:class:`SigningKey` of the signer, which the simulation hands exclusively to
the owning processor.  Byzantine processors therefore can sign arbitrary
*contents* in their own name but can never forge signatures of honest
processors — exactly the adversary the paper assumes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Iterable

from repro.errors import CryptoError, InvalidSignature
from repro.crypto.hashing import digest

# Monotonic counter giving each SigningKey an unforgeable secret token.
_SECRET_COUNTER = itertools.count(1)


@dataclass(frozen=True)
class Signature:
    """A signature by ``signer`` over ``message_digest``.

    The ``proof`` field binds the signature to the secret token of the
    signer's key; :meth:`VerifyingKey.verify` recomputes it.
    """

    signer: int
    message_digest: str
    proof: str

    def __repr__(self) -> str:
        return f"Signature(signer={self.signer}, digest={self.message_digest[:8]}…)"


class SigningKey:
    """The private half of a key pair.  Only its owner can mint signatures."""

    def __init__(self, owner: int) -> None:
        self.owner = owner
        self._secret = next(_SECRET_COUNTER)

    def sign(self, message: Any) -> Signature:
        """Sign an arbitrary message (hashed canonically first)."""
        message_digest = digest(message)
        proof = digest("sig", self.owner, self._secret, message_digest)
        return Signature(signer=self.owner, message_digest=message_digest, proof=proof)

    # The secret is exposed (read-only) to the verifying key created alongside
    # this signing key; nothing else in the library reads it.
    @property
    def secret_token(self) -> int:
        return self._secret


class VerifyingKey:
    """The public half of a key pair."""

    def __init__(self, owner: int, secret_token: int) -> None:
        self.owner = owner
        self._secret = secret_token

    def verify(self, signature: Signature, message: Any) -> bool:
        """Check that ``signature`` was produced by this key's owner over ``message``."""
        if signature.signer != self.owner:
            return False
        message_digest = digest(message)
        if signature.message_digest != message_digest:
            return False
        expected = digest("sig", self.owner, self._secret, message_digest)
        return signature.proof == expected


@dataclass(frozen=True)
class KeyPair:
    """A signing/verifying key pair for one processor."""

    signing: SigningKey
    verifying: VerifyingKey

    @classmethod
    def generate(cls, owner: int) -> "KeyPair":
        signing = SigningKey(owner)
        verifying = VerifyingKey(owner, signing.secret_token)
        return cls(signing=signing, verifying=verifying)


class PKI:
    """Public-key infrastructure: maps processor ids to verifying keys.

    The PKI also acts as the key-generation ceremony: :meth:`setup` creates a
    key pair per processor and returns the signing keys so the simulation can
    hand each one to its owner.
    """

    def __init__(self) -> None:
        self._verifying: dict[int, VerifyingKey] = {}

    @classmethod
    def setup(cls, processor_ids: Iterable[int]) -> tuple["PKI", dict[int, SigningKey]]:
        """Generate keys for every processor and register the public halves."""
        pki = cls()
        signing_keys: dict[int, SigningKey] = {}
        for pid in processor_ids:
            pair = KeyPair.generate(pid)
            pki._verifying[pid] = pair.verifying
            signing_keys[pid] = pair.signing
        return pki, signing_keys

    @property
    def processor_ids(self) -> list[int]:
        """All processor ids with registered keys."""
        return sorted(self._verifying)

    def verifying_key(self, pid: int) -> VerifyingKey:
        """The verifying key for processor ``pid``."""
        try:
            return self._verifying[pid]
        except KeyError as exc:
            raise CryptoError(f"no verifying key registered for processor {pid}") from exc

    def verify(self, signature: Signature, message: Any) -> None:
        """Verify ``signature`` over ``message``; raise :class:`InvalidSignature` otherwise."""
        key = self.verifying_key(signature.signer)
        if not key.verify(signature, message):
            raise InvalidSignature(
                f"signature by {signature.signer} failed verification"
            )

    def is_valid(self, signature: Signature, message: Any) -> bool:
        """Boolean form of :meth:`verify`."""
        try:
            self.verify(signature, message)
        except CryptoError:
            return False
        return True
