"""Simulated digital signatures and PKI.

A :class:`Signature` over a message digest can only be produced through the
:class:`SigningKey` of the signer, which the simulation hands exclusively to
the owning processor.  Byzantine processors therefore can sign arbitrary
*contents* in their own name but can never forge signatures of honest
processors — exactly the adversary the paper assumes.

All digests flow through a :class:`~repro.crypto.backend.CryptoBackend`.
Keys bind the backend at construction (defaulting to the process default),
and a :class:`PKI` threads one shared backend into every key it generates —
a whole key ceremony therefore agrees on digest semantics by construction.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Iterable, Optional

from repro.errors import CryptoError, InvalidSignature
from repro.crypto.backend import CryptoBackend, get_default_backend

# Monotonic counter giving each SigningKey an unforgeable secret token.
_SECRET_COUNTER = itertools.count(1)


@dataclass(frozen=True, slots=True)
class Signature:
    """A signature by ``signer`` over ``message_digest``.

    The ``proof`` field binds the signature to the secret token of the
    signer's key; :meth:`VerifyingKey.verify` recomputes it.
    """

    signer: int
    message_digest: str
    proof: str

    def __repr__(self) -> str:
        return f"Signature(signer={self.signer}, digest={self.message_digest[:8]}…)"


class SigningKey:
    """The private half of a key pair.  Only its owner can mint signatures."""

    __slots__ = ("owner", "_secret", "_backend")

    def __init__(self, owner: int, backend: Optional[CryptoBackend] = None) -> None:
        self.owner = owner
        self._secret = next(_SECRET_COUNTER)
        self._backend = backend if backend is not None else get_default_backend()

    @property
    def backend(self) -> CryptoBackend:
        """The crypto backend this key digests with."""
        return self._backend

    def sign(self, message: Any) -> Signature:
        """Sign an arbitrary message (digested canonically first)."""
        return self.sign_digest(self._backend.digest(message))

    def sign_digest(self, message_digest: str) -> Signature:
        """Sign an already-computed message digest.

        The hot-path variant: callers that digested the message themselves
        (the threshold scheme hoists the digest out of its verify/aggregate
        loops) avoid a second canonicalisation here.
        """
        proof = self._backend.digest("sig", self.owner, self._secret, message_digest)
        return Signature(signer=self.owner, message_digest=message_digest, proof=proof)

    # The secret is exposed (read-only) to the verifying key created alongside
    # this signing key; nothing else in the library reads it.
    @property
    def secret_token(self) -> int:
        return self._secret


class VerifyingKey:
    """The public half of a key pair."""

    __slots__ = ("owner", "_secret", "_backend")

    def __init__(
        self, owner: int, secret_token: int, backend: Optional[CryptoBackend] = None
    ) -> None:
        self.owner = owner
        self._secret = secret_token
        self._backend = backend if backend is not None else get_default_backend()

    def verify(self, signature: Signature, message: Any) -> bool:
        """Check that ``signature`` was produced by this key's owner over ``message``."""
        return self.verify_digest(signature, self._backend.digest(message))

    def verify_digest(self, signature: Signature, message_digest: str) -> bool:
        """:meth:`verify` for callers that already digested the message.

        Sound only when the caller computed ``message_digest`` itself (never
        trust a digest carried inside the object being verified).
        """
        if signature.signer != self.owner:
            return False
        if signature.message_digest != message_digest:
            return False
        expected = self._backend.digest(*self.proof_parts(message_digest))
        return signature.proof == expected

    def proof_parts(self, message_digest: str) -> tuple:
        """The digest parts whose digest is the expected proof over
        ``message_digest`` — the one place the proof recipe lives.

        :meth:`PKI.batch_verify_items` builds
        :meth:`~repro.crypto.backend.CryptoBackend.verify_batch` inputs from
        this, so batched and per-share verification recompute the exact same
        digests.
        """
        return ("sig", self.owner, self._secret, message_digest)


@dataclass(frozen=True, slots=True)
class KeyPair:
    """A signing/verifying key pair for one processor."""

    signing: SigningKey
    verifying: VerifyingKey

    @classmethod
    def generate(cls, owner: int, backend: Optional[CryptoBackend] = None) -> "KeyPair":
        backend = backend if backend is not None else get_default_backend()
        signing = SigningKey(owner, backend=backend)
        verifying = VerifyingKey(owner, signing.secret_token, backend=backend)
        return cls(signing=signing, verifying=verifying)


class PKI:
    """Public-key infrastructure: maps processor ids to verifying keys.

    The PKI also acts as the key-generation ceremony: :meth:`setup` creates a
    key pair per processor and returns the signing keys so the simulation can
    hand each one to its owner.  One :class:`~repro.crypto.backend.CryptoBackend`
    is shared by the PKI and every key it generates.
    """

    def __init__(self, backend: Optional[CryptoBackend] = None) -> None:
        self.backend = backend if backend is not None else get_default_backend()
        self._verifying: dict[int, VerifyingKey] = {}

    @classmethod
    def setup(
        cls, processor_ids: Iterable[int], backend: Optional[CryptoBackend] = None
    ) -> tuple["PKI", dict[int, SigningKey]]:
        """Generate keys for every processor and register the public halves."""
        pki = cls(backend=backend)
        signing_keys: dict[int, SigningKey] = {}
        for pid in processor_ids:
            pair = KeyPair.generate(pid, backend=pki.backend)
            pki._verifying[pid] = pair.verifying
            signing_keys[pid] = pair.signing
        return pki, signing_keys

    @property
    def processor_ids(self) -> list[int]:
        """All processor ids with registered keys."""
        return sorted(self._verifying)

    def covers(self, signers: Iterable[int]) -> bool:
        """Whether every id in ``signers`` has a registered verifying key.

        A set-operation on the key view (no list/sort per call), used by
        aggregate verification on the hot path.
        """
        if not isinstance(signers, (set, frozenset)):
            signers = set(signers)
        return signers <= self._verifying.keys()

    def verifying_key(self, pid: int) -> VerifyingKey:
        """The verifying key for processor ``pid``."""
        try:
            return self._verifying[pid]
        except KeyError as exc:
            raise CryptoError(f"no verifying key registered for processor {pid}") from exc

    def verify(self, signature: Signature, message: Any) -> None:
        """Verify ``signature`` over ``message``; raise :class:`InvalidSignature` otherwise."""
        key = self.verifying_key(signature.signer)
        if not key.verify(signature, message):
            raise InvalidSignature(
                f"signature by {signature.signer} failed verification"
            )

    def is_valid(self, signature: Signature, message: Any) -> bool:
        """Boolean form of :meth:`verify`."""
        try:
            self.verify(signature, message)
        except CryptoError:
            return False
        return True

    def is_valid_digest(self, signature: Signature, message_digest: str) -> bool:
        """:meth:`is_valid` for callers that already digested the message."""
        try:
            key = self.verifying_key(signature.signer)
        except CryptoError:
            return False
        return key.verify_digest(signature, message_digest)

    def batch_verify_items(
        self, signatures: Iterable[Signature], message_digest: str
    ) -> Optional[list[tuple[tuple, str]]]:
        """Build :meth:`~repro.crypto.backend.CryptoBackend.verify_batch`
        input for a whole share set over one message digest.

        Performs the cheap structural checks of :meth:`is_valid_digest`
        (known signer, matching message digest) up front; if any signature
        fails one, the batch cannot possibly be all-valid and ``None`` is
        returned — callers then fall back to the per-share path, which sorts
        valid from invalid shares with identical results.  Otherwise returns
        one ``(proof_parts, expected_proof)`` pair per signature, so a
        single ``verify_batch`` call replaces the per-share digest loop.
        """
        verifying = self._verifying
        items: list[tuple[tuple, str]] = []
        for signature in signatures:
            key = verifying.get(signature.signer)
            if key is None or signature.message_digest != message_digest:
                return None
            items.append((key.proof_parts(message_digest), signature.proof))
        return items
