"""Deterministic hashing of protocol payloads.

Hashes are used as block identifiers and as the message component of
signatures.  They need to be deterministic across runs (so traces are
reproducible) and collision-free for the objects we hash; a truncated
BLAKE2b over a canonical ``repr`` of the payload is plenty for both.
"""

from __future__ import annotations

import hashlib
from typing import Any

DIGEST_SIZE_BYTES = 16


def _canonical(payload: Any) -> bytes:
    """Render a payload into canonical bytes for hashing.

    Tuples, lists, dicts, dataclass-like reprs and primitives all reduce to a
    stable textual form.  Sets are sorted to remove ordering nondeterminism.
    """
    if isinstance(payload, bytes):
        return payload
    if isinstance(payload, str):
        return payload.encode("utf-8")
    if isinstance(payload, (int, float, bool)) or payload is None:
        return repr(payload).encode("utf-8")
    if isinstance(payload, (frozenset, set)):
        inner = b",".join(sorted(_canonical(item) for item in payload))
        return b"{" + inner + b"}"
    if isinstance(payload, (tuple, list)):
        inner = b",".join(_canonical(item) for item in payload)
        return b"(" + inner + b")"
    if isinstance(payload, dict):
        inner = b",".join(
            _canonical(key) + b":" + _canonical(value) for key, value in sorted(payload.items())
        )
        return b"[" + inner + b"]"
    return repr(payload).encode("utf-8")


def digest(*parts: Any) -> str:
    """Return a short hex digest binding all ``parts`` together."""
    hasher = hashlib.blake2b(digest_size=DIGEST_SIZE_BYTES)
    for part in parts:
        hasher.update(_canonical(part))
        hasher.update(b"|")
    return hasher.hexdigest()
