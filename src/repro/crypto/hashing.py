"""Deterministic hashing of protocol payloads.

Digests are used as block identifiers and as the message component of
signatures.  They need to be deterministic across runs (so traces are
reproducible) and collision-free for the objects we hash.

Since the crypto-backend refactor the *primitive* lives in
:mod:`repro.crypto.backend`: :func:`digest` here delegates to the installed
default backend (hashing unless a scenario chose otherwise), and
:func:`repro.crypto.backend.blake_digest` is the pure canonicalise-and-
BLAKE2b function for callers that need backend-independent stable digests.
This module remains the convenience entry point.
"""

from __future__ import annotations

from typing import Any

from repro.crypto.backend import (
    DIGEST_SIZE_BYTES,
    blake_digest,
    canonical_bytes,
    get_default_backend,
)

__all__ = ["DIGEST_SIZE_BYTES", "blake_digest", "canonical_bytes", "digest"]

# Backwards-compatible alias for the canonical renderer's historical name.
_canonical = canonical_bytes


def digest(*parts: Any) -> str:
    """Return a short digest binding all ``parts`` together.

    Delegates to the process-default :class:`~repro.crypto.backend.CryptoBackend`,
    so code using this convenience function automatically follows the
    backend a scenario installed.  Use :func:`blake_digest` when a stable
    cross-run hex digest is required regardless of backend.
    """
    return get_default_backend().digest(*parts)
