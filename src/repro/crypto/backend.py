"""Pluggable crypto backends.

Every cryptographic object in the reproduction — block ids, signatures,
partial signatures, threshold proofs — reduces to calls of one primitive:
``digest(*parts) -> str``, a deterministic, collision-free mapping from a
payload structure to a short string.  The paper's results only need the
*equality semantics* of that mapping (equal payloads map to equal digests,
distinct payloads to distinct digests); the bytes themselves never matter.

That observation makes the primitive pluggable.  Three backends exist:

* :class:`HashingBackend` — canonicalise the payload structure and BLAKE2b
  it (the historical behaviour, and the default).  Digests are stable
  across runs and processes, so traces and golden values reproduce.
* :class:`CountingBackend` — intern each distinct payload structure and
  hand out a small sequential token instead of a hash.  O(1) per call
  after the first sight of a payload, no canonicalisation, no hashing.
  Semantically identical for honest-and-Byzantine-*as-modelled* runs: the
  modelled adversary equivocates, withholds and delays but never forges
  proof strings, so nothing ever depends on tokens being unguessable.
  Tokens are only meaningful within the backend instance that minted them
  (one simulation run); they must never cross runs.
* :class:`MemoisingBackend` — a wrapper that interns the digests of any
  inner backend per payload value, so repeated digests of the same payload
  (every recipient of a broadcast verifying the same certificate, say) pay
  the canonicalise-and-hash cost once.

A backend is chosen per scenario via ``ScenarioConfig.crypto_backend`` /
``ProtocolConfig.crypto_backend`` (see :func:`make_backend` for the names)
and is itself a campaign sweep axis, which is how the scaling benchmark
(``benchmarks/bench_scaling.py``) compares them.

The process-wide *default* backend (:func:`get_default_backend`) serves the
call sites that cannot carry an explicit backend reference — chiefly
:attr:`repro.consensus.blocks.Block.block_id`, computed lazily on a frozen
dataclass — and the module-level :func:`repro.crypto.hashing.digest`
convenience function.  ``build_scenario`` installs the scenario's backend
as the default for the run it builds; simulation runs are single-threaded
per process, so this is sound as long as runs with different backends are
not interleaved within one process (the campaign executors never do).
"""

from __future__ import annotations

import hashlib
import itertools
from abc import ABC, abstractmethod
from contextlib import contextmanager
from typing import Any, Callable, Iterator, Sequence

from repro.errors import ConfigurationError

DIGEST_SIZE_BYTES = 16

# Sentinels distinguishing structural kinds inside frozen keys, mirroring the
# distinct delimiters _canonical() uses for dicts vs sequences.
_DICT_MARK = "\x00dict"


def _canonical_set(payload: Any) -> bytes:
    # Sets sort to remove ordering nondeterminism.  Homogeneous int sets —
    # threshold signer sets, the dominant shape of large-n runs — sort
    # numerically and render in one join, skipping the per-element
    # canonical_bytes dispatch and the byte-wise re-sort; heterogeneous or
    # unorderable sets take the general path (render each element, sort the
    # renderings).  The two renderings differ in element *order* (numeric vs
    # lexicographic), but every set deterministically takes exactly one
    # path, so equal sets still agree and distinct sets still differ.
    try:
        items = sorted(payload)
    except TypeError:
        return b"{" + b",".join(sorted(canonical_bytes(item) for item in payload)) + b"}"
    for item in items:
        if type(item) is not int:
            return b"{" + b",".join(sorted(canonical_bytes(item) for item in items)) + b"}"
    return b"{" + ",".join(map(repr, items)).encode("ascii") + b"}"


def _canonical_sequence(payload: Any) -> bytes:
    return b"(" + b",".join([canonical_bytes(item) for item in payload]) + b")"


def _canonical_dict(payload: dict) -> bytes:
    inner = b",".join(
        canonical_bytes(key) + b":" + canonical_bytes(value)
        for key, value in sorted(payload.items())
    )
    return b"[" + inner + b"]"


def _canonical_repr(payload: Any) -> bytes:
    return repr(payload).encode("utf-8")


# Exact-type dispatch for the overwhelmingly common payload shapes: one dict
# lookup replaces the isinstance ladder the canonicaliser historically walked
# on every one of its millions of recursive calls per large-n run.  Subclasses
# of these types (and dataclasses) miss the table and take the generic path,
# which preserves the ladder's semantics — the rendered bytes are identical.
_CANONICAL_DISPATCH: dict[type, Callable[[Any], bytes]] = {
    bytes: lambda payload: payload,
    str: lambda payload: payload.encode("utf-8"),
    int: _canonical_repr,
    bool: _canonical_repr,
    float: _canonical_repr,
    type(None): lambda payload: b"None",
    frozenset: _canonical_set,
    set: _canonical_set,
    tuple: _canonical_sequence,
    list: _canonical_sequence,
    dict: _canonical_dict,
}

# Dataclass field names per type, resolved once instead of re-reading
# __dataclass_fields__ (a dict) on every canonicalisation of a wire message.
_FIELD_NAMES_CACHE: dict[type, tuple[str, ...]] = {}


def canonical_bytes(payload: Any) -> bytes:
    """Render a payload into canonical bytes for hashing.

    Tuples, lists, dicts, dataclass-like reprs and primitives all reduce to a
    stable textual form.  Sets are sorted to remove ordering nondeterminism.
    """
    handler = _CANONICAL_DISPATCH.get(type(payload))
    if handler is not None:
        return handler(payload)
    return _canonical_other(payload)


def _canonical_other(payload: Any) -> bytes:
    """The generic path: builtin subclasses, dataclasses, everything else."""
    if isinstance(payload, bytes):
        return payload
    if isinstance(payload, str):
        return payload.encode("utf-8")
    if isinstance(payload, (int, float, bool)) or payload is None:
        return repr(payload).encode("utf-8")
    if isinstance(payload, (frozenset, set)):
        return _canonical_set(payload)
    if isinstance(payload, (tuple, list)):
        return _canonical_sequence(payload)
    if isinstance(payload, dict):
        return _canonical_dict(payload)
    payload_type = type(payload)
    names = _FIELD_NAMES_CACHE.get(payload_type)
    if names is None:
        fields = getattr(payload, "__dataclass_fields__", None)
        if fields is None:
            return repr(payload).encode("utf-8")
        names = tuple(fields)
        _FIELD_NAMES_CACHE[payload_type] = names
    # Dataclasses (wire messages, certificates, blocks) canonicalise by
    # recursing into their full field contents.  The historical repr
    # fallback was lossy here: custom __repr__s truncate digests to 8
    # characters and summarise signer sets, so two *different* payloads
    # could canonicalise identically.
    inner = b",".join([canonical_bytes(getattr(payload, name)) for name in names])
    return b"<" + payload_type.__name__.encode("utf-8") + b":" + inner + b">"


def blake_digest(*parts: Any) -> str:
    """The pure hash primitive: a short BLAKE2b hex digest binding ``parts``.

    This is :class:`HashingBackend`'s computation, exposed as a function for
    callers that need a digest independent of any backend choice (golden
    values, content-addressed caches).
    """
    hasher = hashlib.blake2b(digest_size=DIGEST_SIZE_BYTES)
    for part in parts:
        hasher.update(canonical_bytes(part))
        hasher.update(b"|")
    return hasher.hexdigest()


def _freeze(value: Any) -> Any:
    """Reduce a payload structure to a hashable key with the same equality
    semantics as :func:`canonical_bytes`: lists equal tuples, sets equal
    frozensets, dict keys are order-insensitive.

    Hashable values pass through unchanged — the raw-key fast path in the
    interning backends uses the value itself, so freezing must be the
    identity there for the two key forms to agree.  Unhashable dataclasses
    (a wire message with a list-valued field, say) decompose into their
    field contents, mirroring the dataclass case of :func:`canonical_bytes`.
    """
    if isinstance(value, (tuple, list)):
        return tuple(_freeze(item) for item in value)
    if isinstance(value, (set, frozenset)):
        return frozenset(_freeze(item) for item in value)
    if isinstance(value, dict):
        return (_DICT_MARK, tuple(sorted((_freeze(k), _freeze(v)) for k, v in value.items())))
    fields = getattr(value, "__dataclass_fields__", None)
    if fields is not None:
        try:
            hash(value)
        except TypeError:
            return (
                type(value).__name__,
                tuple(_freeze(getattr(value, name)) for name in fields),
            )
    return value


class CryptoBackend(ABC):
    """Strategy providing the digest primitive the crypto layer is built on.

    Subclasses implement :meth:`_compute`; the public :meth:`digest` wraps it
    with call accounting so tests and benchmarks can observe how much digest
    work a run performed (``digest_calls``) versus how much of it was
    genuinely computed rather than served from an intern table
    (``digest_computes``).
    """

    #: Machine-readable name used by the registry and in scenario configs.
    name: str = "abstract"

    def __init__(self) -> None:
        #: Number of ``digest()`` requests served.
        self.digest_calls = 0
        #: Number of requests that performed the backend's full computation
        #: (for interning backends this is the miss count).
        self.digest_computes = 0
        #: Number of :meth:`verify_batch` invocations (each counts as ONE
        #: digest call however many shares it covers).
        self.batch_verifies = 0
        #: Total shares covered by all :meth:`verify_batch` invocations;
        #: ``batched_shares - batch_verifies`` is the number of per-share
        #: verify calls the batching amortised away.
        self.batched_shares = 0

    def digest(self, *parts: Any) -> str:
        """Return a short string digest binding all ``parts`` together.

        Equal part structures yield equal digests; distinct structures yield
        distinct digests (up to hash collisions for the hashing backend).
        """
        self.digest_calls += 1
        return self._compute(*parts)

    def verify_batch(self, items: "Sequence[tuple[tuple, str]]") -> bool:
        """All-or-nothing batched digest check.

        ``items`` is a sequence of ``(parts, expected)`` pairs; returns True
        iff ``digest(*parts) == expected`` holds for **every** pair (short-
        circuiting on the first mismatch).  This is the amortised
        verify-on-aggregate seam: the threshold scheme's ``combine`` checks a
        whole quorum of partial signatures in one call instead of one
        ``digest()`` per share.  The whole batch counts as ONE digest call
        (``digest_calls``), while ``digest_computes`` still tracks real
        per-share work, so the calls-vs-computes gap — together with
        ``batch_verifies`` / ``batched_shares`` — surfaces exactly how many
        dispatches the batching saved.

        The result is bit-identical to looping :meth:`digest` per share:
        subclasses override :meth:`_verify_batch` with a tighter loop, never
        with different semantics.
        """
        self.digest_calls += 1
        self.batch_verifies += 1
        self.batched_shares += len(items)
        return self._verify_batch(items)

    def _verify_batch(self, items: "Sequence[tuple[tuple, str]]") -> bool:
        """Backend-specific batched check (no batch accounting)."""
        compute = self._compute
        for parts, expected in items:
            if compute(*parts) != expected:
                return False
        return True

    @abstractmethod
    def _compute(self, *parts: Any) -> str:
        """Backend-specific digest computation (no accounting)."""

    def reset_counters(self) -> None:
        """Zero the call/compute counters (benchmarks call this between phases)."""
        self.digest_calls = 0
        self.digest_computes = 0
        self.batch_verifies = 0
        self.batched_shares = 0

    def describe(self) -> str:
        """Human-readable description used in reports and cache fingerprints."""
        return self.name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}(calls={self.digest_calls}, "
            f"computes={self.digest_computes})"
        )


class HashingBackend(CryptoBackend):
    """Canonicalise-and-BLAKE2b digests — the historical default.

    Digests are stable across runs, processes and machines, which makes this
    the right backend for tests with golden values and for anything written
    to disk.  It is also the slowest: every call re-canonicalises the whole
    payload structure and hashes it.
    """

    name = "hashing"

    def _compute(self, *parts: Any) -> str:
        self.digest_computes += 1
        return blake_digest(*parts)

    def _verify_batch(self, items: Sequence[tuple[tuple, str]]) -> bool:
        # Hoisted loop: no per-share method dispatch between hashes.
        for parts, expected in items:
            self.digest_computes += 1
            if blake_digest(*parts) != expected:
                return False
        return True


class CountingBackend(CryptoBackend):
    """O(1) structural tokens instead of hashes.

    Each distinct payload structure is interned on first sight and mapped to
    a short sequential token (``~0``, ``~1``, ...).  Equality semantics match
    :class:`HashingBackend` (lists equal tuples, sets are order-insensitive),
    so honest-and-Byzantine-as-modelled runs are semantically identical —
    the modelled adversary never forges proof strings, so nothing depends on
    digests being unguessable.  Two deliberate differences:

    * tokens are only meaningful within this backend instance (one run);
      they must never be compared across runs or persisted;
    * payloads that are equal *as Python values* but canonicalise
      differently (``True`` vs ``1``) share a token here.  No protocol
      payload mixes such values in one position.

    The intern table grows with the number of distinct payloads in a run;
    for the simulation workloads this is bounded by views x n and has never
    been a concern.
    """

    name = "counting"

    # Each instance mints tokens in its own namespace (``~<instance>:<n>``),
    # so a token that leaks across runs — e.g. a digest string cached on an
    # object that outlives its run while a later run installs a fresh
    # counting backend — can never *collide* with the later run's tokens.
    # Leaked tokens are still meaningless outside their run; they just fail
    # comparisons instead of silently matching.
    _INSTANCE_COUNTER = itertools.count()

    def __init__(self) -> None:
        super().__init__()
        self._tokens: dict[Any, str] = {}
        self._prefix = f"~{next(self._INSTANCE_COUNTER):x}:"

    @property
    def distinct_payloads(self) -> int:
        """Number of distinct payload structures interned so far."""
        return len(self._tokens)

    def _compute(self, *parts: Any) -> str:
        tokens = self._tokens
        key: Any = parts
        try:
            token = tokens.get(key)
        except TypeError:  # unhashable part (a list of signers, say)
            key = _freeze(parts)
            token = tokens.get(key)
        if token is None:
            self.digest_computes += 1
            token = f"{self._prefix}{len(tokens):x}"
            tokens[key] = token
        return token

    def _verify_batch(self, items: Sequence[tuple[tuple, str]]) -> bool:
        # Hoisted intern-table loop, same semantics as _compute per share: a
        # never-seen payload is interned (fresh token, a guaranteed mismatch
        # for any previously minted proof), a seen one is looked up O(1).
        tokens = self._tokens
        for parts, expected in items:
            key: Any = parts
            try:
                token = tokens.get(key)
            except TypeError:
                key = _freeze(parts)
                token = tokens.get(key)
            if token is None:
                self.digest_computes += 1
                token = f"{self._prefix}{len(tokens):x}"
                tokens[key] = token
            if token != expected:
                return False
        return True


class MemoisingBackend(CryptoBackend):
    """Intern the digests of an inner backend per payload value.

    Repeated digests of the same payload — every recipient of a broadcast
    verifying the same certificate, every vote re-verified at aggregation —
    pay the inner backend's cost once.  Digest *values* are the inner
    backend's, so ``MemoisingBackend(HashingBackend())`` is bit-identical to
    plain hashing, just faster on repetitive workloads at the price of the
    memo table's memory.
    """

    name = "interned"

    def __init__(self, inner: CryptoBackend | None = None) -> None:
        super().__init__()
        self.inner = inner if inner is not None else HashingBackend()
        self._memo: dict[Any, str] = {}
        #: Requests served from the memo table.
        self.hits = 0

    def _compute(self, *parts: Any) -> str:
        memo = self._memo
        key: Any = parts
        try:
            cached = memo.get(key)
        except TypeError:
            key = _freeze(parts)
            cached = memo.get(key)
        if cached is not None:
            self.hits += 1
            return cached
        self.digest_computes += 1
        value = self.inner.digest(*parts)
        memo[key] = value
        return value

    def _verify_batch(self, items: Sequence[tuple[tuple, str]]) -> bool:
        # Hoisted memo loop: verified shares were almost always digested
        # before (their proofs were minted through this backend), so the
        # common case is one memo hit per share.
        memo = self._memo
        for parts, expected in items:
            key: Any = parts
            try:
                cached = memo.get(key)
            except TypeError:
                key = _freeze(parts)
                cached = memo.get(key)
            if cached is None:
                self.digest_computes += 1
                cached = self.inner.digest(*parts)
                memo[key] = cached
            else:
                self.hits += 1
            if cached != expected:
                return False
        return True

    def describe(self) -> str:
        return f"{self.name}({self.inner.describe()})"


#: Registered backend factories, keyed by the name used in configs.
_BACKEND_FACTORIES: dict[str, Callable[[], CryptoBackend]] = {
    "hashing": HashingBackend,
    "counting": CountingBackend,
    "interned": MemoisingBackend,
}


def available_backends() -> tuple[str, ...]:
    """Names accepted by :func:`make_backend` (and by the config layer)."""
    return tuple(sorted(_BACKEND_FACTORIES))


def make_backend(name: str) -> CryptoBackend:
    """Construct a fresh backend instance by registered name.

    A *fresh* instance matters: counting tokens and memo tables are only
    meaningful within one run, so every scenario build gets its own.

    Raises
    ------
    ConfigurationError
        If ``name`` is not a registered backend name.
    """
    try:
        factory = _BACKEND_FACTORIES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown crypto backend {name!r}; available: {', '.join(available_backends())}"
        ) from None
    return factory()


# ----------------------------------------------------------------------
# Process-wide default backend
# ----------------------------------------------------------------------
_default_backend: CryptoBackend = HashingBackend()


def get_default_backend() -> CryptoBackend:
    """The backend serving call sites without an explicit backend reference
    (lazy ``Block.block_id`` derivation, the module-level ``digest()``)."""
    return _default_backend


def set_default_backend(backend: CryptoBackend) -> CryptoBackend:
    """Install ``backend`` as the process default; returns the previous one.

    ``build_scenario`` calls this with each run's backend.  Runs are
    single-threaded per process, so the only unsupported pattern is
    interleaving two runs with *different* backends in one process.
    """
    global _default_backend
    previous = _default_backend
    _default_backend = backend
    return previous


@contextmanager
def use_backend(backend: CryptoBackend) -> Iterator[CryptoBackend]:
    """Context manager installing ``backend`` as the default, then restoring."""
    previous = set_default_backend(backend)
    try:
        yield backend
    finally:
        set_default_backend(previous)
