"""Simulated cryptography.

The paper assumes perfect cryptographic primitives: authenticated channels,
a PKI-backed signature scheme, and an ``m``-of-``n`` threshold signature
scheme (``m`` is ``f+1`` or ``2f+1``).  Only message counts and O(kappa)
sizes matter to the results, so this package provides lightweight objects
whose unforgeability is enforced *by construction*: a signature share can
only be minted through the :class:`SigningKey` held by the corresponding
processor, and aggregation refuses duplicate signers or too-few shares.

The digest primitive everything reduces to is pluggable — see
:mod:`repro.crypto.backend` for the hashing / counting / interned backends
and how a scenario selects one.
"""

from repro.crypto.backend import (
    CountingBackend,
    CryptoBackend,
    HashingBackend,
    MemoisingBackend,
    available_backends,
    blake_digest,
    get_default_backend,
    make_backend,
    set_default_backend,
    use_backend,
)
from repro.crypto.hashing import digest
from repro.crypto.signatures import KeyPair, PKI, Signature, SigningKey, VerifyingKey
from repro.crypto.threshold import PartialSignature, ThresholdScheme, ThresholdSignature

__all__ = [
    "CountingBackend",
    "CryptoBackend",
    "HashingBackend",
    "KeyPair",
    "MemoisingBackend",
    "PKI",
    "PartialSignature",
    "Signature",
    "SigningKey",
    "ThresholdScheme",
    "ThresholdSignature",
    "VerifyingKey",
    "available_backends",
    "blake_digest",
    "digest",
    "get_default_backend",
    "make_backend",
    "set_default_backend",
    "use_backend",
]
