"""Simulated ``m``-of-``n`` threshold signatures.

The paper uses two thresholds: ``f+1`` (View Certificates, Timeout
Certificates) and ``2f+1`` (Quorum Certificates, Epoch Certificates).  A
:class:`ThresholdSignature` is O(kappa)-sized regardless of ``m`` and ``n``;
here we keep the signer set only so that tests and metrics can inspect who
contributed — the object still *counts* as a single constant-size message
component, matching the paper's complexity accounting.

All digest work flows through the scheme's
:class:`~repro.crypto.backend.CryptoBackend` (shared with the PKI), and the
message digest is hoisted out of the per-share loops: one ``combine`` or
``verify`` call canonicalises the message once, however many shares it
touches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Sequence

from repro.errors import ThresholdError
from repro.crypto.backend import CryptoBackend
from repro.crypto.signatures import PKI, Signature, SigningKey

# Process-wide default for ThresholdScheme(batch_verify=None): whether
# ``combine`` verifies a quorum of shares through one
# ``CryptoBackend.verify_batch`` call instead of one digest per share.
# Benchmarks flip it off (``bench_scaling.py --no-batch-verify``) to prove
# the batched and per-share paths produce identical runs.
_BATCH_VERIFY_DEFAULT = True


def set_batch_verify_default(enabled: bool) -> bool:
    """Set the process-wide batched-verification default; returns the
    previous value.  Schemes constructed with an explicit ``batch_verify``
    are unaffected."""
    global _BATCH_VERIFY_DEFAULT
    previous = _BATCH_VERIFY_DEFAULT
    _BATCH_VERIFY_DEFAULT = enabled
    return previous


@dataclass(frozen=True, slots=True)
class PartialSignature:
    """One processor's share towards a threshold signature on ``message_digest``."""

    signer: int
    message_digest: str
    signature: Signature

    def __repr__(self) -> str:
        return f"PartialSignature(signer={self.signer}, digest={self.message_digest[:8]}…)"


@dataclass(frozen=True, slots=True)
class ThresholdSignature:
    """An aggregated signature of at least ``threshold`` distinct processors."""

    message_digest: str
    threshold: int
    signers: frozenset[int]
    proof: str

    @property
    def size(self) -> int:
        """Number of distinct contributing signers."""
        return len(self.signers)

    def __repr__(self) -> str:
        return (
            f"ThresholdSignature(digest={self.message_digest[:8]}…, "
            f"threshold={self.threshold}, signers={sorted(self.signers)})"
        )


class ThresholdScheme:
    """Aggregation and verification of partial signatures.

    One scheme instance is shared by all processors (it holds only public
    material: the PKI).  Minting a partial share still requires the signer's
    private :class:`SigningKey`, so the unforgeability argument carries over
    from :mod:`repro.crypto.signatures`.

    Parameters
    ----------
    pki:
        The public-key infrastructure shares are verified against.
    backend:
        Digest backend; defaults to the PKI's own, which keeps the whole
        ceremony (keys, shares, aggregates) on one digest semantics.
    cache_verified:
        Whether :meth:`verify` remembers aggregates that already verified
        (default on).  The scheme instance is shared by every replica of a
        run, and each replica independently verifies the same certificate
        as it arrives, so without the cache the O(n) signer-set digest is
        recomputed n times per certificate — the dominant crypto cost of
        large-``n`` runs under the hashing backend.  A hit only requires
        digesting the (small) message; the cache key binds everything the
        proof recomputation would check (message digest, threshold, signer
        set, proof string), so a hit and a recomputation always agree.
        Disable it to measure the raw per-verification seam cost
        (``benchmarks/bench_scaling.py`` does for its pipeline
        microbenchmark).
    batch_verify:
        Whether :meth:`combine` verifies a quorum of shares through one
        :meth:`~repro.crypto.backend.CryptoBackend.verify_batch` call —
        one digest dispatch per quorum instead of one per share — falling
        back to the bit-identical per-share loop whenever the batch is not
        all-valid.  ``None`` (the default) follows the process-wide default
        set by :func:`set_batch_verify_default` (initially on).
    """

    def __init__(
        self,
        pki: PKI,
        backend: Optional[CryptoBackend] = None,
        cache_verified: bool = True,
        batch_verify: Optional[bool] = None,
    ) -> None:
        self.pki = pki
        self.backend = backend if backend is not None else pki.backend
        self.batch_verify = (
            _BATCH_VERIFY_DEFAULT if batch_verify is None else batch_verify
        )
        self._verified: Optional[set[tuple[str, str, int, frozenset[int]]]] = (
            set() if cache_verified else None
        )
        #: Number of :meth:`verify` calls served from the verified cache.
        self.verify_cache_hits = 0
        #: Number of :meth:`combine` calls whose whole quorum verified in
        #: one batched call.
        self.batched_combines = 0
        #: Number of :meth:`combine` calls that fell back to the per-share
        #: loop (some share failed the batch, or batching is off).
        self.combine_fallbacks = 0

    # ------------------------------------------------------------------
    # Shares
    # ------------------------------------------------------------------
    def partial_sign(
        self,
        key: SigningKey,
        message: Any,
        message_digest: Optional[str] = None,
    ) -> PartialSignature:
        """Create this signer's share over ``message``.

        ``message_digest`` must be the caller's own digest of ``message``
        (see :meth:`verify_partial`); passing it elides the re-digest for
        callers that memoise per-view payload digests.
        """
        if message_digest is None:
            message_digest = self.backend.digest(message)
        signature = key.sign_digest(message_digest)
        return PartialSignature(
            signer=key.owner, message_digest=message_digest, signature=signature
        )

    def verify_partial(
        self,
        partial: PartialSignature,
        message: Any,
        message_digest: Optional[str] = None,
    ) -> bool:
        """Check one share against the PKI.

        ``message_digest`` lets loop-shaped callers (``combine``, the
        certificate collectors) canonicalise the message once; it must be
        the caller's own digest of ``message``, never one read off the wire.
        """
        if message_digest is None:
            message_digest = self.backend.digest(message)
        if partial.message_digest != message_digest:
            return False
        return self.pki.is_valid_digest(partial.signature, message_digest)

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------
    def combine(
        self,
        partials: Sequence[PartialSignature],
        threshold: int,
        message: Any,
        message_digest: Optional[str] = None,
    ) -> ThresholdSignature:
        """Aggregate shares into a threshold signature.

        With ``batch_verify`` on (the default), the shares matching the
        message digest are verified through **one**
        :meth:`~repro.crypto.backend.CryptoBackend.verify_batch` call — the
        amortised verify-on-aggregate path, one digest dispatch per quorum
        instead of one per share.  Any share failing the batch (or its cheap
        pre-checks) drops the whole combine to the per-share loop, whose
        outcome is bit-identical to the historical behaviour: the fast path
        only ever accepts sets of shares the slow path would also accept.

        Raises :class:`ThresholdError` if there are fewer than ``threshold``
        *distinct valid* signers.
        """
        if threshold <= 0:
            raise ThresholdError(f"threshold must be positive, got {threshold}")
        if message_digest is None:
            message_digest = self.backend.digest(message)
        matching = [p for p in partials if p.message_digest == message_digest]
        valid_signers: set[int] = set()
        batched = False
        if self.batch_verify and matching:
            items = self.pki.batch_verify_items(
                [p.signature for p in matching], message_digest
            )
            if items is not None and self.backend.verify_batch(items):
                self.batched_combines += 1
                batched = True
                for partial in matching:
                    valid_signers.add(partial.signer)
            else:
                self.combine_fallbacks += 1
        if not batched:
            for partial in matching:
                if self.pki.is_valid_digest(partial.signature, message_digest):
                    valid_signers.add(partial.signer)
        if len(valid_signers) < threshold:
            raise ThresholdError(
                f"need {threshold} distinct valid shares, got {len(valid_signers)}"
            )
        signers = frozenset(valid_signers)
        # The signer set is digested as a frozenset: canonicalisation sorts
        # set elements, so the digest is deterministic, and the *same*
        # frozenset object travels inside the aggregate to every verifier —
        # its cached hash makes re-verification O(1) under the counting and
        # interned backends (a sorted list here forced an O(n) walk per
        # verification at every recipient).
        proof = self.backend.digest("threshold", message_digest, threshold, signers)
        if self._verified is not None:
            # Seed the verified cache with the freshly minted aggregate: the
            # scheme instance is shared by every replica of a run, so each
            # recipient's first verify of this certificate is already a
            # cache hit — the O(n) signer-set digest happens exactly once,
            # here.
            self._verified.add((proof, message_digest, threshold, signers))
        return ThresholdSignature(
            message_digest=message_digest,
            threshold=threshold,
            signers=signers,
            proof=proof,
        )

    def verify(
        self,
        aggregate: ThresholdSignature,
        message: Any,
        message_digest: Optional[str] = None,
    ) -> bool:
        """Verify an aggregated signature against ``message``.

        With the verified cache enabled (the default), re-verifying a
        certificate that already passed — every replica checks every QC as
        it arrives — costs one digest of the small ``message`` plus a set
        lookup, instead of re-digesting the O(n) signer set.  As with
        :meth:`verify_partial`, ``message_digest`` must be the caller's own
        digest of ``message``, never one read off the wire.
        """
        if message_digest is None:
            message_digest = self.backend.digest(message)
        if aggregate.message_digest != message_digest:
            return False
        verified = self._verified
        if verified is not None:
            key = (
                aggregate.proof,
                message_digest,
                aggregate.threshold,
                aggregate.signers,
            )
            if key in verified:
                self.verify_cache_hits += 1
                return True
        if aggregate.size < aggregate.threshold:
            return False
        if not self.pki.covers(aggregate.signers):
            return False
        expected = self.backend.digest(
            "threshold", message_digest, aggregate.threshold, aggregate.signers
        )
        if aggregate.proof != expected:
            return False
        if verified is not None:
            verified.add(key)
        return True

    def require_valid(self, aggregate: ThresholdSignature, message: Any) -> None:
        """Raise :class:`ThresholdError` unless ``aggregate`` verifies over ``message``."""
        if not self.verify(aggregate, message):
            raise ThresholdError("threshold signature failed verification")
