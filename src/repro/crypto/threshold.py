"""Simulated ``m``-of-``n`` threshold signatures.

The paper uses two thresholds: ``f+1`` (View Certificates, Timeout
Certificates) and ``2f+1`` (Quorum Certificates, Epoch Certificates).  A
:class:`ThresholdSignature` is O(kappa)-sized regardless of ``m`` and ``n``;
here we keep the signer set only so that tests and metrics can inspect who
contributed — the object still *counts* as a single constant-size message
component, matching the paper's complexity accounting.

All digest work flows through the scheme's
:class:`~repro.crypto.backend.CryptoBackend` (shared with the PKI), and the
message digest is hoisted out of the per-share loops: one ``combine`` or
``verify`` call canonicalises the message once, however many shares it
touches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Sequence

from repro.errors import ThresholdError
from repro.crypto.backend import CryptoBackend
from repro.crypto.signatures import PKI, Signature, SigningKey


@dataclass(frozen=True, slots=True)
class PartialSignature:
    """One processor's share towards a threshold signature on ``message_digest``."""

    signer: int
    message_digest: str
    signature: Signature

    def __repr__(self) -> str:
        return f"PartialSignature(signer={self.signer}, digest={self.message_digest[:8]}…)"


@dataclass(frozen=True, slots=True)
class ThresholdSignature:
    """An aggregated signature of at least ``threshold`` distinct processors."""

    message_digest: str
    threshold: int
    signers: frozenset[int]
    proof: str

    @property
    def size(self) -> int:
        """Number of distinct contributing signers."""
        return len(self.signers)

    def __repr__(self) -> str:
        return (
            f"ThresholdSignature(digest={self.message_digest[:8]}…, "
            f"threshold={self.threshold}, signers={sorted(self.signers)})"
        )


class ThresholdScheme:
    """Aggregation and verification of partial signatures.

    One scheme instance is shared by all processors (it holds only public
    material: the PKI).  Minting a partial share still requires the signer's
    private :class:`SigningKey`, so the unforgeability argument carries over
    from :mod:`repro.crypto.signatures`.

    Parameters
    ----------
    pki:
        The public-key infrastructure shares are verified against.
    backend:
        Digest backend; defaults to the PKI's own, which keeps the whole
        ceremony (keys, shares, aggregates) on one digest semantics.
    cache_verified:
        Whether :meth:`verify` remembers aggregates that already verified
        (default on).  The scheme instance is shared by every replica of a
        run, and each replica independently verifies the same certificate
        as it arrives, so without the cache the O(n) signer-set digest is
        recomputed n times per certificate — the dominant crypto cost of
        large-``n`` runs under the hashing backend.  A hit only requires
        digesting the (small) message; the cache key binds everything the
        proof recomputation would check (message digest, threshold, signer
        set, proof string), so a hit and a recomputation always agree.
        Disable it to measure the raw per-verification seam cost
        (``benchmarks/bench_scaling.py`` does for its pipeline
        microbenchmark).
    """

    def __init__(
        self,
        pki: PKI,
        backend: Optional[CryptoBackend] = None,
        cache_verified: bool = True,
    ) -> None:
        self.pki = pki
        self.backend = backend if backend is not None else pki.backend
        self._verified: Optional[set[tuple[str, str, int, frozenset[int]]]] = (
            set() if cache_verified else None
        )
        #: Number of :meth:`verify` calls served from the verified cache.
        self.verify_cache_hits = 0

    # ------------------------------------------------------------------
    # Shares
    # ------------------------------------------------------------------
    def partial_sign(self, key: SigningKey, message: Any) -> PartialSignature:
        """Create this signer's share over ``message``."""
        message_digest = self.backend.digest(message)
        signature = key.sign_digest(message_digest)
        return PartialSignature(
            signer=key.owner, message_digest=message_digest, signature=signature
        )

    def verify_partial(
        self,
        partial: PartialSignature,
        message: Any,
        message_digest: Optional[str] = None,
    ) -> bool:
        """Check one share against the PKI.

        ``message_digest`` lets loop-shaped callers (``combine``, the
        certificate collectors) canonicalise the message once; it must be
        the caller's own digest of ``message``, never one read off the wire.
        """
        if message_digest is None:
            message_digest = self.backend.digest(message)
        if partial.message_digest != message_digest:
            return False
        return self.pki.is_valid_digest(partial.signature, message_digest)

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------
    def combine(
        self,
        partials: Sequence[PartialSignature],
        threshold: int,
        message: Any,
    ) -> ThresholdSignature:
        """Aggregate shares into a threshold signature.

        Raises :class:`ThresholdError` if there are fewer than ``threshold``
        *distinct valid* signers.
        """
        if threshold <= 0:
            raise ThresholdError(f"threshold must be positive, got {threshold}")
        message_digest = self.backend.digest(message)
        valid_signers: set[int] = set()
        for partial in partials:
            if partial.message_digest != message_digest:
                continue
            if not self.verify_partial(partial, message, message_digest=message_digest):
                continue
            valid_signers.add(partial.signer)
        if len(valid_signers) < threshold:
            raise ThresholdError(
                f"need {threshold} distinct valid shares, got {len(valid_signers)}"
            )
        signers = frozenset(valid_signers)
        # The signer set is digested as a frozenset: canonicalisation sorts
        # set elements, so the digest is deterministic, and the *same*
        # frozenset object travels inside the aggregate to every verifier —
        # its cached hash makes re-verification O(1) under the counting and
        # interned backends (a sorted list here forced an O(n) walk per
        # verification at every recipient).
        proof = self.backend.digest("threshold", message_digest, threshold, signers)
        return ThresholdSignature(
            message_digest=message_digest,
            threshold=threshold,
            signers=signers,
            proof=proof,
        )

    def verify(self, aggregate: ThresholdSignature, message: Any) -> bool:
        """Verify an aggregated signature against ``message``.

        With the verified cache enabled (the default), re-verifying a
        certificate that already passed — every replica checks every QC as
        it arrives — costs one digest of the small ``message`` plus a set
        lookup, instead of re-digesting the O(n) signer set.
        """
        message_digest = self.backend.digest(message)
        if aggregate.message_digest != message_digest:
            return False
        verified = self._verified
        if verified is not None:
            key = (
                aggregate.proof,
                message_digest,
                aggregate.threshold,
                aggregate.signers,
            )
            if key in verified:
                self.verify_cache_hits += 1
                return True
        if aggregate.size < aggregate.threshold:
            return False
        if not self.pki.covers(aggregate.signers):
            return False
        expected = self.backend.digest(
            "threshold", message_digest, aggregate.threshold, aggregate.signers
        )
        if aggregate.proof != expected:
            return False
        if verified is not None:
            verified.add(key)
        return True

    def require_valid(self, aggregate: ThresholdSignature, message: Any) -> None:
        """Raise :class:`ThresholdError` unless ``aggregate`` verifies over ``message``."""
        if not self.verify(aggregate, message):
            raise ThresholdError("threshold signature failed verification")
