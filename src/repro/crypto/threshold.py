"""Simulated ``m``-of-``n`` threshold signatures.

The paper uses two thresholds: ``f+1`` (View Certificates, Timeout
Certificates) and ``2f+1`` (Quorum Certificates, Epoch Certificates).  A
:class:`ThresholdSignature` is O(kappa)-sized regardless of ``m`` and ``n``;
here we keep the signer set only so that tests and metrics can inspect who
contributed — the object still *counts* as a single constant-size message
component, matching the paper's complexity accounting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Sequence

from repro.errors import ThresholdError
from repro.crypto.hashing import digest
from repro.crypto.signatures import PKI, Signature, SigningKey


@dataclass(frozen=True)
class PartialSignature:
    """One processor's share towards a threshold signature on ``message_digest``."""

    signer: int
    message_digest: str
    signature: Signature

    def __repr__(self) -> str:
        return f"PartialSignature(signer={self.signer}, digest={self.message_digest[:8]}…)"


@dataclass(frozen=True)
class ThresholdSignature:
    """An aggregated signature of at least ``threshold`` distinct processors."""

    message_digest: str
    threshold: int
    signers: frozenset[int]
    proof: str

    @property
    def size(self) -> int:
        """Number of distinct contributing signers."""
        return len(self.signers)

    def __repr__(self) -> str:
        return (
            f"ThresholdSignature(digest={self.message_digest[:8]}…, "
            f"threshold={self.threshold}, signers={sorted(self.signers)})"
        )


class ThresholdScheme:
    """Aggregation and verification of partial signatures.

    One scheme instance is shared by all processors (it holds only public
    material: the PKI).  Minting a partial share still requires the signer's
    private :class:`SigningKey`, so the unforgeability argument carries over
    from :mod:`repro.crypto.signatures`.
    """

    def __init__(self, pki: PKI) -> None:
        self.pki = pki

    # ------------------------------------------------------------------
    # Shares
    # ------------------------------------------------------------------
    def partial_sign(self, key: SigningKey, message: Any) -> PartialSignature:
        """Create this signer's share over ``message``."""
        message_digest = digest(message)
        signature = key.sign(message)
        return PartialSignature(
            signer=key.owner, message_digest=message_digest, signature=signature
        )

    def verify_partial(self, partial: PartialSignature, message: Any) -> bool:
        """Check one share against the PKI."""
        if partial.message_digest != digest(message):
            return False
        return self.pki.is_valid(partial.signature, message)

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------
    def combine(
        self,
        partials: Sequence[PartialSignature],
        threshold: int,
        message: Any,
    ) -> ThresholdSignature:
        """Aggregate shares into a threshold signature.

        Raises :class:`ThresholdError` if there are fewer than ``threshold``
        *distinct valid* signers.
        """
        if threshold <= 0:
            raise ThresholdError(f"threshold must be positive, got {threshold}")
        message_digest = digest(message)
        valid_signers: set[int] = set()
        for partial in partials:
            if partial.message_digest != message_digest:
                continue
            if not self.verify_partial(partial, message):
                continue
            valid_signers.add(partial.signer)
        if len(valid_signers) < threshold:
            raise ThresholdError(
                f"need {threshold} distinct valid shares, got {len(valid_signers)}"
            )
        signers = frozenset(valid_signers)
        proof = digest("threshold", message_digest, threshold, sorted(signers))
        return ThresholdSignature(
            message_digest=message_digest,
            threshold=threshold,
            signers=signers,
            proof=proof,
        )

    def verify(self, aggregate: ThresholdSignature, message: Any) -> bool:
        """Verify an aggregated signature against ``message``."""
        message_digest = digest(message)
        if aggregate.message_digest != message_digest:
            return False
        if aggregate.size < aggregate.threshold:
            return False
        if not set(aggregate.signers) <= set(self.pki.processor_ids):
            return False
        expected = digest("threshold", message_digest, aggregate.threshold, sorted(aggregate.signers))
        return aggregate.proof == expected

    def require_valid(self, aggregate: ThresholdSignature, message: Any) -> None:
        """Raise :class:`ThresholdError` unless ``aggregate`` verifies over ``message``."""
        if not self.verify(aggregate, message):
            raise ThresholdError("threshold signature failed verification")
