"""The picklable outcome of one campaign cell.

A :class:`RunRecord` is everything a campaign keeps from a finished
:func:`~repro.experiments.scenario.run_scenario` call: the swept parameter
values, the Table-1 :class:`~repro.metrics.summary.ComplexitySummary`, the
derived :class:`~repro.metrics.summary.RunMetrics` time-series, and a few
safety/accounting scalars.  It contains no live objects — no simulator,
replicas or traces — so it crosses process-pool boundaries cheaply and
round-trips through JSON for the on-disk result cache.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Mapping

from repro.metrics.summary import ComplexitySummary, RunMetrics


@dataclass(frozen=True)
class RunRecord:
    """One executed (or cache-recovered) campaign cell."""

    #: Stable human-readable id: ``campaign-name[field=value,...]``.
    run_id: str
    #: Content hash of the expanded configuration + code version (cache key).
    key: str
    #: The parameter point this cell was expanded from (swept + fixed values).
    params: dict[str, Any]
    #: The four Table-1 measures at the standard warm-up.
    summary: ComplexitySummary
    #: Derived time-series supporting arbitrary warm-up cutoffs.
    metrics: RunMetrics
    #: Length of the longest honest ledger at the end of the run.
    committed_blocks: int
    #: Highest view any honest replica entered.
    max_honest_view: int
    #: Safety check: honest ledgers pairwise prefix-consistent.
    ledgers_consistent: bool
    #: Simulator events executed during the run.
    events_processed: int
    #: Wall-clock seconds spent inside ``run_scenario``.  Cached records keep
    #: the wall time of the execution that originally produced them.
    wall_time: float
    #: Whether this record was recovered from the result cache.
    cached: bool = False

    @property
    def decisions(self) -> int:
        """Honest-leader decisions over the whole run."""
        return len(self.metrics.decision_times)

    # ------------------------------------------------------------------
    # JSON round trip (used by the on-disk result cache)
    # ------------------------------------------------------------------
    def to_json_dict(self) -> dict[str, Any]:
        """A JSON-serializable dict capturing the full record."""
        return {
            "run_id": self.run_id,
            "key": self.key,
            "params": self.params,
            "summary": dataclasses.asdict(self.summary),
            "metrics": {
                "decision_times": list(self.metrics.decision_times),
                "gap_message_counts": list(self.metrics.gap_message_counts),
                "epoch_sync_events": [list(pair) for pair in self.metrics.epoch_sync_events],
                "total_honest_messages": self.metrics.total_honest_messages,
                "fault_counts": [list(pair) for pair in self.metrics.fault_counts],
            },
            "committed_blocks": self.committed_blocks,
            "max_honest_view": self.max_honest_view,
            "ledgers_consistent": self.ledgers_consistent,
            "events_processed": self.events_processed,
            "wall_time": self.wall_time,
        }

    @classmethod
    def from_json_dict(cls, data: Mapping[str, Any]) -> "RunRecord":
        """Rebuild a record previously produced by :meth:`to_json_dict`."""
        metrics_data = data["metrics"]
        return cls(
            run_id=data["run_id"],
            key=data["key"],
            params=dict(data["params"]),
            summary=ComplexitySummary(**data["summary"]),
            metrics=RunMetrics(
                decision_times=tuple(metrics_data["decision_times"]),
                gap_message_counts=tuple(metrics_data["gap_message_counts"]),
                epoch_sync_events=tuple(
                    (time, epoch) for time, epoch in metrics_data["epoch_sync_events"]
                ),
                total_honest_messages=metrics_data["total_honest_messages"],
                # Absent in records cached before the chaos layer existed.
                fault_counts=tuple(
                    (name, count)
                    for name, count in metrics_data.get("fault_counts", ())
                ),
            ),
            committed_blocks=data["committed_blocks"],
            max_honest_view=data["max_honest_view"],
            ledgers_consistent=data["ledgers_consistent"],
            events_processed=data["events_processed"],
            wall_time=data["wall_time"],
            cached=True,
        )

    def rebound(self, run_id: str, params: dict[str, Any]) -> "RunRecord":
        """A copy bound to another campaign cell with the same content key."""
        return dataclasses.replace(self, run_id=run_id, params=params)
