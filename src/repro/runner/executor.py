"""Campaign execution backends.

Two backends run the expanded cells of a :class:`~repro.runner.campaign.Campaign`:

* ``"serial"`` — in-process, in expansion order.  Deterministic and
  debugger-friendly; the default for tests.
* ``"process"`` — a ``concurrent.futures.ProcessPoolExecutor``.  Each worker
  re-builds the scenario from ``(build, params)`` and returns a picklable
  :class:`~repro.runner.record.RunRecord`, so nothing unpicklable (replicas,
  traces, closure-based delay models) ever crosses the pool boundary.
* ``"live"`` — the asyncio runtime under a deterministic virtual clock
  (:mod:`repro.runner.live`): the same cells execute on the live protocol
  stack (``LocalTransport``) instead of the simulator.  Live cache keys are
  salted with a ``live:`` prefix so live and simulated records of the same
  parameter point never collide in a shared cache.

Because every simulation is seeded from its config alone, the serial and
process backends produce identical records for the same campaign — a
property the test suite asserts byte-for-byte.
"""

from __future__ import annotations

import concurrent.futures
import time
from dataclasses import dataclass, field
from typing import Any, Optional, Union

from repro.errors import ConfigurationError
from repro.experiments.scenario import ScenarioConfig, run_scenario
from repro.runner.cache import ResultCache
from repro.runner.campaign import Campaign, ConfigBuilder, RunSpec
from repro.runner.record import RunRecord

#: Names accepted by the ``backend`` argument.
BACKENDS = ("serial", "process", "live")


def execute_cell(
    build: ConfigBuilder,
    params: dict[str, Any],
    run_id: str,
    key: str,
    max_events: Optional[int] = None,
    config: Optional["ScenarioConfig"] = None,
) -> RunRecord:
    """Run one campaign cell and reduce it to its picklable record.

    This is the function process-pool workers execute; everything it needs
    (a module-level builder, plain parameter values) and everything it
    returns are picklable by construction.  In-process callers that already
    expanded the campaign may pass the prebuilt ``config`` to skip the
    rebuild; workers always rebuild from ``(build, params)`` because the
    config itself may not be picklable.
    """
    if config is None:
        config = build(params)
    started = time.perf_counter()
    result = run_scenario(config, max_events=max_events)
    wall_time = time.perf_counter() - started
    return RunRecord(
        run_id=run_id,
        key=key,
        params=params,
        summary=result.summary(),
        metrics=result.run_metrics(),
        committed_blocks=result.committed_blocks(),
        max_honest_view=result.max_honest_view(),
        ledgers_consistent=result.ledgers_are_consistent(),
        events_processed=result.simulator.events_processed,
        wall_time=wall_time,
    )


@dataclass
class CampaignResult:
    """All records of one campaign execution, in expansion order."""

    campaign: str
    backend: str
    records: list[RunRecord] = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0
    wall_time: float = 0.0

    def __iter__(self):
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)

    def select(self, **params: Any) -> list[RunRecord]:
        """Records whose parameter point matches every given ``field=value``."""
        return [
            record
            for record in self.records
            if all(record.params.get(name) == value for name, value in params.items())
        ]

    def one(self, **params: Any) -> RunRecord:
        """The single record matching ``params`` (raises if not exactly one)."""
        matches = self.select(**params)
        if len(matches) != 1:
            raise KeyError(
                f"expected exactly one record for {params!r}, found {len(matches)}"
            )
        return matches[0]

    def describe(self) -> str:
        """One-line execution report."""
        return (
            f"campaign {self.campaign!r}: {len(self.records)} runs via {self.backend} "
            f"({self.cache_hits} cached, {self.cache_misses} executed) "
            f"in {self.wall_time:.2f}s"
        )


def _resolve_cache(cache: Union[ResultCache, str, None]) -> Optional[ResultCache]:
    if cache is None or isinstance(cache, ResultCache):
        return cache
    return ResultCache(cache)


def run_campaign(
    campaign: Campaign,
    backend: str = "serial",
    workers: Optional[int] = None,
    cache: Union[ResultCache, str, None] = None,
    live_executor: Optional[Any] = None,
) -> CampaignResult:
    """Execute ``campaign`` on the chosen backend, consulting ``cache`` first.

    Cache hits are rebound to the current cell's run id and parameters (keys
    are content hashes, so the same configuration reached from a different
    campaign name still hits).  Only missing cells are executed; fresh
    records are written back to the cache as they complete.

    ``live_executor`` customises the ``"live"`` backend (e.g.
    ``LiveExecutor(jitter=0.05)``); it is rejected for the simulated
    backends so a configured-but-unused executor cannot pass silently.
    """
    if backend not in BACKENDS:
        raise ConfigurationError(
            f"unknown campaign backend {backend!r}; expected one of {BACKENDS}"
        )
    if live_executor is not None and backend != "live":
        raise ConfigurationError(
            f"live_executor is only meaningful with backend='live', got {backend!r}"
        )
    if workers is not None and backend == "live":
        raise ConfigurationError(
            "the live backend runs cells serially on one event loop; "
            "workers is only meaningful with backend='process'"
        )

    # Live records describe a different execution substrate than simulated
    # ones, so their cache identity is salted with the executor's prefix
    # (which also folds in its jitter): the same parameter point under
    # "serial"/"process" and under differently configured live executors
    # occupies distinct cache entries.
    executor = None
    key_prefix = ""
    if backend == "live":
        # Lazy import: the live module pulls the asyncio runtime stack,
        # which simulated campaigns never need.
        from repro.runner.live import LiveExecutor

        executor = live_executor if live_executor is not None else LiveExecutor()
        key_prefix = executor.cache_salt

    store = _resolve_cache(cache)
    started = time.perf_counter()
    specs = campaign.expand()
    result = CampaignResult(campaign=campaign.name, backend=backend)

    slots: list[Optional[RunRecord]] = [None] * len(specs)
    todo: list[tuple[int, RunSpec]] = []
    for index, spec in enumerate(specs):
        cell_key = key_prefix + spec.key
        hit = store.get(cell_key) if store is not None else None
        if hit is not None:
            slots[index] = hit.rebound(spec.run_id, spec.params)
            result.cache_hits += 1
        else:
            todo.append((index, spec))
    result.cache_misses = len(todo)

    # Records are written back to the cache as they complete (not after the
    # whole campaign), so an interrupted campaign keeps its finished cells.
    def finish(index: int, record: RunRecord) -> None:
        slots[index] = record
        if store is not None:
            store.put(record)

    # The process backend is used even for a single missing cell: falling
    # back to in-process execution would mask pickling errors (and mislabel
    # the result) until the first cold-cache run on another machine.
    if backend == "live":
        for index, spec in todo:
            finish(
                index,
                executor(
                    campaign.build,
                    spec.params,
                    spec.run_id,
                    key_prefix + spec.key,
                    campaign.max_events,
                    config=spec.config,
                ),
            )
    elif backend == "serial" or not todo:
        for index, spec in todo:
            finish(
                index,
                execute_cell(
                    campaign.build,
                    spec.params,
                    spec.run_id,
                    spec.key,
                    campaign.max_events,
                    config=spec.config,
                ),
            )
    else:
        with concurrent.futures.ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {
                pool.submit(
                    execute_cell,
                    campaign.build,
                    spec.params,
                    spec.run_id,
                    spec.key,
                    campaign.max_events,
                ): index
                for index, spec in todo
            }
            # Drain every future even after a failure, so completed sibling
            # cells are still recorded (and cached) before the error
            # propagates; unstarted cells are cancelled rather than run for
            # a result nobody will consume.
            first_error: Optional[BaseException] = None
            for future in concurrent.futures.as_completed(futures):
                try:
                    record = future.result()
                except concurrent.futures.CancelledError:
                    continue
                except BaseException as exc:
                    if first_error is None:
                        first_error = exc
                        for pending in futures:
                            pending.cancel()
                    continue
                finish(futures[future], record)
            if first_error is not None:
                raise first_error

    result.records = [record for record in slots if record is not None]
    if len(result.records) != len(specs):  # pragma: no cover - defensive
        raise ConfigurationError("campaign execution lost records; this is a bug")
    result.wall_time = time.perf_counter() - started
    return result
