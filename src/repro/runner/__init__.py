"""Unified campaign runner: declarative sweeps over the scenario harness.

:func:`~repro.experiments.scenario.run_scenario` is the single *low-level*
entry point of the reproduction — one config, one run, live result.
:meth:`Campaign.run` is the single *high-level* one: a declarative cartesian
grid of scenarios, executed serially or on a process pool, with an optional
content-addressed on-disk cache so repeated campaigns only pay for missing
cells.

Typical use::

    from repro.runner import Campaign, Sweep

    campaign = Campaign(
        name="my-sweep",
        build=my_module.build_config,          # module-level: params -> ScenarioConfig
        sweeps=(Sweep("pacemaker", ("lumiere", "lp22")), Sweep("seed", range(3))),
        fixed={"n": 7, "duration": 600.0},
    )
    result = campaign.run(backend="process", cache=".repro-cache")
    for record in result:
        print(record.run_id, record.summary.eventual_latency)

The same grid can execute on the *live* protocol stack (asyncio runtime,
in-memory transport, deterministic virtual clock) with
``campaign.run(backend="live")``; see :mod:`repro.runner.live` for the
live scenario API (``run_live_scenario``, ``TcpCluster``).
"""

from repro.runner.cache import DEFAULT_CACHE_DIR, ResultCache
from repro.runner.campaign import Campaign, RunSpec, Sweep, config_fingerprint, spec_key
from repro.runner.executor import BACKENDS, CampaignResult, execute_cell, run_campaign
from repro.runner.record import RunRecord
from repro.runner.workload import (
    ClosedLoopLoad,
    OpenLoopLoad,
    RequestGateway,
    WorkloadConfig,
    attach_workload,
    kv_apply_chains,
    kv_state_digests,
)

#: Names resolved lazily from repro.runner.live (PEP 562): the live module
#: pulls the whole asyncio runtime stack, which simulated campaigns never
#: need — importing the package root must stay as cheap as it was.
_LIVE_EXPORTS = frozenset(
    {
        "LiveExecutor",
        "LiveRunResult",
        "TcpCluster",
        "build_live_scenario",
        "execute_live_cell",
        "make_live_cluster",
        "run_live_scenario",
        "run_live_scenario_async",
        "run_process_scenario",
        "run_process_scenario_async",
    }
)

#: Likewise for the multi-process cluster (it additionally pulls
#: multiprocessing machinery nothing else needs).
_PROCESS_EXPORTS = frozenset({"ProcessCluster", "ShardReport"})


def __getattr__(name: str):
    if name in _LIVE_EXPORTS or name in _PROCESS_EXPORTS:
        import importlib

        module = "live" if name in _LIVE_EXPORTS else "process_cluster"
        value = getattr(importlib.import_module(f"repro.runner.{module}"), name)
        globals()[name] = value  # cache: __getattr__ runs once per name
        return value
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "BACKENDS",
    "Campaign",
    "CampaignResult",
    "ClosedLoopLoad",
    "DEFAULT_CACHE_DIR",
    "LiveExecutor",
    "LiveRunResult",
    "OpenLoopLoad",
    "ProcessCluster",
    "RequestGateway",
    "ResultCache",
    "RunRecord",
    "RunSpec",
    "ShardReport",
    "Sweep",
    "TcpCluster",
    "WorkloadConfig",
    "attach_workload",
    "build_live_scenario",
    "config_fingerprint",
    "execute_cell",
    "execute_live_cell",
    "kv_apply_chains",
    "kv_state_digests",
    "make_live_cluster",
    "run_campaign",
    "run_live_scenario",
    "run_live_scenario_async",
    "run_process_scenario",
    "run_process_scenario_async",
    "spec_key",
]
