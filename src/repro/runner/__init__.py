"""Unified campaign runner: declarative sweeps over the scenario harness.

:func:`~repro.experiments.scenario.run_scenario` is the single *low-level*
entry point of the reproduction — one config, one run, live result.
:meth:`Campaign.run` is the single *high-level* one: a declarative cartesian
grid of scenarios, executed serially or on a process pool, with an optional
content-addressed on-disk cache so repeated campaigns only pay for missing
cells.

Typical use::

    from repro.runner import Campaign, Sweep

    campaign = Campaign(
        name="my-sweep",
        build=my_module.build_config,          # module-level: params -> ScenarioConfig
        sweeps=(Sweep("pacemaker", ("lumiere", "lp22")), Sweep("seed", range(3))),
        fixed={"n": 7, "duration": 600.0},
    )
    result = campaign.run(backend="process", cache=".repro-cache")
    for record in result:
        print(record.run_id, record.summary.eventual_latency)
"""

from repro.runner.cache import DEFAULT_CACHE_DIR, ResultCache
from repro.runner.campaign import Campaign, RunSpec, Sweep, config_fingerprint, spec_key
from repro.runner.executor import BACKENDS, CampaignResult, execute_cell, run_campaign
from repro.runner.record import RunRecord

__all__ = [
    "BACKENDS",
    "Campaign",
    "CampaignResult",
    "DEFAULT_CACHE_DIR",
    "ResultCache",
    "RunRecord",
    "RunSpec",
    "Sweep",
    "config_fingerprint",
    "execute_cell",
    "run_campaign",
    "spec_key",
]
