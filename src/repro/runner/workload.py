"""Client load generators and the request gateway.

This module turns a cluster of replicas into a system that serves
traffic: a picklable :class:`WorkloadConfig` rides on
``ScenarioConfig.workload`` through every execution lane (sim, in-memory
live, TCP, multi-process), and :func:`attach_workload` wires each replica
with

* a :class:`~repro.statemachine.kvstore.ReplicatedKV` applying committed
  blocks (every replica, client-hosting or not), and
* on the client-hosting replicas, a :class:`RequestGateway` plus an open-
  or closed-loop load generator.

**Clients are co-located** with replicas rather than registered as extra
network processes: ``Runtime.broadcast`` targets every registered pid, so
standalone client processes would receive (and distort the accounting of)
all consensus traffic.  A generator is therefore plain timer-driven state
on its replica, submitting into the local gateway.

The gateway implements adaptive batching: submissions buffer until either
``forward_batch`` commands are waiting (size trigger) or
``forward_deadline`` elapses after the first buffered command (latency
trigger); the flush encodes the buffer **once** into a
:class:`~repro.statemachine.messages.CommandBatch` blob and hands it to
the local mempool when this replica leads the current view, else forwards
it to the believed leader.  A periodic retry timer re-encodes still
outstanding commands and re-offers them to the *current* leader — that is
what re-proposes commands across failed views, crashed leaders and
dropped forwards, and why the state machine's exactly-once filter earns
its keep.  Backpressure is two-level and bounded at both: a gateway
refuses new submissions past ``max_pending`` outstanding, and a full
mempool refuses forwarded batches (the retry re-offers them later).

Everything here is deterministic by construction — keys, values and ops
are derived from ``(client, seq)``, timers fire on a fixed grid, and no
randomness is consumed — so a simulated run and a zero-jitter
virtual-clock live run produce identical ledgers *and* identical KV
state, which ``bench_throughput.py`` gates on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.consensus.mempool import Mempool
from repro.statemachine.commands import OP_DELETE, OP_PUT, Command, encode_commands
from repro.statemachine.kvstore import ReplicatedKV
from repro.statemachine.messages import CommandBatch, CommandForward


@dataclass(frozen=True)
class WorkloadConfig:
    """Declarative client workload, picklable across process boundaries.

    ``mode`` selects the generator: ``"open"`` submits at a fixed offered
    rate regardless of completions (the overload-probing shape);
    ``"closed"`` keeps ``clients`` requests in flight per replica, each
    client submitting its next command ``think_time`` after the previous
    one applied (the latency-probing shape).
    """

    mode: str = "open"
    #: Open loop: offered commands/sec per client-hosting replica.
    rate: float = 50.0
    #: Client streams per hosting replica (closed loop: concurrent clients).
    clients: int = 2
    #: Closed loop: seconds between a completion and the next submission.
    think_time: float = 0.0
    #: Submission window, relative to replica start.
    start: float = 0.0
    stop: Optional[float] = None
    #: Keys per client stream (cycled by sequence number).
    key_space: int = 64
    #: Share one key range across clients instead of per-client ranges.
    #: (Per-client ranges keep the end state order-independent.)
    shared_keys: bool = False
    #: Size trigger: flush the gateway buffer at this many commands.
    forward_batch: int = 8
    #: Deadline trigger: flush this many seconds after the first buffered
    #: command even if the size trigger never fires.
    forward_deadline: float = 0.05
    #: Re-offer outstanding commands to the current leader this often.
    #: Keep it comfortably above the typical commit latency — a retry that
    #: races a commit is correct (the exactly-once filter eats it) but
    #: wastes payload bytes on duplicates.
    retry_interval: float = 5.0
    #: Gateway bound: refuse submissions past this many outstanding.
    max_pending: int = 2048
    #: Mempool bounds (commands per proposal / queued before refusing).
    max_batch: int = 256
    max_mempool: int = 4096
    #: Replicas that host client generators (``None`` = all replicas).
    client_pids: Optional[tuple[int, ...]] = None

    def hosts_clients(self, pid: int, n: int) -> bool:
        """Whether the replica ``pid`` of an ``n``-cluster runs generators."""
        if self.client_pids is not None:
            return pid in self.client_pids
        return pid < n


def make_command(
    workload: WorkloadConfig, client: int, seq: int
) -> Command:
    """The deterministic command of stream ``client`` at position ``seq``.

    Mostly puts with a sprinkling of deletes; key and value are pure
    functions of ``(client, seq)`` so every run offers the identical
    command sequence — the chaos-vs-fault-free state equality the
    exactly-once test asserts depends on it.
    """
    op = OP_DELETE if seq % 16 == 15 else OP_PUT
    if workload.shared_keys:
        key = f"k{(client * 7 + seq * 13) % workload.key_space}"
    else:
        key = f"c{client}:{seq % workload.key_space}"
    return Command(client, seq, op, key, f"v{client}:{seq}")


class RequestGateway:
    """Per-replica client ingress: buffer, batch, forward, retry, complete.

    Owns the outstanding-request table keyed ``(client, seq)``; the state
    machine's ``on_apply`` callback completes entries and records
    end-to-end latency into the replica's
    :class:`~repro.metrics.collector.MetricsCollector`.
    """

    def __init__(self, replica, workload: WorkloadConfig) -> None:
        self.replica = replica
        self.workload = workload
        self.metrics = replica.metrics
        self._buffer: list[Command] = []
        self._deadline_timer = None
        # (client, seq) -> (command, submit_time); insertion = submission
        # order, so retries re-offer in the original per-client order.
        self._outstanding: dict[tuple[int, int], tuple[Command, float]] = {}
        #: Completion callback for closed-loop generators.
        self.on_complete = None

    @property
    def outstanding(self) -> int:
        """Requests submitted but not yet applied."""
        return len(self._outstanding)

    def submit(self, command: Command) -> bool:
        """Accept one client command; ``False`` = backpressure, try later."""
        if self.replica.crashed:
            return False
        if len(self._outstanding) >= self.workload.max_pending:
            self.metrics.record_request_rejected(self.replica.pid)
            return False
        self.metrics.record_request_submitted(self.replica.pid)
        self._outstanding[(command.client, command.seq)] = (
            command,
            self.replica.now,
        )
        self._buffer.append(command)
        if len(self._buffer) >= self.workload.forward_batch:
            self.flush()
        elif self._deadline_timer is None:
            self._deadline_timer = self.replica.runtime.set_timer(
                self.workload.forward_deadline, self._deadline_flush
            )
        return True

    def _deadline_flush(self) -> None:
        self._deadline_timer = None
        self.flush()

    def flush(self) -> None:
        """Encode the buffer once and offer it toward the current leader."""
        if self._deadline_timer is not None:
            self._deadline_timer.cancel()
            self._deadline_timer = None
        if not self._buffer:
            return
        batch = CommandBatch(
            count=len(self._buffer), data=encode_commands(self._buffer)
        )
        self._buffer.clear()
        self._dispatch(batch)

    def _dispatch(self, batch: CommandBatch) -> None:
        replica = self.replica
        leader = replica.leader_of(replica.current_view)
        if leader == replica.pid:
            replica.mempool.ingest(batch)
        else:
            replica.send(leader, CommandForward(batch=batch))

    def retry_outstanding(self) -> None:
        """Re-offer every outstanding command to the *current* leader.

        This is the re-proposal path across failed views: forwards lost to
        drops or a crashed leader come back here until the command applies.
        """
        self.flush()
        if not self._outstanding:
            return
        commands = [entry[0] for entry in self._outstanding.values()]
        size = self.workload.forward_batch
        for lo in range(0, len(commands), size):
            chunk = commands[lo : lo + size]
            self._dispatch(
                CommandBatch(count=len(chunk), data=encode_commands(chunk))
            )

    def on_applied(self, command: Command, time: float) -> None:
        """State-machine callback: complete the request if it is ours."""
        entry = self._outstanding.pop((command.client, command.seq), None)
        if entry is None:
            return  # another replica's client, or a late duplicate
        self.metrics.record_request_applied(self.replica.pid, entry[1], time)
        if self.on_complete is not None:
            self.on_complete(command)


class OpenLoopLoad:
    """Offered-rate generator: submits on a fixed time grid, rain or shine.

    ``rate`` commands/sec per hosting replica, round-robin over
    ``clients`` independent streams.  A refused submission never slows the
    grid — the stream simply re-offers the same identity at its next tick
    (the refusal is counted), which is what makes it the overload probe.
    """

    def __init__(
        self, replica, gateway: RequestGateway, workload: WorkloadConfig
    ) -> None:
        self.replica = replica
        self.gateway = gateway
        self.workload = workload
        n = replica.config.n
        self._client_ids = [
            replica.pid + n * k for k in range(workload.clients)
        ]
        self._seqs = [0] * workload.clients
        self._stream = 0
        self._tick = 0
        self._origin = 0.0
        self._interval = 1.0 / workload.rate

    def start(self) -> None:
        self._origin = self.replica.now + self.workload.start
        self.replica.runtime.set_timer_at(self._origin, self._submit_tick)
        self.replica.runtime.set_timer_at(
            self._origin + self.workload.retry_interval, self._retry_tick
        )

    def _within_window(self, time: float) -> bool:
        stop = self.workload.stop
        return stop is None or time < self._origin - self.workload.start + stop

    def _submit_tick(self) -> None:
        now = self.replica.now
        if not self._within_window(now):
            return
        stream = self._stream
        self._stream = (stream + 1) % len(self._client_ids)
        command = make_command(
            self.workload, self._client_ids[stream], self._seqs[stream]
        )
        if self.gateway.submit(command):
            self._seqs[stream] += 1
        self._tick += 1
        # Fixed grid (not now + interval): no drift, and identical firing
        # times under sim and virtual-clock live runs.
        self.replica.runtime.set_timer_at(
            self._origin + self._tick * self._interval, self._submit_tick
        )

    def _retry_tick(self) -> None:
        self.gateway.retry_outstanding()
        if self.gateway.outstanding or self._within_window(self.replica.now):
            self.replica.runtime.set_timer(
                self.workload.retry_interval, self._retry_tick
            )


class ClosedLoopLoad:
    """Fixed-concurrency generator: each client waits for its previous
    command to apply (plus ``think_time``) before submitting the next."""

    def __init__(
        self, replica, gateway: RequestGateway, workload: WorkloadConfig
    ) -> None:
        self.replica = replica
        self.gateway = gateway
        self.workload = workload
        gateway.on_complete = self._on_complete
        n = replica.config.n
        self._clients = {
            replica.pid + n * k: 0 for k in range(workload.clients)
        }
        self._origin = 0.0

    def start(self) -> None:
        self._origin = self.replica.now + self.workload.start
        for client in self._clients:
            self.replica.runtime.set_timer_at(
                self._origin, self._submit_next, client
            )
        self.replica.runtime.set_timer_at(
            self._origin + self.workload.retry_interval, self._retry_tick
        )

    def _within_window(self, time: float) -> bool:
        stop = self.workload.stop
        return stop is None or time < self._origin - self.workload.start + stop

    def _submit_next(self, client: int) -> None:
        if not self._within_window(self.replica.now):
            return
        seq = self._clients[client]
        command = make_command(self.workload, client, seq)
        if self.gateway.submit(command):
            self._clients[client] = seq + 1
        else:
            # Closed-loop sources back off on refusal instead of dropping.
            self.replica.runtime.set_timer(
                self.workload.retry_interval, self._submit_next, client
            )

    def _on_complete(self, command: Command) -> None:
        if command.client not in self._clients:
            return
        if self.workload.think_time > 0.0:
            self.replica.runtime.set_timer(
                self.workload.think_time, self._submit_next, command.client
            )
        else:
            self.replica.runtime.spawn(self._submit_next, command.client)

    def _retry_tick(self) -> None:
        self.gateway.retry_outstanding()
        if self.gateway.outstanding or self._within_window(self.replica.now):
            self.replica.runtime.set_timer(
                self.workload.retry_interval, self._retry_tick
            )


_LOADS = {"open": OpenLoopLoad, "closed": ClosedLoopLoad}


def attach_workload(replica, workload: WorkloadConfig) -> None:
    """Wire one replica for the client workload (no-op if ``workload`` is None).

    Called from every builder that constructs replicas — ``build_scenario``
    (sim), ``_make_replica`` (in-memory live, TCP, and the spawned workers
    of a multi-process cluster) — so all four execution lanes run the same
    client path.  Every replica gets the state machine; only the replicas
    ``workload.client_pids`` selects also get a gateway and generator.
    """
    if workload is None:
        return
    replica.mempool = Mempool(
        replica.pid,
        batch_size=replica.mempool.batch_size,
        max_batch=workload.max_batch,
        max_pending=workload.max_mempool,
    )
    state_machine = ReplicatedKV()
    replica.state_machine = state_machine
    if not workload.hosts_clients(replica.pid, replica.config.n):
        return
    gateway = RequestGateway(replica, workload)
    state_machine.on_apply = gateway.on_applied
    load_factory = _LOADS.get(workload.mode)
    if load_factory is None:
        raise ValueError(
            f"unknown workload mode {workload.mode!r} (expected 'open' or 'closed')"
        )
    replica.clients = load_factory(replica, gateway, workload)
    replica.gateway = gateway


def kv_state_digests(replicas) -> dict[int, str]:
    """Per-replica KV state digests (replicas without a state machine skipped)."""
    return {
        replica.pid: replica.state_machine.digest()
        for replica in replicas
        if getattr(replica, "state_machine", None) is not None
    }


def kv_apply_chains(replicas) -> dict[int, tuple[str, ...]]:
    """Per-replica apply chains, for prefix-consistency checks."""
    return {
        replica.pid: replica.state_machine.apply_chain
        for replica in replicas
        if getattr(replica, "state_machine", None) is not None
    }
