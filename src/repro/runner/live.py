"""Live scenario execution: the campaign layer over the asyncio runtime.

Mirrors :mod:`repro.experiments.scenario` for runs that execute on an
:class:`~repro.runtime.asyncio_runtime.AsyncioRuntime` instead of the
discrete-event simulator:

* :func:`build_live_scenario` / :func:`run_live_scenario` — a whole cluster
  in-memory over a :class:`~repro.runtime.transports.LocalTransport`.
  Under the default :class:`~repro.runtime.asyncio_runtime.VirtualClock`
  this is the deterministic fast path (a zero-jitter run reproduces the
  simulator's decisions and ledgers exactly); pass a
  :class:`~repro.runtime.asyncio_runtime.MonotonicClock` for wall-clock
  pacing.
* :class:`TcpCluster` — n nodes over real TCP sockets on localhost, each
  with its own :class:`~repro.runtime.tcp.TcpTransport` and runtime,
  sharing one wall clock so metrics land on one timeline.
* :class:`LiveExecutor` / :func:`execute_live_cell` — the ``"live"``
  campaign backend: a :class:`~repro.runner.campaign.Campaign` sweeps
  live-cluster cells exactly like simulated ones, producing the same
  picklable :class:`~repro.runner.record.RunRecord` rows (cache keys are
  salted with ``live:`` so live and simulated records never collide).

Live runs support the full adversarial surface: crash/recovery behaviours
(timer-driven, runtime-agnostic), simulator delay models and the named
``repro.faults`` scenarios.  A config with a ``delay_model`` or ``scenario``
is executed under a :class:`~repro.runtime.chaos.FaultyTransport` driving
the *same* schedule objects as the simulator (see
:mod:`repro.runtime.chaos`): under the default virtual clock this replays
the simulated scenario's decisions and ledgers exactly, and
injected-fault counters (drops, duplicates, partition epochs,
kills/restarts) surface through the run's
:class:`~repro.metrics.collector.MetricsCollector`.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import Any, Callable, Optional, Union

from repro.adversary.corruption import CorruptionPlan
from repro.config import ProtocolConfig
from repro.consensus.ledger import ledgers_consistent
from repro.consensus.replica import Replica
from repro.crypto.backend import CryptoBackend, make_backend, set_default_backend
from repro.crypto.signatures import PKI
from repro.crypto.threshold import ThresholdScheme
from repro.errors import ConfigurationError
from repro.experiments.scenario import ScenarioConfig
from repro.faults.library import get_scenario
from repro.metrics.collector import MetricsCollector
from repro.metrics.summary import ComplexitySummary, RunMetrics, extract_run_metrics, summarize_run
from repro.pacemakers.registry import make_pacemaker_factory
from repro.runner.record import RunRecord
from repro.runtime import (
    AsyncioRuntime,
    ChaosConfig,
    Clock,
    FaultCounters,
    FaultyTransport,
    LocalTransport,
    MonotonicClock,
    RuntimeContext,
    TcpTransport,
    Transport,
    VirtualClock,
    WireCodec,
    adapt_schedule,
    track_downtime,
)
from repro.sim.network import DelayModel
from repro.sim.tracing import TraceRecorder

#: How far behind zero a replica's local clock is re-anchored immediately
#: before ``start()`` on wall-clock runs.  Under the simulator, construction
#: and start happen at the same virtual instant, so ``lc(p) == 0 == c_0``
#: exactly and the first epoch event fires; on a wall clock, milliseconds
#: elapse in between, the local clock drifts past ``c_0`` and clock-driven
#: pacemakers would skip their bootstrap view.  Starting a hair early is
#: indistinguishable from a slightly later protocol start.
WALL_START_GRACE = 0.05


def _start_replicas(replicas: dict[int, Replica], wall: bool) -> None:
    """Start replicas in pid order, re-anchoring local clocks on wall runs."""
    for pid in sorted(replicas):
        if wall:
            replicas[pid].clock.set_to(-WALL_START_GRACE)
        replicas[pid].start()


def _build_protocol_stack(
    config: ScenarioConfig,
) -> tuple[ProtocolConfig, CryptoBackend, CorruptionPlan, MetricsCollector, PKI, dict, ThresholdScheme, TraceRecorder, Optional[DelayModel]]:
    """The runtime-independent half of scenario construction.

    Resolves a named scenario to its ``(delay_model, corruption)`` effect
    (exactly as :func:`repro.experiments.scenario.build_scenario` does),
    installs the crypto backend, builds keys, scheme, metrics and the
    corruption plan.  The returned delay model — ``None`` for fault-free
    and corruption-only configs — is the schedule the live transport must
    impose (via :func:`repro.runtime.chaos.adapt_schedule`).
    """
    delay_model = config.delay_model
    explicit_corruption = config.corruption
    if config.scenario is not None:
        if delay_model is not None or explicit_corruption is not None:
            raise ConfigurationError(
                f"scenario {config.scenario!r} fully determines the adversary; "
                "leave delay_model and corruption unset (override via "
                "scenario_params instead)"
            )
        delay_model, explicit_corruption = get_scenario(config.scenario).build(
            config, config.scenario_params
        )
    protocol_config = config.protocol_config()
    corruption = explicit_corruption or CorruptionPlan.none(protocol_config)
    if corruption.config.n != protocol_config.n:
        raise ConfigurationError("corruption plan was built for a different system size")
    crypto_backend = make_backend(protocol_config.crypto_backend)
    set_default_backend(crypto_backend)
    metrics = MetricsCollector()
    metrics.set_honest(corruption.honest_ids)
    pki, signing_keys = PKI.setup(protocol_config.processor_ids, backend=crypto_backend)
    scheme = ThresholdScheme(pki)
    trace = TraceRecorder(enabled=config.record_trace)
    return (
        protocol_config, crypto_backend, corruption, metrics, pki, signing_keys,
        scheme, trace, delay_model,
    )


def _make_replica(
    pid: int,
    ctx: RuntimeContext,
    config: ScenarioConfig,
    protocol_config: ProtocolConfig,
    pki: PKI,
    signing_keys: dict,
    scheme: ThresholdScheme,
    metrics: MetricsCollector,
    corruption: CorruptionPlan,
) -> Replica:
    factory = make_pacemaker_factory(config.pacemaker, protocol_config, config.pacemaker_config)
    replica = Replica(
        pid=pid,
        ctx=ctx,
        config=protocol_config,
        pki=pki,
        signing_key=signing_keys[pid],
        scheme=scheme,
        pacemaker_factory=factory,
        metrics=metrics,
        behaviour=corruption.behaviour_for(pid),
    )
    if config.workload is not None:
        # Every live lane builds replicas here — inline clusters, TCP nodes
        # and the spawned workers of a ProcessCluster — so attaching the
        # client workload at this single point covers them all.
        from repro.runner.workload import attach_workload

        attach_workload(replica, config.workload)
    return replica


@dataclass
class LiveRunResult:
    """The outcome of one live (asyncio-runtime) run.

    The live sibling of
    :class:`~repro.experiments.scenario.ScenarioResult`: same summaries and
    safety helpers, with the runtime and transport in place of the
    simulator and network.

    Multi-process runs (:class:`~repro.runner.process_cluster.ProcessCluster`)
    produce the same result type from merged shard reports: there the
    coordinator holds no replicas, runtime or transport (they lived and died
    in the node processes), so ``replicas`` is empty, ``runtime`` and
    ``transport`` are ``None``, and the ledger/event accessors answer from
    ``ledger_block_ids`` / ``events`` instead.
    """

    config: ScenarioConfig
    protocol_config: ProtocolConfig
    metrics: MetricsCollector
    trace: TraceRecorder
    replicas: dict[int, Replica]
    corruption: CorruptionPlan
    runtime: Optional[AsyncioRuntime]
    transport: Optional[Transport]
    crypto_backend: Optional[CryptoBackend] = None
    #: Committed block ids per pid, for results whose ledgers lived in other
    #: OS processes (``None`` whenever ``replicas`` is populated).
    ledger_block_ids: Optional[dict[int, tuple[str, ...]]] = None
    #: Runtime-event total for results without a local runtime.
    events: Optional[int] = None
    #: KV state digests / apply chains shipped from node processes
    #: (``None`` whenever ``replicas`` is populated or no workload ran).
    kv_digests: Optional[dict[int, str]] = None
    kv_chains: Optional[dict[int, tuple[str, ...]]] = None

    # ------------------------------------------------------------------
    # Summaries
    # ------------------------------------------------------------------
    def summary(self, warmup_decisions: int = 5) -> ComplexitySummary:
        """The Table-1 measures for this run."""
        return summarize_run(
            self.metrics,
            protocol=self.config.pacemaker,
            n=self.config.n,
            f_actual=self.corruption.f_actual,
            gst=self.config.gst,
            delta=self.config.delta,
            warmup_decisions=warmup_decisions,
        )

    def run_metrics(self) -> RunMetrics:
        """The picklable derived-metrics residue of this run."""
        return extract_run_metrics(self.metrics)

    # ------------------------------------------------------------------
    # Safety / liveness helpers
    # ------------------------------------------------------------------
    @property
    def honest_replicas(self) -> list[Replica]:
        """Replicas that were never corrupted (empty for multi-process runs)."""
        return [r for pid, r in sorted(self.replicas.items()) if pid in self.corruption.honest_ids]

    def _honest_ledger_ids(self) -> list[list[str]]:
        """Honest committed-id sequences, from replicas or shipped ids."""
        if self.replicas:
            return [replica.ledger.block_ids for replica in self.honest_replicas]
        if self.ledger_block_ids is None:
            return []
        return [
            list(ids)
            for pid, ids in sorted(self.ledger_block_ids.items())
            if pid in self.corruption.honest_ids
        ]

    def ledgers_are_consistent(self) -> bool:
        """Safety: honest ledgers are pairwise prefix-consistent."""
        from repro.consensus.ledger import sequences_consistent

        return sequences_consistent(self._honest_ledger_ids())

    def kv_state_digests(self) -> dict[int, str]:
        """Per-replica KV state digests (empty without a workload)."""
        if self.replicas:
            from repro.runner.workload import kv_state_digests

            return kv_state_digests(self.replicas.values())
        return dict(self.kv_digests or {})

    def kv_apply_chains(self) -> dict[int, tuple[str, ...]]:
        """Per-replica KV apply chains (empty without a workload)."""
        if self.replicas:
            from repro.runner.workload import kv_apply_chains

            return kv_apply_chains(self.replicas.values())
        return dict(self.kv_chains or {})

    def kv_consistent(self) -> bool:
        """State-machine safety: apply chains are prefix-consistent.

        Trivially true without a workload (no chains to disagree).
        """
        from repro.statemachine.kvstore import apply_chains_consistent

        return apply_chains_consistent(self.kv_apply_chains().values())

    def honest_decisions(self) -> int:
        """Number of QCs produced by honest leaders during the run."""
        return len(self.metrics.honest_decisions())

    def committed_blocks(self) -> int:
        """Length of the longest honest ledger."""
        lengths = [len(ids) for ids in self._honest_ledger_ids()]
        return max(lengths) if lengths else 0

    def max_honest_view(self) -> int:
        """The highest view any honest replica entered."""
        views = [self.metrics.max_view_entered(r.pid) for r in self.honest_replicas]
        return max(views) if views else -1

    @property
    def fault_counts(self) -> dict[str, int]:
        """Injected-fault totals by name (empty for fault-free runs)."""
        return self.metrics.fault_counts

    @property
    def events_processed(self) -> int:
        """Runtime events handled during the run (summed across node
        processes for multi-process results)."""
        if self.runtime is not None:
            return self.runtime.events_processed
        return self.events or 0

    def describe(self) -> str:
        """One-line run description for reports."""
        if self.runtime is None:
            mode = "process"
        else:
            mode = "virtual" if self.runtime.virtual else "wall"
        return (
            f"live[{mode}] {self.config.pacemaker} n={self.config.n} "
            f"decisions={self.honest_decisions()} commits={self.committed_blocks()} "
            f"consistent={self.ledgers_are_consistent()}"
        )


# ----------------------------------------------------------------------
# In-memory cluster (LocalTransport, one runtime)
# ----------------------------------------------------------------------
def build_live_scenario(
    config: ScenarioConfig,
    jitter: float = 0.0,
    clock: Optional[Clock] = None,
    transport: Optional[LocalTransport] = None,
    chaos: Optional[ChaosConfig] = None,
) -> LiveRunResult:
    """Construct an in-memory live cluster for ``config`` without running it.

    Fault-free configs get a bare :class:`LocalTransport` (base delay
    ``config.actual_delay``, jitter RNG seeded ``config.seed`` — the live
    twin of the simulated ``FixedDelay(actual_delay)`` scenario).  A
    ``delay_model`` or named ``scenario`` wraps a zero-delay transport in a
    :class:`~repro.runtime.chaos.FaultyTransport` imposing the adapted
    schedule under the config's partial-synchrony envelope; ``chaos`` adds
    drop/duplicate injectors either way.  Chaotic builds attach their
    :class:`~repro.runtime.chaos.FaultCounters` to the metrics collector
    and track behaviour-declared downtime windows as kills/restarts.
    """
    (
        protocol_config,
        crypto_backend,
        corruption,
        metrics,
        pki,
        signing_keys,
        scheme,
        trace,
        delay_model,
    ) = _build_protocol_stack(config)
    chaotic = (
        delay_model is not None
        or (chaos is not None and chaos.active)
        or config.scenario is not None
    )
    counters = FaultCounters() if chaotic else None
    if transport is None:
        if delay_model is not None:
            if jitter:
                raise ConfigurationError(
                    "a delay model/scenario fully determines live latency; "
                    "transport jitter must stay 0 (it would add on top of "
                    "the schedule and break sim parity)"
                )
            # The schedule proposes every non-self latency, so the inner
            # transport contributes none of its own.
            inner = LocalTransport(delay=0.0, jitter=0.0, seed=config.seed)
            transport = FaultyTransport(
                inner,
                schedule=adapt_schedule(delay_model),
                network=config.network_config(),
                schedule_seed=config.seed,
                chaos=chaos,
                counters=counters,
            )
        else:
            transport = LocalTransport(
                delay=config.actual_delay, jitter=jitter, seed=config.seed
            )
            if chaos is not None and chaos.active:
                transport = FaultyTransport(transport, chaos=chaos, counters=counters)
    elif delay_model is not None:
        raise ConfigurationError(
            "pass either an explicit transport or a delay_model/scenario, "
            "not both (the scenario's schedule decides the transport)"
        )
    runtime = AsyncioRuntime(transport, clock=clock, trace=trace, seed=config.seed)
    metrics.attach_transport(transport)
    ctx = RuntimeContext(runtime=runtime, trace=trace)
    replicas = {
        pid: _make_replica(
            pid, ctx, config, protocol_config, pki, signing_keys, scheme, metrics, corruption
        )
        for pid in protocol_config.processor_ids
    }
    if counters is not None:
        metrics.attach_fault_counters(counters)
        track_downtime(runtime, replicas, counters)
    return LiveRunResult(
        config=config,
        protocol_config=protocol_config,
        metrics=metrics,
        trace=trace,
        replicas=replicas,
        corruption=corruption,
        runtime=runtime,
        transport=transport,
        crypto_backend=crypto_backend,
    )


async def run_live_scenario_async(
    config: ScenarioConfig,
    jitter: float = 0.0,
    clock: Optional[Clock] = None,
    max_events: Optional[int] = None,
    stop_when: Optional[Callable[[LiveRunResult], bool]] = None,
    chaos: Optional[ChaosConfig] = None,
) -> LiveRunResult:
    """Build and run an in-memory live cluster to ``config.duration``.

    ``duration`` is virtual seconds under the default
    :class:`VirtualClock` and wall seconds under a
    :class:`MonotonicClock`; ``stop_when`` (called with the result between
    events) ends the run early either way.
    """
    result = build_live_scenario(config, jitter=jitter, clock=clock, chaos=chaos)
    _start_replicas(result.replicas, wall=not result.runtime.virtual)
    predicate = None if stop_when is None else (lambda: stop_when(result))
    await result.runtime.run(
        until=config.duration, max_events=max_events, stop_when=predicate
    )
    if not result.runtime.virtual:
        await result.runtime.stop()
    return result


def run_live_scenario(
    config: ScenarioConfig,
    jitter: float = 0.0,
    clock: Optional[Clock] = None,
    max_events: Optional[int] = None,
    stop_when: Optional[Callable[[LiveRunResult], bool]] = None,
    chaos: Optional[ChaosConfig] = None,
) -> LiveRunResult:
    """Blocking wrapper over :func:`run_live_scenario_async` (owns the loop)."""
    return asyncio.run(
        run_live_scenario_async(
            config, jitter=jitter, clock=clock, max_events=max_events,
            stop_when=stop_when, chaos=chaos,
        )
    )


# ----------------------------------------------------------------------
# TCP cluster (one TcpTransport + runtime per node, shared wall clock)
# ----------------------------------------------------------------------
@dataclass
class TcpNode:
    """One node of a :class:`TcpCluster`.

    ``transport`` is the node's :class:`~repro.runtime.tcp.TcpTransport`,
    or a :class:`~repro.runtime.chaos.FaultyTransport` wrapping it when the
    cluster runs a chaotic scenario.
    """

    pid: int
    transport: Transport
    runtime: AsyncioRuntime
    replica: Replica


class TcpCluster:
    """An n-replica Lumiere cluster over real TCP sockets on localhost.

    Bootstrap dance (all inside one event loop, see :meth:`start`):
    servers are bound first on ephemeral ports, the resulting address map
    is installed on every node, then runtimes and replicas are built and
    started.  All nodes share one :class:`MonotonicClock`, so ledger commit
    times and metrics live on a single timeline.

    Parameters
    ----------
    config:
        The scenario to run; ``n``, ``pacemaker``, ``delta``, ``seed`` and
        ``crypto_backend`` are honoured (``actual_delay`` is real network
        latency now, so it is ignored).
    host:
        Listen address for every node (default localhost).
    codec:
        Wire codec for every node's :class:`~repro.runtime.tcp.TcpTransport`:
        a codec name (``"binary"``, the default, or ``"json"``) or a
        :class:`~repro.runtime.codec.WireCodec` instance shared by the whole
        cluster.
    """

    def __init__(
        self,
        config: ScenarioConfig,
        host: str = "127.0.0.1",
        codec: Union[WireCodec, str, None] = None,
        connect_timeout: float = 10.0,
        coalesce_writes: bool = True,
    ) -> None:
        self.config = config
        self.host = host
        self.codec = codec
        self.connect_timeout = connect_timeout
        self.coalesce_writes = coalesce_writes
        self.clock = MonotonicClock()
        self.nodes: dict[int, TcpNode] = {}
        self.metrics = MetricsCollector()
        #: Shared injected-fault totals across all nodes (``None`` until a
        #: chaotic cluster has started).
        self.fault_counters: Optional[FaultCounters] = None
        #: Transport errors surfaced at :meth:`stop` (per-node
        #: ``TcpTransport.last_errors``, prefixed with the node id).
        self.teardown_errors: list[str] = []
        #: Total frames lost to exhausted connect windows, cluster-wide
        #: (aggregated at :meth:`stop`; live totals are on the transports).
        self.frames_dropped = 0
        self._started = False
        self._torn_down = False
        self._stack: Optional[tuple] = None

    async def start(self) -> None:
        """Bind servers, exchange addresses, build and start all replicas."""
        if self._started:
            return
        stack = _build_protocol_stack(self.config)
        (
            protocol_config,
            crypto_backend,
            corruption,
            metrics,
            pki,
            signing_keys,
            scheme,
            trace,
            delay_model,
        ) = stack
        self._stack = stack
        self.metrics = metrics
        chaotic = delay_model is not None or self.config.scenario is not None
        counters = FaultCounters() if chaotic else None
        tcp_transports = {
            pid: TcpTransport(
                pid,
                host=self.host,
                codec=self.codec,
                connect_timeout=self.connect_timeout,
                coalesce_writes=self.coalesce_writes,
            )
            for pid in protocol_config.processor_ids
        }
        addresses = {}
        for pid, transport in tcp_transports.items():
            addresses[pid] = await transport.start_server()
        for transport in tcp_transports.values():
            transport.set_peers(addresses)
        transports: dict[int, Transport] = dict(tcp_transports)
        if delay_model is not None:
            # Each node imposes the shared schedule on its *outgoing* sends:
            # a hold-then-forward approximation of the simulated latency (the
            # real socket adds its own small delay on top, so — unlike the
            # single-runtime virtual-clock path — this lane makes no
            # bit-exact parity claim).  Per-node seed offsets mirror the
            # runtimes' seeds.
            transports = {
                pid: FaultyTransport(
                    transport,
                    schedule=adapt_schedule(delay_model),
                    network=self.config.network_config(),
                    schedule_seed=self.config.seed + pid,
                    counters=counters,
                )
                for pid, transport in tcp_transports.items()
            }
        replicas: dict[int, Replica] = {}
        for pid, transport in transports.items():
            runtime = AsyncioRuntime(
                transport, clock=self.clock, trace=trace, seed=self.config.seed + pid
            )
            metrics.attach_transport(transport)
            ctx = RuntimeContext(runtime=runtime, trace=trace)
            replica = _make_replica(
                pid, ctx, self.config, protocol_config, pki, signing_keys, scheme,
                metrics, corruption,
            )
            replicas[pid] = replica
            self.nodes[pid] = TcpNode(pid, transport, runtime, replica)
        for node in self.nodes.values():
            await node.transport.start()
        if counters is not None:
            self.fault_counters = counters
            metrics.attach_fault_counters(counters)
            for pid, node in self.nodes.items():
                track_downtime(node.runtime, {pid: node.replica}, counters)
        _start_replicas(replicas, wall=True)
        self._started = True

    @property
    def replicas(self) -> dict[int, Replica]:
        """All replicas by pid."""
        return {pid: node.replica for pid, node in self.nodes.items()}

    def min_committed(self) -> int:
        """Length of the shortest ledger across the cluster."""
        if not self.nodes:
            return 0
        return min(len(node.replica.ledger) for node in self.nodes.values())

    def ledgers_are_consistent(self) -> bool:
        """Safety: all ledgers are pairwise prefix-consistent."""
        return ledgers_consistent([node.replica.ledger for node in self.nodes.values()])

    def kv_digests(self) -> dict[int, str]:
        """Per-node KV state digests (empty without a client workload)."""
        from repro.runner.workload import kv_state_digests

        return kv_state_digests(self.replicas.values())

    def kv_chains(self) -> dict[int, tuple[str, ...]]:
        """Per-node KV apply chains (empty without a client workload)."""
        from repro.runner.workload import kv_apply_chains

        return kv_apply_chains(self.replicas.values())

    def kv_consistent(self) -> bool:
        """State-machine safety: all apply chains are prefix-consistent."""
        from repro.statemachine.kvstore import apply_chains_consistent

        return apply_chains_consistent(self.kv_chains().values())

    async def run(
        self,
        duration: float,
        stop_when: Optional[Callable[["TcpCluster"], bool]] = None,
        poll: float = 0.02,
    ) -> None:
        """Run all nodes concurrently for ``duration`` wall seconds (or until
        ``stop_when(cluster)`` turns true)."""
        await self.start()
        predicate = None if stop_when is None else (lambda: stop_when(self))
        await asyncio.gather(
            *(
                node.runtime.run(until=duration, stop_when=predicate, poll=poll)
                for node in self.nodes.values()
            )
        )

    async def stop(self) -> None:
        """Shut every node down (concurrently, so EOFs propagate cleanly).

        Teardown surfaces rather than swallows: each transport's
        ``last_errors`` are folded into :attr:`teardown_errors` and its
        ``frames_dropped`` into the cluster total, so a writer that died
        holding frames or a pump that crashed mid-run is visible here (and
        in the run's fault counts) instead of vanishing with the tasks.
        """
        await asyncio.gather(*(node.runtime.stop() for node in self.nodes.values()))
        if self._torn_down:
            return  # idempotent: don't double-count a second stop()
        self._torn_down = True
        for pid, node in sorted(self.nodes.items()):
            base = getattr(node.transport, "inner", node.transport)
            self.frames_dropped += base.frames_dropped
            self.teardown_errors.extend(
                f"node {pid}: {error}" for error in base.last_errors
            )

    async def run_until_commits(
        self, blocks: int, timeout: float, poll: float = 0.02
    ) -> int:
        """Run until every ledger holds ``blocks`` commits (or ``timeout`` wall
        seconds); returns the final minimum ledger length."""
        await self.run(
            timeout, stop_when=lambda c: c.min_committed() >= blocks, poll=poll
        )
        return self.min_committed()


# ----------------------------------------------------------------------
# Placement: inline (one process) vs process (one OS process per node)
# ----------------------------------------------------------------------
#: Valid ``placement`` values for live TCP clusters.
PLACEMENTS = ("inline", "process")


def make_live_cluster(
    config: ScenarioConfig,
    placement: str = "inline",
    host: str = "127.0.0.1",
    codec: Union[WireCodec, str, None] = None,
    processes: Optional[int] = None,
    connect_timeout: float = 10.0,
    coalesce_writes: bool = True,
    transport: str = "tcp",
    **kwargs: Any,
):
    """Build a live cluster with the requested process placement.

    ``placement="inline"`` returns a :class:`TcpCluster` — every node in
    the calling process, one event loop, real sockets.
    ``placement="process"`` returns a
    :class:`~repro.runner.process_cluster.ProcessCluster` — one spawned OS
    process per node (or per shard of ``processes`` workers), which is the
    multicore lane.  Both expose the same ``start`` / ``run`` /
    ``run_until_commits`` / ``stop`` / ``min_committed`` surface, so
    benchmarks and examples switch placement with this one knob.

    ``processes`` is only meaningful under process placement (inline has
    exactly one), as is ``transport``: ``"tcp"`` (localhost sockets, the
    default) or ``"shm"`` (shared-memory rings between the node processes —
    the faster lane on one machine).  Inline placement has no process
    boundary to cross, so it always speaks TCP and rejects ``"shm"``.
    Extra ``kwargs`` go to the chosen cluster's constructor.
    """
    if transport not in ("tcp", "shm"):
        raise ConfigurationError(
            f"unknown transport {transport!r}; available: tcp, shm"
        )
    if placement == "inline":
        if processes is not None:
            raise ConfigurationError(
                "processes is a process-placement knob; inline placement "
                "runs every node in the calling process"
            )
        if transport != "tcp":
            raise ConfigurationError(
                "transport=\"shm\" is a process-placement knob; inline "
                "placement shares one heap and has no process boundary for "
                "shared memory to cross"
            )
        return TcpCluster(
            config, host=host, codec=codec, connect_timeout=connect_timeout,
            coalesce_writes=coalesce_writes, **kwargs,
        )
    if placement == "process":
        from repro.runner.process_cluster import ProcessCluster

        return ProcessCluster(
            config, host=host, codec=codec, processes=processes,
            connect_timeout=connect_timeout, coalesce_writes=coalesce_writes,
            transport=transport, **kwargs,
        )
    raise ConfigurationError(
        f"unknown placement {placement!r}; expected one of {PLACEMENTS}"
    )


async def run_process_scenario_async(
    config: ScenarioConfig,
    codec: Optional[str] = None,
    processes: Optional[int] = None,
    coalesce_writes: bool = True,
    transport: str = "tcp",
    stop_when: Optional[Callable[[Any], bool]] = None,
) -> LiveRunResult:
    """Run ``config`` on a multi-process cluster to ``config.duration``.

    The process-placement twin of :func:`run_live_scenario_async`.
    ``duration`` is **wall** seconds (node processes live on a shared
    monotonic clock; there is no virtual fast path across OS processes),
    and ``stop_when`` receives the
    :class:`~repro.runner.process_cluster.ProcessCluster` — use
    ``min_committed()`` for progress predicates.  The cluster is always
    stopped and merged, even when the run raises.  ``transport`` selects
    the inter-node fabric (``"tcp"`` or ``"shm"``).
    """
    from repro.runner.process_cluster import ProcessCluster

    cluster = ProcessCluster(
        config, codec=codec, processes=processes,
        coalesce_writes=coalesce_writes, transport=transport,
    )
    try:
        await cluster.run(config.duration, stop_when=stop_when)
    finally:
        await cluster.stop()
    return cluster.result()


def run_process_scenario(
    config: ScenarioConfig,
    codec: Optional[str] = None,
    processes: Optional[int] = None,
    coalesce_writes: bool = True,
    transport: str = "tcp",
    stop_when: Optional[Callable[[Any], bool]] = None,
) -> LiveRunResult:
    """Blocking wrapper over :func:`run_process_scenario_async` (owns the loop)."""
    return asyncio.run(
        run_process_scenario_async(
            config, codec=codec, processes=processes,
            coalesce_writes=coalesce_writes, transport=transport,
            stop_when=stop_when,
        )
    )


# ----------------------------------------------------------------------
# Campaign integration: the "live" backend
# ----------------------------------------------------------------------
def execute_live_cell(
    build: Callable[[dict[str, Any]], ScenarioConfig],
    params: dict[str, Any],
    run_id: str,
    key: str,
    max_events: Optional[int] = None,
    config: Optional[ScenarioConfig] = None,
    jitter: float = 0.0,
    chaos: Optional[ChaosConfig] = None,
    placement: str = "inline",
    transport: str = "tcp",
) -> RunRecord:
    """Run one campaign cell on the asyncio runtime.

    The live twin of :func:`repro.runner.executor.execute_cell`: same
    picklable :class:`RunRecord` shape, with ``events_processed`` counted
    by the runtime.  ``key`` arrives already salted by the campaign layer
    (``live:`` prefix, plus jitter/chaos/placement/transport knobs when
    set) so cached live records never shadow simulated ones.

    ``placement="inline"`` (the default) runs the cell in-memory under the
    virtual clock — the deterministic fast path.  ``placement="process"``
    runs it on a multi-process cluster instead: real wall time, one OS
    process per node, over localhost TCP or (``transport="shm"``)
    shared-memory rings.  Jitter and chaos are inline-transport knobs and
    are rejected under process placement (a process cell's noise is the
    real network's); ``transport`` conversely is a process-placement knob.
    """
    if placement not in PLACEMENTS:
        raise ConfigurationError(
            f"unknown placement {placement!r}; expected one of {PLACEMENTS}"
        )
    if transport not in ("tcp", "shm"):
        raise ConfigurationError(
            f"unknown transport {transport!r}; available: tcp, shm"
        )
    if config is None:
        config = build(params)
    started = time.perf_counter()
    if placement == "process":
        if jitter:
            raise ConfigurationError(
                "jitter is an inline-transport knob; process placement runs "
                "over real sockets whose latency is not simulated"
            )
        if chaos is not None and chaos.active:
            raise ConfigurationError(
                "chaos injection applies to inline transports; process "
                "placement does not support it (use a scenario/delay_model, "
                "which the node processes impose themselves)"
            )
        result = run_process_scenario(config, transport=transport)
    else:
        if transport != "tcp":
            raise ConfigurationError(
                "transport=\"shm\" is a process-placement knob; inline "
                "cells share one heap (use placement=\"process\")"
            )
        result = run_live_scenario(
            config, jitter=jitter, max_events=max_events, chaos=chaos
        )
    wall_time = time.perf_counter() - started
    return RunRecord(
        run_id=run_id,
        key=key,
        params=params,
        summary=result.summary(),
        metrics=result.run_metrics(),
        committed_blocks=result.committed_blocks(),
        max_honest_view=result.max_honest_view(),
        ledgers_consistent=result.ledgers_are_consistent(),
        events_processed=result.events_processed,
        wall_time=wall_time,
    )


@dataclass
class LiveExecutor:
    """Callable cell executor for the ``"live"`` campaign backend.

    Campaigns use a default instance; construct one explicitly to sweep the
    same grid under transport jitter::

        run_campaign(campaign, backend="live", live_executor=LiveExecutor(jitter=0.05))
    """

    #: Uniform jitter band added to every cell's transport latency.
    jitter: float = 0.0
    #: Drop/duplicate injection applied to every cell's transport.
    chaos: Optional[ChaosConfig] = None
    #: Where each cell's nodes run: ``"inline"`` (one process, virtual
    #: clock) or ``"process"`` (one OS process per node, wall clock).
    placement: str = "inline"
    #: Inter-node fabric under process placement: ``"tcp"`` or ``"shm"``.
    transport: str = "tcp"

    @property
    def cache_salt(self) -> str:
        """Cache-key prefix binding everything this executor changes about a run.

        ``live:`` alone for the canonical zero-jitter, fault-free, inline
        executor; the jitter value, chaos knobs, non-default placement and
        non-default transport are folded in otherwise, so records produced
        under different latency noise, injected faults, process placement
        or message fabric never answer for each other from a shared cache.
        """
        knobs = []
        if self.jitter != 0.0:
            knobs.append(f"jitter={self.jitter!r}")
        if self.chaos is not None and self.chaos.active:
            knobs.append(self.chaos.describe())
        if self.placement != "inline":
            knobs.append(f"placement={self.placement}")
        if self.transport != "tcp":
            knobs.append(f"transport={self.transport}")
        if not knobs:
            return "live:"
        return f"live[{','.join(knobs)}]:"

    def __call__(
        self,
        build: Callable[[dict[str, Any]], ScenarioConfig],
        params: dict[str, Any],
        run_id: str,
        key: str,
        max_events: Optional[int] = None,
        config: Optional[ScenarioConfig] = None,
    ) -> RunRecord:
        return execute_live_cell(
            build, params, run_id, key, max_events=max_events, config=config,
            jitter=self.jitter, chaos=self.chaos, placement=self.placement,
            transport=self.transport,
        )
