"""On-disk result cache for campaign cells.

Records are stored one JSON file per content key (see
:func:`~repro.runner.campaign.spec_key`): re-running a campaign only
executes cells whose key is missing, and editing any parameter — or
upgrading the package version — changes the key and forces a fresh run.

Writes are atomic (write to a temporary sibling, then ``os.replace``) so a
crashed or interrupted campaign never leaves a torn cache entry behind.
"""

from __future__ import annotations

import contextlib
import json
import os
import tempfile
from pathlib import Path
from typing import Iterator, Optional, Union

from repro.runner.record import RunRecord

#: Directory used when callers pass ``cache=True``-style defaults.
DEFAULT_CACHE_DIR = ".repro-cache"


class ResultCache:
    """A directory of content-addressed :class:`RunRecord` JSON files."""

    def __init__(self, root: Union[str, Path] = DEFAULT_CACHE_DIR) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    # Lookup / storage
    # ------------------------------------------------------------------
    def path_for(self, key: str) -> Path:
        """Where the record with content hash ``key`` lives (or would live)."""
        return self.root / f"{key}.json"

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).is_file()

    def get(self, key: str) -> Optional[RunRecord]:
        """The cached record for ``key``, or ``None`` on a miss.

        Unreadable or torn entries count as misses and are removed, so a
        corrupted file can never wedge a campaign.
        """
        path = self.path_for(key)
        try:
            with path.open("r", encoding="utf-8") as handle:
                data = json.load(handle)
            return RunRecord.from_json_dict(data)
        except FileNotFoundError:
            return None
        except (KeyError, TypeError, ValueError):
            # ValueError covers json.JSONDecodeError and UnicodeDecodeError
            # (malformed bytes) as well as wrong-arity unpacks during record
            # reconstruction — any unreadable entry is a miss, not a crash.
            path.unlink(missing_ok=True)
            return None

    def put(self, record: RunRecord) -> None:
        """Store ``record`` under its content key, atomically.

        The temporary file name is unique per writer (not per key), so
        concurrent campaigns sharing a cache directory can race on the same
        key and the loser still publishes a whole file, never a torn one.
        """
        path = self.path_for(record.key)
        fd, tmp_name = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(record.to_json_dict(), handle)
            os.replace(tmp_name, path)
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(tmp_name)
            raise

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def keys(self) -> Iterator[str]:
        """Content keys currently stored."""
        for path in self.root.glob("*.json"):
            yield path.stem

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def clear(self) -> int:
        """Remove every cached record; returns how many were deleted.

        Also sweeps ``*.tmp`` debris left behind by hard-killed writers
        (a ``put`` interrupted between ``mkstemp`` and ``os.replace``).
        """
        removed = 0
        for path in self.root.glob("*.json"):
            path.unlink(missing_ok=True)
            removed += 1
        for stray in self.root.glob("*.tmp"):
            stray.unlink(missing_ok=True)
        return removed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResultCache(root={str(self.root)!r}, entries={len(self)})"
