"""``ProcessCluster``: one OS process per node (or shard of nodes) over TCP.

:class:`~repro.runner.live.TcpCluster` runs every replica of a live cluster
inside a single Python process — real sockets, but one GIL, so ``n`` nodes'
crypto, codec and protocol work serialise onto one core.  This module is
the multicore lane: the same replica stack, the same
:class:`~repro.runtime.tcp.TcpTransport`, but each node (or a shard of
``k`` nodes) boots in its **own spawned OS process** with its own asyncio
loop and crypto backend, and the parent acts purely as coordinator.

Bootstrap dance (the ``TcpCluster`` dance, stretched over a control pipe):

1. the parent spawns one worker per shard (``spawn`` context — fresh
   interpreters, see the key-determinism note below) with a duplex
   :func:`multiprocessing.Pipe` each;
2. each worker builds the protocol stack, binds its nodes' servers on
   ephemeral ports and reports ``("addresses", {pid: (host, port)})``;
3. the parent assembles the full address map and broadcasts it back;
   workers install it via :meth:`TcpTransport.set_peers`, start their
   transports, and report ``("ready", ...)``;
4. the parent broadcasts ``("go",)`` and every worker starts its replicas —
   the barrier keeps cross-process start skew at pipe latency rather than
   interpreter-boot latency;
5. during the run the parent polls ``("status",)`` → per-pid ledger
   lengths; at shutdown it sends ``("stop",)`` and each worker ships back a
   picklable :class:`ShardReport` (metrics snapshot, ledger ids, counters,
   teardown errors), which the parent merges into one cluster-wide
   :class:`~repro.runner.live.LiveRunResult`.

**Key determinism.**  Signing keys draw their secrets from a per-process
monotonic counter, so two processes agree on the whole key ceremony exactly
when they mint the same keys in the same order starting from a fresh
counter.  Spawned workers satisfy this by construction (fresh interpreter,
``PKI.setup`` is the first key-creating act), and the coordinator verifies
it anyway: every worker reports a key fingerprint with its addresses, and a
mismatch aborts the bootstrap with a configuration error instead of an
unexplainable signature-verification storm.  The ``counting`` crypto
backend is rejected outright — its digests are process-local interning
tokens and can never validate across process boundaries.

**Timeline.**  All workers anchor their
:class:`~repro.runtime.asyncio_runtime.MonotonicClock` to one
``time.monotonic()`` origin chosen by the parent (``CLOCK_MONOTONIC`` is
system-wide on Linux), so merged metrics live on a single timeline exactly
like a shared in-process clock.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import os
import time
import traceback
import uuid
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

from repro.consensus.ledger import sequences_consistent
from repro.errors import ConfigurationError, SimulationError
from repro.experiments.scenario import ScenarioConfig
from repro.metrics.collector import MetricsCollector, merge_metrics_states
from repro.runtime import (
    DEFAULT_RING_BYTES,
    AsyncioRuntime,
    FaultCounters,
    FaultyTransport,
    MonotonicClock,
    RuntimeContext,
    ShmTransport,
    TcpTransport,
    adapt_schedule,
    create_cluster_rings,
    destroy_cluster_rings,
    track_downtime,
)
from repro.sim.tracing import TraceRecorder

#: Extra wall-clock seconds a worker outlives its configured duration before
#: self-destructing — the orphan guard for a coordinator that died without
#: sending ``("stop",)``.
WORKER_LIFETIME_MARGIN = 120.0


# ----------------------------------------------------------------------
# Worker side (runs in the spawned process)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _ShardSpec:
    """Everything one worker needs, shipped through the spawn pickle."""

    config: ScenarioConfig
    pids: tuple[int, ...]
    host: str
    codec: Optional[str]
    clock_origin: float
    coalesce_writes: bool
    connect_timeout: float
    poll: float
    lifetime: float
    #: Inter-node fabric: ``"tcp"`` (localhost sockets) or ``"shm"``
    #: (shared-memory rings; ``shm_token`` names the parent-created
    #: segments and ``ring_bytes`` their per-pair data capacity).
    transport: str = "tcp"
    shm_token: Optional[str] = None
    ring_bytes: int = DEFAULT_RING_BYTES


@dataclass(frozen=True)
class ShardReport:
    """The picklable residue one worker ships back at shutdown."""

    pids: tuple[int, ...]
    metrics_state: dict
    ledger_ids: dict[int, tuple[str, ...]]
    events_processed: int
    messages_sent: int
    messages_delivered: int
    frames_dropped: int
    teardown_errors: tuple[str, ...]
    #: KV state digests / apply chains per pid (empty without a workload).
    kv_digests: dict[int, str] = field(default_factory=dict)
    kv_chains: dict[int, tuple[str, ...]] = field(default_factory=dict)


async def _pipe_recv(conn, poll: float, timeout: Optional[float] = None):
    """Await the next control message without blocking the event loop."""
    loop = asyncio.get_running_loop()
    deadline = None if timeout is None else loop.time() + timeout
    while True:
        if conn.poll():
            return conn.recv()
        if deadline is not None and loop.time() >= deadline:
            raise TimeoutError("control-channel message timed out")
        await asyncio.sleep(poll)


def _key_fingerprint(signing_keys: dict) -> tuple:
    """Cross-process comparable summary of a shard's key ceremony."""
    return tuple((pid, signing_keys[pid].secret_token) for pid in sorted(signing_keys))


async def _shard_main(spec: _ShardSpec, conn) -> None:
    # Imported here (not module top) to keep the coordinator-side import of
    # this module free of a cycle: repro.runner.live imports ProcessCluster
    # lazily, and the worker only needs the stack builders at run time.
    from repro.runner.live import _build_protocol_stack, _make_replica, _start_replicas

    (
        protocol_config,
        _crypto_backend,
        corruption,
        metrics,
        pki,
        signing_keys,
        scheme,
        trace,
        delay_model,
    ) = _build_protocol_stack(spec.config)
    chaotic = delay_model is not None or spec.config.scenario is not None
    counters = FaultCounters() if chaotic else None
    if spec.transport == "shm":
        assert spec.shm_token is not None, "shm transport needs a cluster token"
        node_transports: dict[int, Any] = {
            pid: ShmTransport(
                pid,
                token=spec.shm_token,
                codec=spec.codec,
                ring_bytes=spec.ring_bytes,
                host=spec.host,
            )
            for pid in spec.pids
        }
    else:
        node_transports = {
            pid: TcpTransport(
                pid,
                host=spec.host,
                codec=spec.codec,
                connect_timeout=spec.connect_timeout,
                coalesce_writes=spec.coalesce_writes,
            )
            for pid in spec.pids
        }
    addresses = {}
    for pid, transport in node_transports.items():
        # For shm the "address" is the node's UDP doorbell; the bootstrap
        # exchange is byte-for-byte the same dance either way.
        addresses[pid] = await transport.start_server()
    conn.send(("addresses", addresses, _key_fingerprint(signing_keys)))

    kind, peers = await _pipe_recv(conn, spec.poll, timeout=spec.lifetime)
    assert kind == "peers", f"unexpected bootstrap message {kind!r}"
    for transport in node_transports.values():
        transport.set_peers(peers)

    transports: dict[int, Any] = dict(node_transports)
    if delay_model is not None:
        # Same hold-then-forward approximation as TcpCluster: each node
        # imposes the shared schedule on its outgoing sends, seeded per pid.
        transports = {
            pid: FaultyTransport(
                transport,
                schedule=adapt_schedule(delay_model),
                network=spec.config.network_config(),
                schedule_seed=spec.config.seed + pid,
                counters=counters,
            )
            for pid, transport in node_transports.items()
        }

    clock = MonotonicClock(origin=spec.clock_origin)
    runtimes: dict[int, AsyncioRuntime] = {}
    replicas: dict[int, Any] = {}
    for pid, transport in transports.items():
        runtime = AsyncioRuntime(
            transport, clock=clock, trace=trace, seed=spec.config.seed + pid
        )
        metrics.attach_transport(transport)
        ctx = RuntimeContext(runtime=runtime, trace=trace)
        replicas[pid] = _make_replica(
            pid, ctx, spec.config, protocol_config, pki, signing_keys, scheme,
            metrics, corruption,
        )
        runtimes[pid] = runtime
    for transport in transports.values():
        await transport.start()
    if counters is not None:
        metrics.attach_fault_counters(counters)
        for pid, runtime in runtimes.items():
            track_downtime(runtime, {pid: replicas[pid]}, counters)

    conn.send(("ready",))
    kind, = await _pipe_recv(conn, spec.poll, timeout=spec.lifetime)
    assert kind == "go", f"unexpected bootstrap message {kind!r}"
    _start_replicas(replicas, wall=True)

    # Serve the control channel until told to stop (or until the orphan
    # guard fires).  Replicas run entirely on loop timers and transport
    # tasks; this coroutine only answers status probes.
    loop = asyncio.get_running_loop()
    deadline = loop.time() + spec.lifetime
    stopping = False
    while not stopping and loop.time() < deadline:
        await asyncio.sleep(spec.poll)
        try:
            while conn.poll():
                message = conn.recv()
                if message[0] == "status":
                    conn.send(
                        ("status", {pid: len(r.ledger) for pid, r in replicas.items()})
                    )
                elif message[0] == "stop":
                    stopping = True
                    break
        except (EOFError, OSError):
            stopping = True  # coordinator went away: tear down and exit

    for runtime in runtimes.values():
        await runtime.stop()
    teardown_errors: list[str] = []
    frames_dropped = 0
    for pid, transport in transports.items():
        base = getattr(transport, "inner", transport)
        frames_dropped += base.frames_dropped
        teardown_errors.extend(f"node {pid}: {error}" for error in base.last_errors)
    report = ShardReport(
        pids=spec.pids,
        metrics_state=metrics.state(),
        ledger_ids={pid: tuple(r.ledger.block_ids) for pid, r in replicas.items()},
        kv_digests={
            pid: r.state_machine.digest()
            for pid, r in replicas.items()
            if r.state_machine is not None
        },
        kv_chains={
            pid: r.state_machine.apply_chain
            for pid, r in replicas.items()
            if r.state_machine is not None
        },
        events_processed=sum(r.events_processed for r in runtimes.values()),
        messages_sent=sum(t.messages_sent for t in transports.values()),
        messages_delivered=sum(t.messages_delivered for t in transports.values()),
        frames_dropped=frames_dropped,
        teardown_errors=tuple(teardown_errors),
    )
    try:
        conn.send(("result", report))
    except (BrokenPipeError, OSError):
        pass  # coordinator already gone; nothing left to report to


def _shard_worker(spec: _ShardSpec, conn) -> None:
    """Spawn target: run the shard, ship errors instead of dying silently."""
    try:
        profile_dir = os.environ.get("REPRO_WORKER_PROFILE")
        if profile_dir:
            import cProfile

            profiler = cProfile.Profile()
            profiler.enable()
            try:
                asyncio.run(_shard_main(spec, conn))
            finally:
                profiler.disable()
                profiler.dump_stats(
                    os.path.join(profile_dir, f"worker-{os.getpid()}.prof")
                )
        else:
            asyncio.run(_shard_main(spec, conn))
    except Exception:  # noqa: BLE001 - crossing a process boundary
        try:
            conn.send(("error", traceback.format_exc()))
        except (BrokenPipeError, OSError):
            pass
    finally:
        conn.close()


# ----------------------------------------------------------------------
# Coordinator side
# ----------------------------------------------------------------------
@dataclass
class _Worker:
    """Coordinator-side handle for one spawned shard."""

    index: int
    pids: tuple[int, ...]
    process: Any
    conn: Any
    alive: bool = True
    report: Optional[ShardReport] = None
    commits: dict[int, int] = field(default_factory=dict)


class ProcessCluster:
    """An n-replica cluster with one OS process per node (or shard).

    The multicore sibling of :class:`~repro.runner.live.TcpCluster`: the
    public surface (``start`` / ``run`` / ``run_until_commits`` / ``stop``,
    ``min_committed``, ``ledgers_are_consistent``, ``metrics``) mirrors it,
    so benchmarks and examples switch placement with one constructor.  The
    differences are inherent to the process boundary:

    * ``metrics`` holds the *merged* cluster-wide collector only after
      :meth:`stop` (during the run the parent sees ledger lengths, not
      events);
    * ``stop_when`` predicates receive the cluster and may consult
      :meth:`min_committed`, which refreshes at the status-poll cadence;
    * protocol traces (``config.record_trace``) stay inside the workers and
      are discarded — cross-process trace merge is not supported.

    Parameters
    ----------
    config:
        The scenario to run; ``n``, ``pacemaker``, ``delta``, ``seed``,
        ``crypto_backend`` and a named ``scenario``/``delay_model`` are
        honoured exactly as :class:`~repro.runner.live.TcpCluster` honours
        them.  The ``counting`` crypto backend is rejected: its digests are
        process-local interning tokens and cannot validate across nodes
        that do not share a heap.
    processes:
        Number of worker processes; defaults to one per node.  Fewer
        processes shard the nodes contiguously (``k`` nodes per worker) —
        useful when ``n`` exceeds the core count.
    codec:
        Wire-codec *name* (``"binary"``/``"json"``); codec instances do not
        cross the spawn boundary.
    transport:
        Inter-node fabric.  ``"tcp"`` (default) speaks length-prefixed
        frames over localhost sockets; ``"shm"`` moves frames through
        shared-memory SPSC rings (:class:`~repro.runtime.shm.ShmTransport`)
        — no per-frame syscalls, no kernel copies — which is the faster
        lane whenever the whole cluster shares a machine.  The parent
        creates one segment per directed node pair before spawning and is
        the only process that unlinks them.
    ring_bytes:
        Per-directed-pair ring capacity for ``transport="shm"`` (a frame
        that outgrows the free space is dropped and counted, never blocked
        on).
    """

    def __init__(
        self,
        config: ScenarioConfig,
        host: str = "127.0.0.1",
        codec: Optional[str] = None,
        processes: Optional[int] = None,
        connect_timeout: float = 10.0,
        coalesce_writes: bool = True,
        status_interval: float = 0.05,
        worker_poll: float = 0.02,
        bootstrap_timeout: float = 120.0,
        teardown_timeout: float = 30.0,
        transport: str = "tcp",
        ring_bytes: int = DEFAULT_RING_BYTES,
    ) -> None:
        if codec is not None and not isinstance(codec, str):
            raise ConfigurationError(
                "ProcessCluster takes a codec *name* (codec instances do not "
                "survive the spawn pickle); pass \"binary\" or \"json\""
            )
        if config.crypto_backend == "counting":
            raise ConfigurationError(
                "the counting crypto backend interns digests per process and "
                "cannot validate across OS processes; use \"hashing\" or "
                "\"interned\" for process placement"
            )
        if processes is not None and processes < 1:
            raise ConfigurationError(f"processes must be >= 1, got {processes}")
        if transport not in ("tcp", "shm"):
            raise ConfigurationError(
                f"unknown transport {transport!r}; available: tcp, shm"
            )
        self.config = config
        self.transport = transport
        self.ring_bytes = ring_bytes
        self.host = host
        self.codec = codec
        self.processes = min(processes, config.n) if processes is not None else config.n
        self.connect_timeout = connect_timeout
        self.coalesce_writes = coalesce_writes
        self.status_interval = status_interval
        self.worker_poll = worker_poll
        self.bootstrap_timeout = bootstrap_timeout
        self.teardown_timeout = teardown_timeout
        #: Merged cluster-wide metrics; populated by :meth:`stop`.
        self.metrics = MetricsCollector()
        #: Committed block ids per pid, shipped back at :meth:`stop`.
        self.ledger_ids: dict[int, tuple[str, ...]] = {}
        #: KV state digests / apply chains per pid, shipped back at
        #: :meth:`stop` (empty when no client workload was configured).
        self.kv_state_digests: dict[int, str] = {}
        self.kv_apply_chains: dict[int, tuple[str, ...]] = {}
        #: Errors surfaced during teardown: transport ``last_errors`` from
        #: every node, plus coordinator-observed worker failures (crashes,
        #: missing reports, non-zero exit codes).
        self.teardown_errors: list[str] = []
        #: Total frames lost to exhausted connect windows, cluster-wide.
        self.frames_dropped = 0
        #: Sum of every node runtime's ``events_processed``.
        self.events_processed = 0
        #: Wire totals across all nodes (populated by :meth:`stop`).
        self.messages_sent = 0
        self.messages_delivered = 0
        self._workers: list[_Worker] = []
        self._stack: Optional[tuple] = None
        self._segments: list = []  # parent-owned shm ring segments
        self._shm_token: Optional[str] = None
        self._started = False
        self._stopped = False
        self._status_due = 0.0
        self._status_outstanding = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Spawn the workers and run the address/ready/go bootstrap dance."""
        if self._started:
            return
        from repro.runner.live import _build_protocol_stack

        # Parent-side stack build: only protocol_config and the corruption
        # plan are kept (for summaries); the parent mints keys it never uses.
        self._stack = _build_protocol_stack(self.config)
        protocol_config = self._stack[0]
        pids = list(protocol_config.processor_ids)
        shards = self._partition(pids, self.processes)
        origin = time.monotonic()
        lifetime = self.config.duration + WORKER_LIFETIME_MARGIN
        ctx = multiprocessing.get_context("spawn")
        if self.transport == "shm":
            # The parent creates every directed-pair ring segment before the
            # first worker exists and remains their sole owner; workers only
            # attach by the deterministic names the token implies.
            self._shm_token = uuid.uuid4().hex[:12]
            self._segments = create_cluster_rings(
                self._shm_token, pids, self.ring_bytes
            )
        try:
            for index, shard in enumerate(shards):
                parent_conn, child_conn = ctx.Pipe(duplex=True)
                spec = _ShardSpec(
                    config=self.config,
                    pids=tuple(shard),
                    host=self.host,
                    codec=self.codec,
                    clock_origin=origin,
                    coalesce_writes=self.coalesce_writes,
                    connect_timeout=self.connect_timeout,
                    poll=self.worker_poll,
                    lifetime=lifetime,
                    transport=self.transport,
                    shm_token=self._shm_token,
                    ring_bytes=self.ring_bytes,
                )
                process = ctx.Process(
                    target=_shard_worker, args=(spec, child_conn), daemon=True,
                    name=f"repro-shard-{index}",
                )
                process.start()
                child_conn.close()
                self._workers.append(
                    _Worker(index=index, pids=tuple(shard), process=process, conn=parent_conn)
                )
            addresses: dict[int, tuple[str, int]] = {}
            fingerprints = []
            for worker in self._workers:
                message = await self._recv(worker, timeout=self.bootstrap_timeout)
                if message is None or message[0] != "addresses":
                    raise SimulationError(
                        f"worker {worker.index} (pids {worker.pids}) failed during "
                        f"bootstrap: {self._failure_reason(worker, message)}"
                    )
                addresses.update(message[1])
                fingerprints.append(message[2])
            if any(fp != fingerprints[0] for fp in fingerprints[1:]):
                raise ConfigurationError(
                    "spawned workers derived different signing keys — the key "
                    "ceremony is no longer deterministic under a fresh "
                    "interpreter (did module import start minting keys?)"
                )
            for worker in self._workers:
                worker.conn.send(("peers", addresses))
            for worker in self._workers:
                message = await self._recv(worker, timeout=self.bootstrap_timeout)
                if message is None or message[0] != "ready":
                    raise SimulationError(
                        f"worker {worker.index} (pids {worker.pids}) failed before "
                        f"start: {self._failure_reason(worker, message)}"
                    )
            for worker in self._workers:
                worker.conn.send(("go",))
        except Exception:
            self._terminate_all()
            self._release_segments()
            raise
        self._started = True

    async def run(
        self,
        duration: float,
        stop_when: Optional[Callable[["ProcessCluster"], bool]] = None,
        poll: float = 0.02,
    ) -> None:
        """Run for ``duration`` wall seconds (or until ``stop_when(cluster)``).

        The predicate is evaluated at the status-poll cadence against the
        freshest per-node ledger lengths the workers reported.
        """
        await self.start()
        loop = asyncio.get_running_loop()
        deadline = loop.time() + duration
        while loop.time() < deadline:
            await asyncio.sleep(min(poll, max(deadline - loop.time(), 0.0)))
            await self._refresh_status()
            if stop_when is not None and stop_when(self):
                return
            if not any(worker.alive for worker in self._workers):
                return  # every worker died; nothing left to wait for

    async def run_until_commits(
        self, blocks: int, timeout: float, poll: float = 0.02
    ) -> int:
        """Run until every ledger holds ``blocks`` commits (or ``timeout``
        wall seconds); returns the final minimum ledger length."""
        await self.run(
            timeout, stop_when=lambda c: c.min_committed() >= blocks, poll=poll
        )
        return self.min_committed()

    async def stop(self) -> None:
        """Stop every worker, collect reports, and merge the cluster result.

        Never hangs on a crashed worker: reports are awaited under
        ``teardown_timeout`` and stragglers are terminated, with the
        failure recorded in :attr:`teardown_errors` rather than raised —
        a dead node is data, not an excuse to lose the others' results.
        """
        if self._stopped:
            return
        self._stopped = True
        for worker in self._workers:
            if worker.alive:
                try:
                    worker.conn.send(("stop",))
                except (BrokenPipeError, OSError):
                    worker.alive = False
        reports: list[ShardReport] = []
        for worker in self._workers:
            report = await self._await_report(worker)
            if report is not None:
                reports.append(report)
                worker.report = report
        for worker in self._workers:
            worker.process.join(timeout=self.teardown_timeout)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=5.0)
                self.teardown_errors.append(
                    f"worker {worker.index} (pids {worker.pids}): did not exit; terminated"
                )
            elif worker.report is None:
                self.teardown_errors.append(
                    f"worker {worker.index} (pids {worker.pids}): exited with code "
                    f"{worker.process.exitcode} without reporting results"
                )
            worker.conn.close()
        self._release_segments()
        self._merge(reports)

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------
    def min_committed(self) -> int:
        """Shortest known ledger across the cluster (status-poll freshness).

        Nodes whose worker died report their last known length; a cluster
        that has not completed its first status round reports 0.
        """
        commits = {}
        for worker in self._workers:
            commits.update(worker.commits)
        if len(commits) < self.config.n:
            return 0
        return min(commits.values())

    def ledgers_are_consistent(self) -> bool:
        """Safety over the collected ledgers (available after :meth:`stop`)."""
        if not self._stopped:
            raise SimulationError(
                "ledgers_are_consistent() needs the collected ledgers; call "
                "stop() first (use min_committed() for live progress)"
            )
        return sequences_consistent(self.ledger_ids.values())

    def kv_consistent(self) -> bool:
        """State-machine safety over the shipped apply chains (after :meth:`stop`).

        Trivially true when no workload ran (nothing was shipped).
        """
        if not self._stopped:
            raise SimulationError("kv_consistent() needs the shipped chains; call stop() first")
        from repro.statemachine.kvstore import apply_chains_consistent

        return apply_chains_consistent(self.kv_apply_chains.values())

    def kv_digests(self) -> dict[int, str]:
        """Per-pid KV state digests (after :meth:`stop`); TcpCluster-compatible."""
        if not self._stopped:
            raise SimulationError("kv_digests() needs the shipped state; call stop() first")
        return dict(self.kv_state_digests)

    def kv_chains(self) -> dict[int, tuple[str, ...]]:
        """Per-pid KV apply chains (after :meth:`stop`); TcpCluster-compatible."""
        if not self._stopped:
            raise SimulationError("kv_chains() needs the shipped state; call stop() first")
        return dict(self.kv_apply_chains)

    def result(self):
        """The merged :class:`~repro.runner.live.LiveRunResult` (after :meth:`stop`)."""
        if not self._stopped:
            raise SimulationError("result() is available after stop()")
        from repro.runner.live import LiveRunResult

        assert self._stack is not None
        protocol_config, _, corruption = self._stack[0], self._stack[1], self._stack[2]
        return LiveRunResult(
            config=self.config,
            protocol_config=protocol_config,
            metrics=self.metrics,
            trace=TraceRecorder(enabled=False),
            replicas={},
            corruption=corruption,
            runtime=None,
            transport=None,
            ledger_block_ids=dict(self.ledger_ids),
            events=self.events_processed,
            kv_digests=dict(self.kv_state_digests),
            kv_chains=dict(self.kv_apply_chains),
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    @staticmethod
    def _partition(pids: Sequence[int], processes: int) -> list[list[int]]:
        """Contiguous near-equal shards, every shard non-empty."""
        base, extra = divmod(len(pids), processes)
        shards, cursor = [], 0
        for index in range(processes):
            size = base + (1 if index < extra else 0)
            shards.append(list(pids[cursor:cursor + size]))
            cursor += size
        return shards

    async def _recv(self, worker: _Worker, timeout: float):
        """Next message from a worker, or ``None`` if it died/timed out."""
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout
        while True:
            if not worker.alive:
                return None
            try:
                if worker.conn.poll():
                    return worker.conn.recv()
                if not worker.process.is_alive():
                    # Dead and the pipe is drained: nothing more will come.
                    worker.alive = False
                    return None
            except (EOFError, OSError):
                worker.alive = False
                return None
            if loop.time() >= deadline:
                return None
            await asyncio.sleep(self.worker_poll)

    def _failure_reason(self, worker: _Worker, message) -> str:
        if message is not None and message[0] == "error":
            return f"worker raised:\n{message[1]}"
        if not worker.process.is_alive():
            return f"process died (exit code {worker.process.exitcode})"
        return "bootstrap timed out"

    async def _refresh_status(self) -> None:
        """One status round across the alive workers, rate-limited."""
        loop = asyncio.get_running_loop()
        if loop.time() < self._status_due:
            return
        self._status_due = loop.time() + self.status_interval
        polled = []
        for worker in self._workers:
            if not worker.alive:
                continue
            try:
                worker.conn.send(("status",))
                polled.append(worker)
            except (BrokenPipeError, OSError):
                worker.alive = False
                self.teardown_errors.append(
                    f"worker {worker.index} (pids {worker.pids}): control channel "
                    f"broke mid-run (exit code {worker.process.exitcode})"
                )
        for worker in polled:
            # Workers answer within one of their poll cycles; a short wait
            # keeps a wedged worker from stalling the coordinator's run loop.
            message = await self._recv(
                worker, timeout=max(1.0, 10 * self.status_interval)
            )
            if message is None:
                if not worker.alive:
                    self.teardown_errors.append(
                        f"worker {worker.index} (pids {worker.pids}): died mid-run "
                        f"(exit code {worker.process.exitcode})"
                    )
                continue
            if message[0] == "status":
                worker.commits.update(message[1])
            elif message[0] == "error":
                worker.alive = False
                self.teardown_errors.append(
                    f"worker {worker.index} (pids {worker.pids}): {message[1]}"
                )

    async def _await_report(self, worker: _Worker) -> Optional[ShardReport]:
        """Wait for a worker's ``("result", ...)``, skipping stale replies."""
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.teardown_timeout
        while loop.time() < deadline:
            message = await self._recv(worker, timeout=max(deadline - loop.time(), 0.01))
            if message is None:
                break
            if message[0] == "result":
                return message[1]
            if message[0] == "error":
                self.teardown_errors.append(
                    f"worker {worker.index} (pids {worker.pids}): {message[1]}"
                )
                return None
            # stale status replies drain here
        return None

    def _terminate_all(self) -> None:
        for worker in self._workers:
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=5.0)
            worker.conn.close()

    def _release_segments(self) -> None:
        """Unlink the parent-owned shm ring segments (idempotent).

        Safe while workers are still attached — unlinking removes the name,
        existing mappings stay valid until each worker closes its own.
        """
        if self._segments:
            destroy_cluster_rings(self._segments)
            self._segments = []

    def _merge(self, reports: list[ShardReport]) -> None:
        """Fold the shard reports into the cluster-wide result surface."""
        self.metrics = merge_metrics_states([r.metrics_state for r in reports])
        for report in reports:
            self.ledger_ids.update(report.ledger_ids)
            self.kv_state_digests.update(report.kv_digests)
            self.kv_apply_chains.update(report.kv_chains)
            self.events_processed += report.events_processed
            self.messages_sent += report.messages_sent
            self.messages_delivered += report.messages_delivered
            self.frames_dropped += report.frames_dropped
            self.teardown_errors.extend(report.teardown_errors)
        # merge_metrics_states already folded each shard's fault_counts
        # snapshot (which includes its frames_dropped) into the merged
        # collector, so RunMetrics carries them without further wiring.

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "stopped" if self._stopped else ("running" if self._started else "new")
        return (
            f"ProcessCluster(n={self.config.n}, processes={self.processes}, "
            f"{state}, min_committed={self.min_committed()}, "
            f"frames_dropped={self.frames_dropped}, "
            f"teardown_errors={len(self.teardown_errors)})"
        )
