"""Declarative experiment campaigns.

A :class:`Campaign` is the high-level entry point of the reproduction: it
names a cartesian grid of parameter points (:class:`Sweep` axes layered on a
``fixed`` base), a module-level ``build`` function turning one parameter
point into a :class:`~repro.experiments.scenario.ScenarioConfig`, and how to
execute the expanded cells (serial or process-pool, optionally backed by an
on-disk result cache).

Design constraints that shaped this module:

* **Stable run ids.**  ``expand()`` is deterministic: the same campaign
  produces the same cells in the same order with the same
  ``name[field=value,...]`` ids, so logs, caches and cross-backend
  comparisons line up.
* **Picklability by construction.**  Workers receive ``(build, params)`` —
  a module-level function (pickled by reference) and plain parameter values
  — and construct the ``ScenarioConfig`` *inside* the worker.  Configs may
  therefore contain closures (e.g. :class:`~repro.sim.network.AdversarialDelay`)
  without breaking the process-pool backend.
* **Content-addressed caching.**  Each cell's cache key is a hash of the
  *expanded* configuration (including corruption plan and delay-model
  descriptions) plus the package version, so re-running a campaign only
  executes missing cells and code upgrades invalidate stale results.
"""

from __future__ import annotations

import hashlib
import json
import re
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping, Optional, TYPE_CHECKING

from repro.errors import ConfigurationError
from repro.version import __version__

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.experiments.scenario import ScenarioConfig
    from repro.runner.cache import ResultCache
    from repro.runner.executor import CampaignResult

#: A module-level function mapping one parameter point to a scenario config.
#: (The config type is a forward reference: the experiments package imports
#: this module, so importing it back at runtime would create a cycle.)
ConfigBuilder = Callable[[dict[str, Any]], "ScenarioConfig"]


@dataclass(frozen=True)
class Sweep:
    """One axis of a campaign grid: a parameter name and its values, in order.

    Parameters
    ----------
    field_name:
        The parameter this axis sweeps (a key in the builder's params dict).
    values:
        The values, in sweep order; must be non-empty.
    """

    field: str
    values: tuple[Any, ...]

    def __init__(self, field_name: str, values: Iterable[Any]) -> None:
        object.__setattr__(self, "field", field_name)
        object.__setattr__(self, "values", tuple(values))
        if not self.values:
            raise ConfigurationError(f"sweep over {field_name!r} has no values")


@dataclass(frozen=True)
class RunSpec:
    """One expanded campaign cell, ready to execute.

    Attributes
    ----------
    run_id:
        Stable human-readable id: ``campaign-name[field=value,...]``.
    params:
        The parameter point (fixed values merged with one grid point).
    config:
        The scenario config the builder produced for ``params``.
    key:
        Content hash identifying this cell's results across campaign runs
        (see :func:`spec_key`).
    """

    run_id: str
    params: dict[str, Any] = field(compare=False)
    config: ScenarioConfig = field(compare=False)
    key: str = ""


def _format_value(value: Any) -> str:
    if isinstance(value, float):
        return repr(value)
    return str(value)


_ADDRESS_REPR = re.compile(r" at 0x[0-9a-fA-F]+>")


def _stable_repr(value: Any, field_name: str) -> Optional[str]:
    """``repr(value)``, rejecting default object reprs.

    A repr embedding a memory address changes on every process start, which
    would silently turn every cache lookup into a miss; failing loudly here
    points the user at the real fix (a parameter-faithful ``__repr__``).
    """
    if value is None:
        return None
    return _stable_description(repr(value), field_name)


def _stable_description(text: str, field_name: str) -> str:
    """Validate that a description identifies its object's parameters.

    Two classes of description cannot: default object reprs (they embed a
    memory address, different on every process start — every lookup misses)
    and closure/lambda qualnames (identical for every closure a factory
    produces — different configurations silently share a cache entry).
    Both are rejected loudly; the fix is always a parameter-faithful
    ``__repr__``/``describe()``/``name``.
    """
    if _ADDRESS_REPR.search(text) or "<lambda>" in text or "<locals>" in text:
        raise ConfigurationError(
            f"{field_name} has no stable description (got {text!r}); define a "
            "__repr__/describe()/name faithful to its parameters so campaign "
            "run keys and cache lookups are sound"
        )
    return text


def config_fingerprint(config: "ScenarioConfig") -> dict[str, Any]:
    """A JSON-safe content description of an expanded scenario config.

    Nested strategy objects are described rather than serialized: corruption
    plans by their corrupted ids and per-behaviour ``describe()`` strings,
    delay models by their :meth:`~repro.sim.network.DelayModel.describe`
    string.  Custom behaviours and delay models must therefore make
    ``describe()`` faithful to their parameters for caching to be sound.

    Parameters
    ----------
    config:
        The fully expanded scenario configuration.

    Returns
    -------
    dict
        A JSON-serializable description covering every field that affects
        the run's outcome (including named scenario and its parameters).

    Raises
    ------
    ConfigurationError
        If a nested object has no parameter-faithful description (default
        object repr, lambda/closure qualname).
    """
    corruption = config.corruption
    delay_model = config.delay_model
    return {
        "n": config.n,
        "pacemaker": config.pacemaker,
        "pacemaker_config": _stable_repr(config.pacemaker_config, "pacemaker_config"),
        "delta": config.delta,
        "actual_delay": config.actual_delay,
        "gst": config.gst,
        "duration": config.duration,
        "x": config.x,
        "seed": config.seed,
        "record_trace": config.record_trace,
        "pre_gst_max_delay": config.pre_gst_max_delay,
        "min_delay": config.min_delay,
        "scenario": config.scenario,
        "scenario_params": dict(sorted(config.scenario_params.items())),
        "crypto_backend": config.crypto_backend,
        "corruption": None
        if corruption is None
        else {
            str(pid): behaviour.describe()
            for pid, behaviour in sorted(corruption.behaviours.items())
        },
        "delay_model": None
        if delay_model is None
        else _stable_description(delay_model.describe(), "delay_model"),
    }


def spec_key(config: ScenarioConfig, max_events: Optional[int] = None) -> str:
    """Content hash identifying one cell's results across campaign runs.

    Parameters
    ----------
    config:
        The fully expanded scenario configuration.
    max_events:
        The campaign's per-run event budget, part of the key because it
        changes the result.

    Returns
    -------
    str
        A SHA-256 hex digest over the canonical JSON of
        :func:`config_fingerprint` plus the package version (so code
        upgrades invalidate stale cache entries).
    """
    document = {
        "version": __version__,
        "max_events": max_events,
        "config": config_fingerprint(config),
    }
    canonical = json.dumps(document, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class Campaign:
    """A named, declarative grid of scenarios.

    Attributes
    ----------
    name:
        Campaign name; prefixes every run id.
    build:
        Module-level function mapping a parameter dict (fixed values merged
        with one grid point) to a :class:`ScenarioConfig`.  It must be
        importable in worker processes — lambdas and closures will fail the
        process-pool backend with a pickling error.
    sweeps:
        The grid axes.  Expansion is the cartesian product in declaration
        order, last axis fastest (like nested for-loops).
    fixed:
        Parameter values shared by every cell (overridden by any sweep axis
        of the same name — declaring both is rejected).
    max_events:
        Optional per-run event budget forwarded to ``run_scenario``.
    """

    name: str
    build: ConfigBuilder
    sweeps: tuple[Sweep, ...] = ()
    fixed: Mapping[str, Any] = field(default_factory=dict)
    max_events: Optional[int] = None

    def __post_init__(self) -> None:
        seen: set[str] = set(self.fixed)
        for sweep in self.sweeps:
            if sweep.field in seen:
                raise ConfigurationError(
                    f"campaign {self.name!r} declares parameter {sweep.field!r} twice"
                )
            seen.add(sweep.field)

    # ------------------------------------------------------------------
    # Expansion
    # ------------------------------------------------------------------
    def points(self) -> list[dict[str, Any]]:
        """The cartesian grid as parameter dicts, in deterministic order.

        Returns
        -------
        list[dict]
            One dict per cell (fixed values merged with the grid point),
            in declaration order with the last axis fastest.
        """
        grid: list[dict[str, Any]] = [dict(self.fixed)]
        for sweep in self.sweeps:
            grid = [
                {**point, sweep.field: value} for point in grid for value in sweep.values
            ]
        return grid

    def run_id_for(self, params: Mapping[str, Any]) -> str:
        """The stable id of the cell at ``params`` (swept fields only).

        Returns
        -------
        str
            ``name[field=value,...]`` over the swept fields in axis order,
            or just ``name`` for a sweep-less campaign.
        """
        cell = ",".join(
            f"{sweep.field}={_format_value(params[sweep.field])}" for sweep in self.sweeps
        )
        return f"{self.name}[{cell}]" if cell else self.name

    def expand(self) -> list[RunSpec]:
        """Expand the grid into concrete, content-keyed run specs.

        Parameter values are validated as JSON-serializable here — before
        any simulation runs — because they travel in every
        :class:`~repro.runner.record.RunRecord` and cache entry; failing at
        ``cache.put`` time would discard completed work.

        Returns
        -------
        list[RunSpec]
            One spec per cell, in :meth:`points` order.

        Raises
        ------
        ConfigurationError
            If a parameter value is not JSON-serializable, or an expanded
            config has no stable fingerprint.
        """
        specs = []
        for params in self.points():
            try:
                json.dumps(params)
            except (TypeError, ValueError) as exc:
                raise ConfigurationError(
                    f"campaign {self.name!r}: parameter values must be "
                    f"JSON-serializable (records and cache entries carry them): {exc}"
                ) from None
            config = self.build(params)
            specs.append(
                RunSpec(
                    run_id=self.run_id_for(params),
                    params=params,
                    config=config,
                    key=spec_key(config, self.max_events),
                )
            )
        return specs

    def __len__(self) -> int:
        size = 1
        for sweep in self.sweeps:
            size *= len(sweep.values)
        return size

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(
        self,
        backend: str = "serial",
        workers: Optional[int] = None,
        cache: Optional["ResultCache | str"] = None,
        live_executor: Optional[Any] = None,
    ) -> "CampaignResult":
        """Execute every cell and return the campaign's records.

        Parameters
        ----------
        backend:
            ``"serial"`` (deterministic, in-process; the default),
            ``"process"`` (a ``concurrent.futures`` process pool), or
            ``"live"`` (the asyncio runtime under a deterministic virtual
            clock; see :mod:`repro.runner.live`).
        workers:
            Worker count for the process backend (``None`` = executor
            default, i.e. the CPU count).
        cache:
            A :class:`ResultCache`, a directory path, or ``None`` to
            disable caching.  Live cells are cached under ``live:``-salted
            keys, separate from simulated cells of the same parameters.
        live_executor:
            Optional :class:`~repro.runner.live.LiveExecutor` customising
            the live backend (e.g. transport jitter).

        Returns
        -------
        CampaignResult
            All records in expansion order, with cache-hit accounting.
        """
        from repro.runner.executor import run_campaign

        return run_campaign(
            self, backend=backend, workers=workers, cache=cache,
            live_executor=live_executor,
        )
