"""The runtime seam: what a protocol process may ask of its environment.

Everything below the consensus engine and the pacemakers — virtual-time
simulation, an asyncio event loop, real sockets — is reached exclusively
through a :class:`Runtime`.  The protocol core never imports a simulator,
an event loop or a socket; it sends (:meth:`Runtime.send` /
:meth:`Runtime.broadcast`), reads time (:attr:`Runtime.now`), arms timers
(:meth:`Runtime.set_timer` / :meth:`Runtime.set_timer_at`, both returning a
cancellable :class:`TimerHandle`) and defers work (:meth:`Runtime.spawn`).

Two families implement the interface:

* :class:`~repro.runtime.simulation.SimRuntime` — a thin adapter over the
  discrete-event :class:`~repro.sim.events.Simulator` and the
  partial-synchrony :class:`~repro.sim.network.Network`.  Every call is a
  direct pass-through, so a refactored protocol produces byte-for-byte the
  same event ordering the pre-runtime code did.
* :class:`~repro.runtime.asyncio_runtime.AsyncioRuntime` — runs the same
  protocol objects on an asyncio event loop, over a pluggable
  :class:`~repro.runtime.transports.Transport` (in-memory or TCP), against
  either a deterministic virtual clock or the wall clock.

The contract the protocol core relies on (and every runtime must honour):

1. **Single-threaded callbacks.**  All protocol callbacks — message
   deliveries, timer fires — run sequentially; no two callbacks of the same
   process ever overlap.
2. **Timers never fire early** and fire at most once unless cancelled.
3. **Self-messages are delivered immediately** (the paper's Section-4
   convention): a process broadcasting receives its own copy at the
   sending instant, before any later-scheduled work.
4. **Time is monotone**: ``now`` never decreases between callbacks.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Callable, Optional, Protocol, Sequence, runtime_checkable


@runtime_checkable
class TimerHandle(Protocol):
    """Handle to an armed timer: cancellable, and inspectable while pending.

    :class:`~repro.sim.events.EventHandle` satisfies this protocol, as do
    the asyncio-backed handles; protocol code only ever calls
    :meth:`cancel` and reads :attr:`pending`.
    """

    def cancel(self) -> None:
        """Prevent the timer from firing.  Safe to call more than once."""
        ...

    @property
    def pending(self) -> bool:
        """True while the timer has neither fired nor been cancelled."""
        ...


class Clock(ABC):
    """A source of the runtime's notion of "now".

    The protocol core reads time only through :attr:`Runtime.now`, which
    delegates here.  Simulated runs use the simulator's virtual clock,
    deterministic asyncio runs a :class:`~repro.runtime.asyncio_runtime.VirtualClock`,
    and live clusters a :class:`~repro.runtime.asyncio_runtime.MonotonicClock`
    (``time.monotonic`` re-zeroed at construction, so runs start near 0.0
    like simulated ones).
    """

    @property
    @abstractmethod
    def now(self) -> float:
        """Current time in seconds (virtual or wall, depending on the clock)."""


class Runtime(ABC):
    """Everything a protocol process may ask of its environment.

    Implementations also expose two conventional attributes the interface
    does not abstract over:

    * ``rng`` — a seeded :class:`random.Random`; all protocol-visible
      randomness must flow through it so runs stay reproducible.
    * ``trace`` — an optional :class:`~repro.sim.tracing.TraceRecorder`.
    """

    # ------------------------------------------------------------------
    # Time
    # ------------------------------------------------------------------
    @property
    @abstractmethod
    def now(self) -> float:
        """Current runtime time (virtual in simulation, wall-clock when live)."""

    # ------------------------------------------------------------------
    # Timers
    # ------------------------------------------------------------------
    @abstractmethod
    def set_timer(
        self, delay: float, callback: Callable[..., None], *args: Any, label: str = ""
    ) -> TimerHandle:
        """Run ``callback(*args)`` ``delay`` seconds from now; cancellable."""

    @abstractmethod
    def set_timer_at(
        self, time: float, callback: Callable[..., None], *args: Any, label: str = ""
    ) -> TimerHandle:
        """Run ``callback(*args)`` at absolute runtime time ``time``; cancellable."""

    def call_after(self, delay: float, callback: Callable[..., None], *args: Any) -> None:
        """Fire-and-forget :meth:`set_timer`: no handle, no cancellation.

        The delivery fast lane (mirroring
        :meth:`~repro.sim.events.Simulator.schedule_fired`); runtimes with a
        cheaper no-handle path override it.
        """
        self.set_timer(delay, callback, *args)

    def spawn(self, callback: Callable[..., None], *args: Any) -> None:
        """Run ``callback(*args)`` soon, after the current callback returns.

        The runtime equivalent of ``call_soon``: used to break re-entrancy
        (e.g. a local-clock timer whose target is already reached still
        fires asynchronously).
        """
        self.call_after(0.0, callback, *args)

    # ------------------------------------------------------------------
    # Messaging
    # ------------------------------------------------------------------
    @abstractmethod
    def send(self, sender: int, recipient: int, payload: Any) -> None:
        """Send ``payload`` from processor ``sender`` to ``recipient``."""

    @abstractmethod
    def broadcast(self, sender: int, payload: Any) -> None:
        """Send ``payload`` from ``sender`` to every processor, including itself."""

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    @abstractmethod
    def register(self, process: Any) -> None:
        """Attach a process (anything with ``pid`` and ``deliver(payload, sender)``)."""

    @property
    @abstractmethod
    def process_ids(self) -> Sequence[int]:
        """Sorted ids of every addressable processor (local and remote)."""


@dataclass
class RuntimeContext:
    """The handles a :class:`~repro.sim.process.Process` needs, runtime-agnostic.

    The live-runtime counterpart of :class:`~repro.sim.process.SimContext`
    (which additionally carries the simulator and network for sim-only
    tooling).  Both expose the same two attributes the process layer reads:
    ``runtime`` and ``trace``.
    """

    runtime: Runtime
    trace: Optional[Any] = None

    @property
    def now(self) -> float:
        """Current runtime time."""
        return self.runtime.now
