"""``TcpTransport``: one cluster node speaking length-prefixed frames over TCP.

Pyre-style seam: the replica's only I/O surface is ``send``/``broadcast``,
and everything network-shaped — servers, connections, framing, reconnects —
lives here.  Each node runs

* one ``asyncio`` **server** accepting inbound peer connections, whose
  reader coroutines decode frames onto the node's inbox,
* one lazily started **writer task per peer**, owning an outbound queue and
  the (re)connect loop, so ``send`` never blocks the protocol callback that
  called it, and
* one **pump task** — *the replica's task* — draining the inbox and feeding
  ``process.deliver`` one message at a time, which serialises the replica's
  protocol callbacks exactly like the simulator does.

Frames are ``4-byte big-endian length || JSON body`` (see
:mod:`repro.runtime.codec`).  Ports may be ephemeral: start the server
first (:meth:`TcpTransport.start_server`), read the bound
:attr:`TcpTransport.address`, then exchange the address map via
:meth:`TcpTransport.set_peers` — ``examples/live_cluster.py`` and
:class:`~repro.runner.live.TcpCluster` do exactly this dance.
"""

from __future__ import annotations

import asyncio
from typing import Any, Mapping, Optional, Sequence, Union

from repro.errors import ConfigurationError, SimulationError
from repro.runtime.codec import (
    LENGTH_PREFIX_BYTES,
    MAX_FRAME_BYTES,
    WireCodec,
    WireCodecError,
    default_binary_codec,
    make_codec,
)
from repro.runtime.transports import Transport, TransportEnvelope


class TcpTransport(Transport):
    """TCP message fabric for a single node of a live cluster.

    Parameters
    ----------
    pid:
        The processor id of the (single) local process this node hosts.
    host, port:
        Listen address.  ``port=0`` binds an ephemeral port; read
        :attr:`address` after :meth:`start_server`.
    codec:
        Wire codec: a :class:`~repro.runtime.codec.WireCodec` instance or a
        codec name (``"binary"``/``"json"``, see
        :func:`~repro.runtime.codec.make_codec`).  Defaults to
        :func:`~repro.runtime.codec.default_binary_codec` — the compact
        binary format over every message type the library defines.  All
        nodes of one cluster must use the same codec.
    connect_timeout:
        How long a writer keeps retrying each (re)connect window to a peer
        before giving up (covers the all-nodes-starting-at-once race and
        peer restarts).  A writer that exhausts the window dies — its
        in-flight frames are counted in :attr:`frames_dropped` — and is
        respawned by the next ``send`` to that peer, so an outage longer
        than the window delays traffic rather than partitioning the node
        permanently.
    coalesce_writes:
        When true (the default), a writer that wakes up with several frames
        queued flushes them all in **one** ``write()`` + ``drain()`` instead
        of one per frame.  The byte stream is identical — frames are
        length-prefixed and concatenated in queue order, untouched — so the
        receiver cannot tell the difference; only the syscall count drops.
        ``False`` selects the per-frame reference path (the
        ``Network.batch_deliveries`` pattern: the toggle exists so the
        equivalence is testable, see ``tests/test_tcp_batching.py``).
    """

    #: Upper bound on frames flushed per coalesced ``write()`` — bounds the
    #: size of the held batch a reconnecting writer must resend.
    MAX_COALESCED_FRAMES = 512

    def __init__(
        self,
        pid: int,
        host: str = "127.0.0.1",
        port: int = 0,
        codec: Union[WireCodec, str, None] = None,
        connect_timeout: float = 10.0,
        coalesce_writes: bool = True,
    ) -> None:
        super().__init__()
        self.pid = pid
        self.host = host
        self.port = port
        if codec is None:
            self.codec = default_binary_codec()
        elif isinstance(codec, str):
            self.codec = make_codec(codec)
        else:
            self.codec = codec
        self.connect_timeout = connect_timeout
        self.coalesce_writes = coalesce_writes
        #: Frames this node gave up on: a writer that exhausted its connect
        #: window died holding them.  Folded into a run's fault counts by
        #: ``MetricsCollector.attach_transport`` so silently lost frames
        #: always leave a trace in ``RunMetrics``.
        self.frames_dropped = 0
        #: Non-cancellation exceptions surfaced while tearing the node down
        #: (``{task name}: {error!r}`` strings).  Teardown used to swallow
        #: these; clusters now aggregate them into ``teardown_errors``.
        self.last_errors: list[str] = []
        self._peers: dict[int, tuple[str, int]] = {}
        self._process: Any = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._inbox: Optional[asyncio.Queue] = None
        self._outboxes: dict[int, asyncio.Queue] = {}
        self._writers: dict[int, asyncio.Task] = {}
        self._pump_task: Optional[asyncio.Task] = None
        self._reader_tasks: set[asyncio.Task] = set()
        self._connections: dict[int, asyncio.StreamWriter] = {}

    # ------------------------------------------------------------------
    # Addressing
    # ------------------------------------------------------------------
    def register(self, process: Any) -> None:
        """Attach the node's local process (exactly one per transport)."""
        if process.pid != self.pid:
            raise ConfigurationError(
                f"TcpTransport for pid {self.pid} cannot host process {process.pid}; "
                "one transport per node"
            )
        if self._process is not None:
            raise SimulationError(f"process id {self.pid} registered twice")
        self._process = process

    def set_peers(self, peers: Mapping[int, tuple[str, int]]) -> None:
        """Install the full ``pid -> (host, port)`` map (own entry ignored)."""
        self._peers = {pid: tuple(addr) for pid, addr in peers.items() if pid != self.pid}

    @property
    def process_ids(self) -> Sequence[int]:
        """Sorted ids of the whole cluster (self plus peers)."""
        return sorted({self.pid, *self._peers})

    @property
    def address(self) -> tuple[str, int]:
        """The actually bound listen address (resolves ``port=0``)."""
        if self._server is None:
            return (self.host, self.port)
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return (host, port)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start_server(self) -> tuple[str, int]:
        """Bind and start the inbound server; returns the bound address."""
        if self._server is None:
            self._inbox = asyncio.Queue()
            self._server = await asyncio.start_server(self._on_connection, self.host, self.port)
        return self.address

    async def start(self) -> None:
        """Start the server (if needed) and the replica's pump task."""
        await self.start_server()
        if self._pump_task is None:
            self._pump_task = asyncio.create_task(
                self._pump(), name=f"tcp-pump-{self.pid}"
            )

    async def stop(self) -> None:
        """Tear the node down: own tasks cancelled, peers signalled via EOF.

        Reader tasks (owned by asyncio's stream server) are *not* cancelled
        directly — cancelling a client-handler task trips asyncio's
        ``connection_made`` done-callback into re-raising the cancellation.
        Closing the outbound connections instead EOFs the peers' readers
        (and theirs ours, when every node stops), which is the clean exit
        path ``_on_connection`` already handles; stragglers are cancelled
        only after a grace wait.

        Teardown never raises, but it no longer *hides* either: a pump or
        writer task that died of anything other than the cancellation we
        just requested records the error in :attr:`last_errors`, so cluster
        shutdown can report real bugs instead of swallowing them.
        """
        own = [self._pump_task, *self._writers.values()]
        for task in own:
            if task is not None:
                task.cancel()
        for task in own:
            if task is None:
                continue
            try:
                await task
            except asyncio.CancelledError:
                pass
            except Exception as exc:  # noqa: BLE001 - collected, not hidden
                self.last_errors.append(f"{task.get_name()}: {exc!r}")
        self._pump_task = None
        self._writers.clear()
        for writer in self._connections.values():
            writer.close()
        self._connections.clear()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._reader_tasks:
            _, pending = await asyncio.wait(list(self._reader_tasks), timeout=0.5)
            for task in pending:
                task.cancel()
        self._reader_tasks.clear()

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(self, sender: int, recipient: int, payload: Any) -> None:
        """Deliver locally (immediate) or frame and queue for a peer."""
        if recipient == self.pid:
            self._deliver_local(sender, payload)
            return
        if recipient not in self._peers:
            raise SimulationError(f"unknown recipient {recipient}")
        self._mint(sender, recipient, payload, self.runtime.now)
        frame = bytearray()
        self.codec.encode_into(sender, payload, frame)
        self._enqueue_frame(recipient, frame)

    def broadcast(self, sender: int, payload: Any, include_self: bool = True) -> None:
        """Send to every processor, encoding the frame **once** for all peers.

        The per-peer ``send`` loop of the base class framed the identical
        payload once per recipient — an O(n) encode per broadcast.  Here the
        frame bytes are produced once (``encode_into`` a single buffer, no
        intermediate ``bytes``) and the same object is enqueued on every
        peer's outbox (outboxes never mutate frames), so a broadcast costs
        one encode regardless of cluster size.
        """
        frame: Optional[bytearray] = None
        now = self.runtime.now
        for pid in self.process_ids:
            if not include_self and pid == sender:
                continue
            if pid == self.pid:
                self._deliver_local(sender, payload)
                continue
            if frame is None:
                frame = bytearray()
                self.codec.encode_into(sender, payload, frame)
            self._mint(sender, pid, payload, now)
            self._enqueue_frame(pid, frame)

    def _deliver_local(self, sender: int, payload: Any) -> None:
        """Immediate loopback delivery to the hosted process."""
        envelope = self._mint(sender, self.pid, payload, self.runtime.now)
        if self._process is None:
            return
        self.runtime.call_after(0.0, self._delivered, envelope, self._process)

    def _enqueue_frame(self, recipient: int, frame: Union[bytes, bytearray]) -> None:
        """Queue encoded frame bytes for a peer and (re)spawn its writer task.

        Frames may be ``bytearray`` staging buffers from ``encode_into`` —
        they are never mutated after enqueue, and both the coalescing join
        and the asyncio transport accept any bytes-like object.
        """
        outbox = self._outboxes.get(recipient)
        if outbox is None:
            outbox = self._outboxes[recipient] = asyncio.Queue()
        outbox.put_nowait(frame)
        # Spawn the peer's writer task lazily — and respawn it if a previous
        # incarnation died (a peer down for longer than connect_timeout kills
        # its writer; the next send retries rather than leaving the node
        # silently partitioned from a peer that has since recovered).
        writer_task = self._writers.get(recipient)
        if writer_task is None or writer_task.done():
            self._writers[recipient] = asyncio.create_task(
                self._writer(recipient), name=f"tcp-writer-{self.pid}->{recipient}"
            )

    async def _connect(self, peer: int) -> asyncio.StreamWriter:
        """(Re)establish the outbound connection to ``peer``, with retries.

        Each (re)connection attempt window gets ``connect_timeout`` to
        succeed — this covers both the all-nodes-starting-at-once race and
        a peer restarting mid-run.
        """
        host, port = self._peers[peer]
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.connect_timeout
        while True:
            try:
                _, writer = await asyncio.open_connection(host, port)
            except OSError:
                if loop.time() >= deadline:
                    raise
                await asyncio.sleep(0.05)
            else:
                self._connections[peer] = writer
                return writer

    async def _writer(self, peer: int) -> None:
        """Own the outbound link to ``peer``: connect, drain the queue, reconnect.

        A dropped connection (peer restart, TCP reset) closes the stream,
        keeps the unsent frames, reconnects and resends them — the node is
        never silently partitioned from a peer that comes back.

        With :attr:`coalesce_writes` on, every wakeup greedily drains the
        outbox (up to :attr:`MAX_COALESCED_FRAMES`) and flushes the whole
        batch as a single ``write()`` + ``drain()``.  Frames are
        concatenated in queue order and never mutated, so the byte stream —
        and therefore the peer's decode sequence — is identical to the
        per-frame reference path; a protocol burst (a broadcast fan-in, a
        view change) costs one syscall pair instead of one per frame.

        A writer that exhausts its connect window gives up *audibly*: the
        frames it was holding are counted in :attr:`frames_dropped` before
        the task exits (the next ``send`` to the peer spawns a fresh
        incarnation).
        """
        outbox = self._outboxes[peer]
        writer: Optional[asyncio.StreamWriter] = None
        batch: list[Union[bytes, bytearray]] = []
        while True:
            if not batch:
                batch.append(await outbox.get())
                if self.coalesce_writes:
                    while len(batch) < self.MAX_COALESCED_FRAMES:
                        try:
                            batch.append(outbox.get_nowait())
                        except asyncio.QueueEmpty:
                            break
            if writer is None:
                try:
                    writer = await self._connect(peer)
                except OSError:
                    # Connect window exhausted: the held frames are lost.
                    # Count them — a silent drop here is indistinguishable
                    # from a network partition to everyone upstream.
                    self.frames_dropped += len(batch)
                    return
            try:
                writer.write(batch[0] if len(batch) == 1 else b"".join(batch))
                await writer.drain()
            except (ConnectionError, OSError):
                writer.close()
                if self._connections.get(peer) is writer:
                    del self._connections[peer]
                writer = None  # reconnect and resend the held batch
            else:
                batch.clear()

    # ------------------------------------------------------------------
    # Receiving
    # ------------------------------------------------------------------
    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._reader_tasks.add(task)
            task.add_done_callback(self._reader_tasks.discard)
        try:
            while True:
                prefix = await reader.readexactly(LENGTH_PREFIX_BYTES)
                length = int.from_bytes(prefix, "big")
                if length > MAX_FRAME_BYTES:
                    break  # malformed or hostile peer; drop the connection
                body = await reader.readexactly(length)
                try:
                    sender, payload = self.codec.decode_body(body)
                except WireCodecError:
                    break  # malformed or version-skewed peer; drop cleanly
                assert self._inbox is not None
                self._inbox.put_nowait((sender, payload))
        except (asyncio.IncompleteReadError, ConnectionError):
            pass  # peer went away; its writer will reconnect if it returns
        except asyncio.CancelledError:
            # Teardown-only cancellation (see stop()); completing normally
            # keeps asyncio's connection_made done-callback from re-raising
            # the cancellation into the loop's exception handler.
            pass
        finally:
            writer.close()

    async def _pump(self) -> None:
        """The replica's task: drain the inbox a batch per wakeup.

        Messages are still delivered strictly one at a time, in arrival
        order — the protocol callback discipline is untouched.  What changes
        is the wakeup accounting: a burst of arrivals (readers enqueue
        without yielding between frames of one TCP segment) is drained with
        ``get_nowait`` after the first ``await``, costing one queue wakeup
        per batch instead of one per message.
        """
        assert self._inbox is not None
        inbox = self._inbox
        while True:
            batch = [await inbox.get()]
            while True:
                try:
                    batch.append(inbox.get_nowait())
                except asyncio.QueueEmpty:
                    break
            for sender, payload in batch:
                if self._process is None:
                    continue
                envelope = TransportEnvelope(
                    next(self._msg_ids), sender, self.pid, payload,
                    self.runtime.now, self.runtime.now,
                )
                self.runtime.events_processed += 1
                self._delivered(envelope, self._process)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TcpTransport(pid={self.pid}, address={self.address}, "
            f"peers={sorted(self._peers)}, sent={self.messages_sent}, "
            f"frames_dropped={self.frames_dropped}, "
            f"teardown_errors={len(self.last_errors)})"
        )
