"""Transport-level fault injection: the live twin of the simulated adversary.

The simulator expresses its adversary as a
:class:`~repro.sim.network.DelayModel` consulted by the network on every
send.  Live runtimes have no network object to hook — latency lives in the
transport — so this module decorates any
:class:`~repro.runtime.transports.Transport` with a
:class:`FaultyTransport` that imposes the *same* schedule objects the
simulator runs (plus drop/duplicate injectors the simulator has no analogue
for), applying the identical partial-synchrony envelope: delays are floored
at ``min_delay`` and clamped to ``max(GST, send) + Delta``, exactly as
:meth:`repro.sim.network.Network._delivery_time` does.

Determinism contract (the basis of the cross-runtime conformance suite in
``tests/test_live_faults.py``): library delay models read nothing from the
simulator but ``sim.rng`` and the :class:`~repro.sim.network.PendingSend`,
and the simulated RNG is consumed *only* by delay models — one draw per
non-self send for the drawing models, in ascending-recipient order per
broadcast.  :class:`ChaosContext` reproduces that stream with its own
``random.Random(seed)``, so a zero-jitter virtual-clock run under a
:class:`FaultyTransport` replays the simulated scenario's decisions and
ledgers exactly.  Wall clocks (and real TCP latency underneath a schedule)
break exact replay; there the schedule is an approximation — see
``docs/runtimes.md``.

Schedules must be *adapted* before they drive a live transport:
:func:`adapt_schedule` resolves a registered adapter per concrete model
class (recursively, so composed schedules validate whole trees) and refuses
unknown classes.  Adapters also observe the traffic they shape, feeding the
:class:`FaultCounters` that surface injected-fault totals (drops,
duplicates, partition epochs, kills/restarts, ...) through the metrics
layer.  :class:`~repro.sim.network.AdversarialDelay` is deliberately *not*
adaptable: it wraps arbitrary callables that may close over simulator state
no live runtime can provide.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Iterable, Optional, Sequence

from repro.errors import ConfigurationError
from repro.faults.schedules import (
    IntermittentSynchrony,
    MessageClassDelay,
    PartitionSchedule,
    RotatingLeaderDelay,
)
from repro.runtime.transports import Transport, TransportEnvelope
from repro.sim.network import (
    DelayModel,
    FixedDelay,
    NetworkConfig,
    PendingSend,
    PreGSTChaos,
    TargetedDelay,
    UniformDelay,
)

if TYPE_CHECKING:  # pragma: no cover - type-checking only
    from repro.runtime.asyncio_runtime import AsyncioRuntime


# ----------------------------------------------------------------------
# Fault accounting
# ----------------------------------------------------------------------
#: Counters every chaotic run reports, even when zero.
BASE_FAULT_COUNTS = ("drops", "duplicates", "kills", "partition_epochs", "restarts")


class FaultCounters:
    """Injected-fault totals for one run, shared by every injection site.

    A plain named-counter bag (``bump``) plus distinct-key counting
    (``note_epoch``) for window-shaped faults: a partition that defers ten
    thousand messages is still *one* partition epoch.  ``as_dict()`` is what
    the metrics layer snapshots into
    :attr:`~repro.metrics.summary.RunMetrics.fault_counts`.
    """

    def __init__(self) -> None:
        self._counts: dict[str, int] = {name: 0 for name in BASE_FAULT_COUNTS}
        self._epoch_keys: set[tuple] = set()

    def bump(self, name: str, by: int = 1) -> None:
        """Add ``by`` to the counter called ``name`` (created at zero)."""
        self._counts[name] = self._counts.get(name, 0) + by

    def note_epoch(self, name: str, key: tuple) -> None:
        """Bump ``name`` once per distinct ``key`` (idempotent per key)."""
        full_key = (name, key)
        if full_key not in self._epoch_keys:
            self._epoch_keys.add(full_key)
            self.bump(name)

    def as_dict(self) -> dict[str, int]:
        """All counters by name (base counters always present)."""
        return dict(self._counts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        nonzero = {k: v for k, v in self._counts.items() if v}
        return f"FaultCounters({nonzero})"


# ----------------------------------------------------------------------
# The schedule context: what a live run offers a sim DelayModel
# ----------------------------------------------------------------------
class ChaosContext:
    """The live stand-in for the ``sim`` argument of ``propose_delay``.

    Library delay models touch exactly two things on the simulator: the
    seeded ``rng`` (the delay-model stream — nothing else in a run consumes
    it) and, in principle, ``now``.  Seeding with the scenario seed
    therefore replays the simulated draw stream verbatim, provided the
    transport proposes one delay per non-self send in send order (which
    :class:`FaultyTransport` does).
    """

    def __init__(self, seed: int) -> None:
        self.rng = random.Random(seed)
        self._runtime: Optional["AsyncioRuntime"] = None

    def bind(self, runtime: "AsyncioRuntime") -> None:
        """Attach the runtime whose clock ``now`` reads."""
        self._runtime = runtime

    @property
    def now(self) -> float:
        """Current runtime time (0.0 before the context is bound)."""
        return self._runtime.now if self._runtime is not None else 0.0


# ----------------------------------------------------------------------
# Schedule adapters
# ----------------------------------------------------------------------
class ScheduleAdapter:
    """A sim :class:`DelayModel` validated and instrumented for live use.

    ``propose_delay`` delegates to the wrapped model itself — the exact
    code the simulator runs — so sim/live parity is structural, not a
    re-implementation.  ``observe`` mirrors the model's dispatch (only the
    branch that actually shaped the message is observed) and feeds the
    run's :class:`FaultCounters`.
    """

    def __init__(self, model: DelayModel) -> None:
        self.model = model

    def propose_delay(self, pending: PendingSend, ctx: ChaosContext) -> float:
        """The model's proposed delay for ``pending`` (same draws as the sim)."""
        return self.model.propose_delay(pending, ctx)

    def observe(self, pending: PendingSend, counters: FaultCounters) -> None:
        """Record what this schedule did to ``pending``.  Default: nothing."""

    def describe(self) -> str:
        """The wrapped model's parameter-faithful description."""
        return self.model.describe()


class _LeafAdapter(ScheduleAdapter):
    """Benign leaf models (fixed/uniform latency): nothing to observe."""


class _PassThroughAdapter(ScheduleAdapter):
    """One-child wrappers whose targeted branch needs no counter."""

    def __init__(self, model: DelayModel, child: ScheduleAdapter) -> None:
        super().__init__(model)
        self.child = child


class _TargetedAdapter(_PassThroughAdapter):
    def observe(self, pending: PendingSend, counters: FaultCounters) -> None:
        model = self.model
        hit = (
            model.direction in ("to", "both") and pending.recipient in model.targets
        ) or (model.direction in ("from", "both") and pending.sender in model.targets)
        if hit:
            counters.bump("targeted_delays")
        else:
            self.child.observe(pending, counters)


class _PreGSTAdapter(_PassThroughAdapter):
    def observe(self, pending: PendingSend, counters: FaultCounters) -> None:
        if pending.after_gst:
            self.child.observe(pending, counters)


class _PartitionAdapter(ScheduleAdapter):
    def __init__(self, model: PartitionSchedule, base: ScheduleAdapter) -> None:
        super().__init__(model)
        self.base = base

    def observe(self, pending: PendingSend, counters: FaultCounters) -> None:
        model = self.model
        t = pending.send_time
        if model.split_at <= t < model.heal_at and model._crosses_split(pending):
            # One PartitionSchedule holds one split window; composed
            # schedules (e.g. under IntermittentSynchrony) key further
            # epochs off the outer window index via note_epoch elsewhere.
            counters.note_epoch("partition_epochs", (id(model),))
            counters.bump("partitioned_messages")
        else:
            self.base.observe(pending, counters)


class _IntermittentAdapter(ScheduleAdapter):
    def __init__(
        self, model: IntermittentSynchrony, calm: ScheduleAdapter, chaotic: ScheduleAdapter
    ) -> None:
        super().__init__(model)
        self.calm = calm
        self.chaotic = chaotic

    def observe(self, pending: PendingSend, counters: FaultCounters) -> None:
        model = self.model
        t = pending.send_time
        if model.in_chaos(t):
            period = model.calm_duration + model.chaos_duration
            window = int((t - model.start) // period)
            counters.note_epoch("chaos_windows", (id(model), window))
            self.chaotic.observe(pending, counters)
        else:
            self.calm.observe(pending, counters)


class _RotatingAdapter(ScheduleAdapter):
    def __init__(self, model: RotatingLeaderDelay, base: ScheduleAdapter) -> None:
        super().__init__(model)
        self.base = base

    def observe(self, pending: PendingSend, counters: FaultCounters) -> None:
        model = self.model
        victim = model.victim_at(pending.send_time)
        hit = (model.direction in ("to", "both") and pending.recipient == victim) or (
            model.direction in ("from", "both") and pending.sender == victim
        )
        if hit:
            counters.bump("dos_hits")
        else:
            self.base.observe(pending, counters)


class _MessageClassAdapter(ScheduleAdapter):
    def __init__(self, model: MessageClassDelay, base: ScheduleAdapter) -> None:
        super().__init__(model)
        self.base = base

    def observe(self, pending: PendingSend, counters: FaultCounters) -> None:
        if self.model.matches(pending.payload):
            counters.bump("throttled_messages")
        else:
            self.base.observe(pending, counters)


#: Adapter factory per concrete DelayModel class (exact type, no subclass
#: fallback: a new schedule class must register its own adapter — the
#: registry-coverage guard in tests/test_faults.py enforces this).
_LIVE_ADAPTERS: dict[type, Callable[[DelayModel], ScheduleAdapter]] = {}


def register_live_adapter(
    model_cls: type, factory: Callable[[DelayModel], ScheduleAdapter]
) -> None:
    """Register ``factory`` as the live adapter for ``model_cls``.

    ``factory`` receives the model instance and returns its
    :class:`ScheduleAdapter`; factories for composite models should call
    :func:`adapt_schedule` on their children so validation recurses.
    """
    if model_cls in _LIVE_ADAPTERS:
        raise ConfigurationError(
            f"{model_cls.__name__} already has a live adapter registered"
        )
    _LIVE_ADAPTERS[model_cls] = factory


def live_adaptable_classes() -> frozenset:
    """Every DelayModel class that can drive a live transport."""
    return frozenset(_LIVE_ADAPTERS)


def adapt_schedule(model: DelayModel) -> ScheduleAdapter:
    """The live adapter for ``model``, validating the whole schedule tree.

    Raises
    ------
    ConfigurationError
        If ``model`` (or any model it composes) has no registered adapter —
        e.g. :class:`~repro.sim.network.AdversarialDelay`, whose arbitrary
        callables may depend on simulator state a live runtime cannot offer.
    """
    factory = _LIVE_ADAPTERS.get(type(model))
    if factory is None:
        raise ConfigurationError(
            f"{type(model).__name__} ({model.describe()}) has no live runtime "
            "adapter; register one with repro.runtime.chaos.register_live_adapter "
            "to run it outside the simulator"
        )
    return factory(model)


register_live_adapter(FixedDelay, _LeafAdapter)
register_live_adapter(UniformDelay, _LeafAdapter)
register_live_adapter(
    PreGSTChaos, lambda m: _PreGSTAdapter(m, adapt_schedule(m.post_model))
)
register_live_adapter(
    TargetedDelay, lambda m: _TargetedAdapter(m, adapt_schedule(m.base))
)
register_live_adapter(
    PartitionSchedule, lambda m: _PartitionAdapter(m, adapt_schedule(m.base))
)
register_live_adapter(
    IntermittentSynchrony,
    lambda m: _IntermittentAdapter(m, adapt_schedule(m.calm), adapt_schedule(m.chaotic)),
)
register_live_adapter(
    RotatingLeaderDelay, lambda m: _RotatingAdapter(m, adapt_schedule(m.base))
)
register_live_adapter(
    MessageClassDelay, lambda m: _MessageClassAdapter(m, adapt_schedule(m.base))
)


# ----------------------------------------------------------------------
# Injector knobs
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ChaosConfig:
    """Transport injector knobs with no simulator analogue.

    Drop and duplicate injectors draw from their own seeded RNG (never from
    the schedule stream), so enabling them perturbs delivery without
    perturbing the schedule's draws; at the default zero rates no injector
    RNG is consumed at all and a scheduled run stays sim-exact.
    """

    #: Probability a non-self message is minted but never delivered.
    drop_rate: float = 0.0
    #: Probability a non-self message is delivered twice.
    duplicate_rate: float = 0.0
    #: Seed of the injector RNG (independent of the schedule stream).
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("drop_rate", "duplicate_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate < 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1), got {rate}")

    @property
    def active(self) -> bool:
        """Whether any injector can fire."""
        return self.drop_rate > 0.0 or self.duplicate_rate > 0.0

    def describe(self) -> str:
        """Parameter-faithful description (folded into live cache salts)."""
        return f"drop={self.drop_rate!r},dup={self.duplicate_rate!r},seed={self.seed}"


# ----------------------------------------------------------------------
# The transport decorator
# ----------------------------------------------------------------------
class FaultyTransport(Transport):
    """Chaos decorator over any transport: drop, delay, duplicate, partition.

    Wraps an ``inner`` transport and intercepts every ``send``:

    * a ``schedule`` (an adapted sim :class:`DelayModel`) proposes each
      non-self message's latency, floored/clamped by the partial-synchrony
      envelope of ``network`` exactly as the simulated network does —
      partitions, targeted DoS and traffic-class throttles all arrive this
      way, since they are delay models over (time, topology, class);
    * drop and duplicate injectors (see :class:`ChaosConfig` rates) fire
      from a separate seeded RNG;
    * everything the chaos layer does lands in ``counters``.

    Delivery mechanics depend on the inner transport: transports exposing
    ``send_with_delay`` (``LocalTransport``) get exact scheduling with
    truthful envelope ``deliver_time``; any other transport
    (``TcpTransport``) is approximated by holding the send itself for the
    proposed delay — real network latency then adds on top, and dropped
    messages are never minted (the frame never exists).  With no schedule
    and zero rates the wrapper is transparent: ``send`` delegates verbatim.

    Listener lists and message counters are shared with the inner
    transport, so ``MetricsCollector.attach_transport`` observes a wrapped
    transport exactly as an unwrapped one.
    """

    def __init__(
        self,
        inner: Transport,
        schedule: Optional[ScheduleAdapter] = None,
        network: Optional[NetworkConfig] = None,
        schedule_seed: int = 0,
        chaos: Optional[ChaosConfig] = None,
        counters: Optional[FaultCounters] = None,
    ) -> None:
        # Deliberately no super().__init__(): counters, listener lists and
        # message ids all belong to the inner transport — one accounting
        # surface, whether or not the transport is wrapped.
        if schedule is not None and network is None:
            raise ConfigurationError(
                "a schedule needs the NetworkConfig whose gst/delta/min_delay "
                "envelope bounds its proposals"
            )
        if isinstance(schedule, DelayModel):
            raise ConfigurationError(
                "pass an adapted schedule (adapt_schedule(model)), not the raw "
                "DelayModel"
            )
        self._inner = inner
        self._runtime: Optional["AsyncioRuntime"] = None
        self.send_listeners = inner.send_listeners
        self.deliver_listeners = inner.deliver_listeners
        self.schedule = schedule
        self.network = network
        self.chaos = chaos if chaos is not None else ChaosConfig()
        self.counters = counters if counters is not None else FaultCounters()
        self._ctx = ChaosContext(schedule_seed)
        self._injector_rng = random.Random(self.chaos.seed)
        self._exact_send = getattr(inner, "send_with_delay", None)
        self._draw_delay = getattr(inner, "draw_delay", None)

    # -- wiring --------------------------------------------------------
    @property
    def inner(self) -> Transport:
        """The wrapped transport."""
        return self._inner

    @property
    def transparent(self) -> bool:
        """Whether sends delegate verbatim (no schedule, zero rates)."""
        return self.schedule is None and not self.chaos.active

    def bind(self, runtime: "AsyncioRuntime") -> None:
        """Bind the wrapper, the inner transport and the schedule context."""
        self._runtime = runtime
        self._inner.bind(runtime)
        self._ctx.bind(runtime)

    def register(self, process: Any) -> None:
        """Register on the inner transport (the delivery endpoints live there)."""
        self._inner.register(process)

    @property
    def process_ids(self) -> Sequence[int]:
        """The inner transport's membership."""
        return self._inner.process_ids

    @property
    def messages_sent(self) -> int:
        """Messages minted (shared with the inner transport)."""
        return self._inner.messages_sent

    @property
    def messages_delivered(self) -> int:
        """Messages delivered (shared with the inner transport)."""
        return self._inner.messages_delivered

    async def start(self) -> None:
        """Start the inner transport's I/O."""
        await self._inner.start()

    async def stop(self) -> None:
        """Stop the inner transport's I/O."""
        await self._inner.stop()

    # -- the injection point -------------------------------------------
    def send(self, sender: int, recipient: int, payload: Any) -> None:
        """Shape, drop or duplicate one message on its way into ``inner``."""
        inner = self._inner
        if sender == recipient or self.transparent:
            # Self-messages are immediate on every runtime (the paper's
            # convention) and never consult schedules or injectors — the
            # simulated network never proposes a delay for them either.
            inner.send(sender, recipient, payload)
            return
        delay = self._delay_for(sender, recipient, payload)
        chaos = self.chaos
        dropped = (
            chaos.drop_rate > 0.0 and self._injector_rng.random() < chaos.drop_rate
        )
        duplicated = (
            chaos.duplicate_rate > 0.0
            and self._injector_rng.random() < chaos.duplicate_rate
        )
        if self._exact_send is not None:
            self._exact_send(sender, recipient, payload, delay, deliver=not dropped)
            if duplicated:
                self._exact_send(sender, recipient, payload, delay)
        elif not dropped:
            # Hold-then-forward (TCP lane): the schedule delays the *send*;
            # real network latency adds on top.  Approximate by design.
            self.runtime.call_after(delay, inner.send, sender, recipient, payload)
            if duplicated:
                self.runtime.call_after(delay, inner.send, sender, recipient, payload)
        if dropped:
            self.counters.bump("drops")
        if duplicated:
            self.counters.bump("duplicates")

    def _delay_for(self, sender: int, recipient: int, payload: Any) -> float:
        """One message's latency: schedule under the envelope, else inner's own."""
        if self.schedule is None:
            # Injectors over the inner transport's native latency: consume
            # its own delay draw so accounting (and jitter streams) match an
            # unwrapped send.
            return self._draw_delay(sender, recipient) if self._draw_delay else 0.0
        config = self.network
        now = self.runtime.now
        pending = PendingSend(sender, recipient, payload, now, now >= config.gst)
        raw = max(config.min_delay, self.schedule.propose_delay(pending, self._ctx))
        deadline = max(config.gst, now) + config.delta
        delay = min(now + raw, deadline) - now
        self.schedule.observe(pending, self.counters)
        return delay

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        schedule = self.schedule.describe() if self.schedule else None
        return (
            f"FaultyTransport(inner={type(self._inner).__name__}, "
            f"schedule={schedule}, chaos=({self.chaos.describe()}), "
            f"counters={self.counters!r})"
        )


# ----------------------------------------------------------------------
# Kill / restart
# ----------------------------------------------------------------------
def _validate_windows(windows: Iterable[tuple[float, Optional[float]]]) -> list:
    windows = list(windows)
    for crash_at, recover_at in windows:
        if recover_at is not None and recover_at <= crash_at:
            raise ConfigurationError(
                f"recovery at {recover_at} does not follow crash at {crash_at}"
            )
    return windows


def _kill(process: Any, counters: Optional[FaultCounters]) -> None:
    process.crash()
    if counters is not None:
        counters.bump("kills")


def _restart(process: Any, counters: Optional[FaultCounters]) -> None:
    process.recover()
    if counters is not None:
        counters.bump("restarts")


def schedule_downtime(
    runtime: "AsyncioRuntime",
    process: Any,
    windows: Iterable[tuple[float, Optional[float]]],
    counters: Optional[FaultCounters] = None,
) -> None:
    """Kill (and optionally restart) ``process`` on the given windows.

    The live injection twin of
    :meth:`repro.consensus.replica.Replica._schedule_downtime`: each
    ``(crash_at, recover_at)`` window arms a :meth:`Process.crash` timer at
    its start and — when ``recover_at`` is not ``None`` — a
    :meth:`Process.recover` timer at its end, counting ``kills`` /
    ``restarts`` as they fire.  Use this to impose downtime on processes
    whose behaviour declares none.
    """
    for crash_at, recover_at in _validate_windows(windows):
        runtime.set_timer_at(max(crash_at, runtime.now), _kill, process, counters)
        if recover_at is not None:
            runtime.set_timer_at(
                max(recover_at, runtime.now), _restart, process, counters
            )


def _note_crashed(replica: Any, counters: FaultCounters) -> None:
    if replica.crashed:
        counters.bump("kills")


def _note_recovered(replica: Any, counters: FaultCounters) -> None:
    if not replica.crashed:
        counters.bump("restarts")


def track_downtime(
    runtime: "AsyncioRuntime", replicas: dict[int, Any], counters: FaultCounters
) -> None:
    """Count behaviour-declared crash/recovery windows as they take effect.

    Replicas arm their own downtime timers from
    ``Behaviour.downtime_windows()`` (that machinery is runtime-agnostic);
    this observer arms a sibling timer just after each one and records a
    ``kill`` / ``restart`` only if the replica's state actually flipped —
    the counters report what *happened*, not what was scheduled.  The small
    wall-mode pad orders the observer after the lifecycle timer on real
    clocks; in virtual mode same-timestamp insertion order already does.
    """
    pad = 0.0 if runtime.virtual else 1e-3
    now = runtime.now
    for pid in sorted(replicas):
        replica = replicas[pid]
        for crash_at, recover_at in _validate_windows(
            replica.behaviour.downtime_windows()
        ):
            runtime.set_timer_at(
                max(crash_at, now) + pad, _note_crashed, replica, counters
            )
            if recover_at is not None:
                runtime.set_timer_at(
                    max(recover_at, now) + pad, _note_recovered, replica, counters
                )
