"""Wire codec: protocol payloads <-> length-prefixed JSON frames.

Every wire message in the library is a frozen dataclass tree over a small
closed vocabulary of value shapes — primitives, tuples, frozensets and
nested registered dataclasses — so the codec is a structural walk, not
pickle: only classes explicitly registered (or auto-registered from the
message modules) can cross a socket, and a frame naming an unknown class is
rejected.  Tuples and frozensets survive the round trip as themselves
(JSON has neither), which matters because block payloads are tuples and
threshold-signature signer sets are frozensets whose cached hash the
verification fast path relies on.

Frames are ``4-byte big-endian length || JSON body``; the body is
``{"s": sender_pid, "p": packed_payload}``.  JSON rather than msgpack keeps
the container dependency-free; the framing and the codec seam are the
msgpack-ready part (swap :meth:`WireCodec.dumps` / :meth:`WireCodec.loads`).
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Iterable, Optional

from repro.errors import ConfigurationError

#: Frame length prefix: 4 bytes, big-endian, body length only.
LENGTH_PREFIX_BYTES = 4

#: Upper bound on a single frame body (64 MiB); a peer announcing more is
#: malformed or hostile and the connection is dropped instead of buffering.
MAX_FRAME_BYTES = 64 * 1024 * 1024

_TUPLE = "__tuple__"
_FROZENSET = "__frozenset__"
_DICT = "__dict__"
_CLASS = "__class__"


class WireCodecError(ConfigurationError):
    """A payload (or frame) could not be encoded or decoded."""


class WireCodec:
    """Encode/decode registered dataclass trees as JSON frames."""

    def __init__(self) -> None:
        self._by_name: dict[str, type] = {}

    # ------------------------------------------------------------------
    # Registry
    # ------------------------------------------------------------------
    def register(self, cls: type) -> type:
        """Allow ``cls`` (a dataclass) on the wire.  Returns ``cls`` (decorator-friendly).

        Names must be unique: two registered classes may not share a
        ``__name__`` even across modules, because the wire format carries
        the bare class name.
        """
        if not dataclasses.is_dataclass(cls):
            raise WireCodecError(f"{cls!r} is not a dataclass; cannot register")
        existing = self._by_name.get(cls.__name__)
        if existing is not None and existing is not cls:
            raise WireCodecError(
                f"wire name {cls.__name__!r} already registered for {existing!r}"
            )
        self._by_name[cls.__name__] = cls
        return cls

    def register_all(self, classes: Iterable[type]) -> None:
        """Register every class in ``classes``."""
        for cls in classes:
            self.register(cls)

    @property
    def registered_names(self) -> list[str]:
        """Sorted wire names of all registered classes."""
        return sorted(self._by_name)

    # ------------------------------------------------------------------
    # Frames
    # ------------------------------------------------------------------
    def encode_frame(self, sender: int, payload: Any) -> bytes:
        """One wire frame: length prefix plus the JSON body."""
        body = self.dumps({"s": sender, "p": self.pack(payload)})
        if len(body) > MAX_FRAME_BYTES:
            raise WireCodecError(f"frame of {len(body)} bytes exceeds MAX_FRAME_BYTES")
        return len(body).to_bytes(LENGTH_PREFIX_BYTES, "big") + body

    def decode_body(self, body: bytes) -> tuple[int, Any]:
        """Decode a frame body (without prefix) into ``(sender, payload)``."""
        try:
            data = self.loads(body)
            sender = data["s"]
            payload = self.unpack(data["p"])
        except WireCodecError:
            raise
        except Exception as exc:
            raise WireCodecError(f"malformed frame body: {exc}") from exc
        if not isinstance(sender, int):
            raise WireCodecError(f"frame sender must be an int, got {sender!r}")
        return sender, payload

    def dumps(self, data: Any) -> bytes:
        """Serialize a packed structure (the msgpack-swappable seam)."""
        return json.dumps(data, separators=(",", ":")).encode("utf-8")

    def loads(self, body: bytes) -> Any:
        """Deserialize a frame body (the msgpack-swappable seam)."""
        return json.loads(body.decode("utf-8"))

    # ------------------------------------------------------------------
    # Structural packing
    # ------------------------------------------------------------------
    def pack(self, value: Any) -> Any:
        """Registered-dataclass tree -> JSON-safe structure."""
        if value is None or isinstance(value, (bool, int, float, str)):
            return value
        if isinstance(value, tuple):
            return {_TUPLE: [self.pack(item) for item in value]}
        if isinstance(value, list):
            return [self.pack(item) for item in value]
        if isinstance(value, frozenset):
            # Sorted where possible so identical sets encode identically.
            try:
                items = sorted(value)
            except TypeError:
                items = list(value)
            return {_FROZENSET: [self.pack(item) for item in items]}
        if isinstance(value, dict):
            return {_DICT: [[self.pack(k), self.pack(v)] for k, v in value.items()]}
        if dataclasses.is_dataclass(value) and not isinstance(value, type):
            name = type(value).__name__
            if self._by_name.get(name) is not type(value):
                raise WireCodecError(
                    f"{type(value)!r} is not registered with this codec; "
                    "register it before sending it over a wire transport"
                )
            fields = {
                field.name: self.pack(getattr(value, field.name))
                for field in dataclasses.fields(value)
            }
            return {_CLASS: name, "f": fields}
        raise WireCodecError(f"cannot encode value of type {type(value)!r} for the wire")

    def unpack(self, data: Any) -> Any:
        """JSON-safe structure -> registered-dataclass tree."""
        if data is None or isinstance(data, (bool, int, float, str)):
            return data
        if isinstance(data, list):
            return [self.unpack(item) for item in data]
        if isinstance(data, dict):
            if _TUPLE in data:
                return tuple(self.unpack(item) for item in data[_TUPLE])
            if _FROZENSET in data:
                return frozenset(self.unpack(item) for item in data[_FROZENSET])
            if _DICT in data:
                return {self.unpack(k): self.unpack(v) for k, v in data[_DICT]}
            if _CLASS in data:
                cls = self._by_name.get(data[_CLASS])
                if cls is None:
                    raise WireCodecError(f"unknown wire class {data[_CLASS]!r}")
                fields = {name: self.unpack(value) for name, value in data["f"].items()}
                return cls(**fields)
        raise WireCodecError(f"malformed wire structure: {data!r}")


def _message_subclasses(base: type) -> set[type]:
    """``base`` and every (transitive) subclass that is a live dataclass.

    ``@dataclass(slots=True)`` replaces the decorated class with a new one,
    leaving the original (slots-less) class in ``__subclasses__`` forever;
    only the class currently bound to its name in its defining module is
    the real wire type, so phantoms are filtered out here.
    """
    import sys

    found: set[type] = set()
    pending = [base]
    while pending:
        cls = pending.pop()
        if cls in found:
            continue
        found.add(cls)
        pending.extend(cls.__subclasses__())
    return {
        cls
        for cls in found
        if dataclasses.is_dataclass(cls)
        and getattr(sys.modules.get(cls.__module__), cls.__name__, None) is cls
    }


_default: Optional[WireCodec] = None


def default_codec() -> WireCodec:
    """The shared codec knowing every message type the library defines.

    Imports the consensus and pacemaker message modules (so their
    dataclasses exist), then registers every dataclass reachable from the
    two message roots plus the crypto/block value types they embed.  Built
    once per process; custom protocols with their own wire messages should
    build a :class:`WireCodec` and register on top (``default_codec()``
    returns the shared instance, so registering on it works too).
    """
    global _default
    if _default is not None:
        return _default

    # The message modules: importing them defines every wire dataclass.
    import repro.consensus.messages  # noqa: F401
    import repro.core.messages  # noqa: F401
    import repro.pacemakers.backoff  # noqa: F401
    import repro.pacemakers.cogsworth  # noqa: F401
    import repro.pacemakers.fever  # noqa: F401
    import repro.pacemakers.lp22  # noqa: F401
    import repro.pacemakers.naor_keidar  # noqa: F401
    import repro.pacemakers.raresync  # noqa: F401
    from repro.consensus.blocks import Block
    from repro.consensus.messages import ConsensusMessage
    from repro.consensus.quorum import QuorumCertificate
    from repro.crypto.signatures import Signature
    from repro.crypto.threshold import PartialSignature, ThresholdSignature
    from repro.pacemakers.base import PacemakerMessage

    codec = WireCodec()
    codec.register_all(
        [Block, QuorumCertificate, Signature, PartialSignature, ThresholdSignature]
    )
    for base in (ConsensusMessage, PacemakerMessage):
        codec.register_all(sorted(_message_subclasses(base), key=lambda c: c.__name__))
    _default = codec
    return codec
