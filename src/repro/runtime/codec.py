"""Wire codecs: protocol payloads <-> length-prefixed frames.

Every wire message in the library is a frozen dataclass tree over a small
closed vocabulary of value shapes — primitives, tuples, frozensets and
nested registered dataclasses — so a codec is a structural walk, not
pickle: only classes explicitly registered (or auto-registered from the
message modules) can cross a socket, and a frame naming an unknown class is
rejected.  Tuples and frozensets survive the round trip as themselves
(JSON has neither), which matters because block payloads are tuples and
threshold-signature signer sets are frozensets whose cached hash the
verification fast path relies on.

Two codecs ship, selected by name via :func:`make_codec`:

* :class:`WireCodec` (``"json"``) — frames are ``4-byte big-endian length
  || JSON body``; the body is ``{"s": sender_pid, "p": packed_payload}``.
  Human-greppable on the wire, the historical format.
* :class:`BinaryWireCodec` (``"binary"``, the :class:`TcpTransport`
  default) — same framing, but the body is a compact tag-byte encoding in
  the ``struct``/msgpack idiom: one tag byte per value, varint lengths and
  integers, 8-byte IEEE floats, and registered dataclasses as a numeric
  class id followed by their field values *positionally* (no field names on
  the wire).  A QC-carrying proposal shrinks to roughly a third of its JSON
  frame.  Both ends must register the same classes in the same order — the
  registration order defines the numeric wire ids — which holds by
  construction for :func:`default_binary_codec`.
"""

from __future__ import annotations

import base64
import dataclasses
import json
import struct
from typing import Any, Callable, Iterable, Optional

from repro.errors import ConfigurationError

#: Frame length prefix: 4 bytes, big-endian, body length only.
LENGTH_PREFIX_BYTES = 4

#: Upper bound on a single frame body (64 MiB); a peer announcing more is
#: malformed or hostile and the connection is dropped instead of buffering.
MAX_FRAME_BYTES = 64 * 1024 * 1024

_TUPLE = "__tuple__"
_FROZENSET = "__frozenset__"
_DICT = "__dict__"
_CLASS = "__class__"
_BYTES = "__bytes__"


class WireCodecError(ConfigurationError):
    """A payload (or frame) could not be encoded or decoded."""


class WireCodec:
    """Encode/decode registered dataclass trees as JSON frames."""

    #: Machine-readable codec name used by :func:`make_codec` and configs.
    name = "json"

    def __init__(self) -> None:
        self._by_name: dict[str, type] = {}

    # ------------------------------------------------------------------
    # Registry
    # ------------------------------------------------------------------
    def register(self, cls: type) -> type:
        """Allow ``cls`` (a dataclass) on the wire.  Returns ``cls`` (decorator-friendly).

        Names must be unique: two registered classes may not share a
        ``__name__`` even across modules, because the wire format carries
        the bare class name.
        """
        if not dataclasses.is_dataclass(cls):
            raise WireCodecError(f"{cls!r} is not a dataclass; cannot register")
        existing = self._by_name.get(cls.__name__)
        if existing is not None and existing is not cls:
            raise WireCodecError(
                f"wire name {cls.__name__!r} already registered for {existing!r}"
            )
        self._by_name[cls.__name__] = cls
        return cls

    def register_all(self, classes: Iterable[type]) -> None:
        """Register every class in ``classes``."""
        for cls in classes:
            self.register(cls)

    @property
    def registered_names(self) -> list[str]:
        """Sorted wire names of all registered classes."""
        return sorted(self._by_name)

    # ------------------------------------------------------------------
    # Frames
    # ------------------------------------------------------------------
    def encode_frame(self, sender: int, payload: Any) -> bytes:
        """One wire frame: length prefix plus the JSON body."""
        out = bytearray()
        self.encode_into(sender, payload, out)
        return bytes(out)

    def encode_into(self, sender: int, payload: Any, out: bytearray) -> int:
        """Append one wire frame (prefix + body) to ``out``; return its length.

        The zero-copy twin of :meth:`encode_frame`: the frame bytes land
        directly in the caller's buffer — a TCP writer's coalesced batch or
        a shared-memory ring staging area — with no intermediate ``bytes``
        object.  The appended bytes are identical to ``encode_frame``'s.
        """
        body = self.dumps({"s": sender, "p": self.pack(payload)})
        if len(body) > MAX_FRAME_BYTES:
            raise WireCodecError(f"frame of {len(body)} bytes exceeds MAX_FRAME_BYTES")
        out += len(body).to_bytes(LENGTH_PREFIX_BYTES, "big")
        out += body
        return LENGTH_PREFIX_BYTES + len(body)

    def decode_body(self, body: bytes) -> tuple[int, Any]:
        """Decode a frame body (without prefix) into ``(sender, payload)``.

        ``body`` may be any bytes-like object — in particular a
        ``memoryview`` over a shared-memory ring, so frames decode in place
        without being copied out first.
        """
        try:
            data = self.loads(body)
            sender = data["s"]
            payload = self.unpack(data["p"])
        except WireCodecError:
            raise
        except Exception as exc:
            raise WireCodecError(f"malformed frame body: {exc}") from exc
        if not isinstance(sender, int):
            raise WireCodecError(f"frame sender must be an int, got {sender!r}")
        return sender, payload

    def dumps(self, data: Any) -> bytes:
        """Serialize a packed structure (the msgpack-swappable seam)."""
        return json.dumps(data, separators=(",", ":")).encode("utf-8")

    def loads(self, body: bytes) -> Any:
        """Deserialize a frame body (the msgpack-swappable seam)."""
        # str(..., "utf-8") accepts any buffer, so memoryviews decode in place.
        return json.loads(str(body, "utf-8"))

    # ------------------------------------------------------------------
    # Structural packing
    # ------------------------------------------------------------------
    def pack(self, value: Any) -> Any:
        """Registered-dataclass tree -> JSON-safe structure."""
        if value is None or isinstance(value, (bool, int, float, str)):
            return value
        if isinstance(value, bytes):
            # JSON has no byte strings; base64 keeps the frame greppable.
            return {_BYTES: base64.b64encode(value).decode("ascii")}
        if isinstance(value, tuple):
            return {_TUPLE: [self.pack(item) for item in value]}
        if isinstance(value, list):
            return [self.pack(item) for item in value]
        if isinstance(value, frozenset):
            # Sorted where possible so identical sets encode identically.
            try:
                items = sorted(value)
            except TypeError:
                items = list(value)
            return {_FROZENSET: [self.pack(item) for item in items]}
        if isinstance(value, dict):
            return {_DICT: [[self.pack(k), self.pack(v)] for k, v in value.items()]}
        if dataclasses.is_dataclass(value) and not isinstance(value, type):
            name = type(value).__name__
            if self._by_name.get(name) is not type(value):
                raise WireCodecError(
                    f"{type(value)!r} is not registered with this codec; "
                    "register it before sending it over a wire transport"
                )
            fields = {
                field.name: self.pack(getattr(value, field.name))
                for field in dataclasses.fields(value)
            }
            return {_CLASS: name, "f": fields}
        raise WireCodecError(f"cannot encode value of type {type(value)!r} for the wire")

    def unpack(self, data: Any) -> Any:
        """JSON-safe structure -> registered-dataclass tree."""
        if data is None or isinstance(data, (bool, int, float, str)):
            return data
        if isinstance(data, list):
            return [self.unpack(item) for item in data]
        if isinstance(data, dict):
            if _BYTES in data:
                return base64.b64decode(data[_BYTES])
            if _TUPLE in data:
                return tuple(self.unpack(item) for item in data[_TUPLE])
            if _FROZENSET in data:
                return frozenset(self.unpack(item) for item in data[_FROZENSET])
            if _DICT in data:
                return {self.unpack(k): self.unpack(v) for k, v in data[_DICT]}
            if _CLASS in data:
                cls = self._by_name.get(data[_CLASS])
                if cls is None:
                    raise WireCodecError(f"unknown wire class {data[_CLASS]!r}")
                fields = {name: self.unpack(value) for name, value in data["f"].items()}
                return cls(**fields)
        raise WireCodecError(f"malformed wire structure: {data!r}")


# ----------------------------------------------------------------------
# Binary codec
# ----------------------------------------------------------------------
# One tag byte per value.  Varints are unsigned LEB128; signed integers are
# zigzag-mapped first so small negatives stay one byte.
_T_NONE = 0x00
_T_TRUE = 0x01
_T_FALSE = 0x02
_T_INT = 0x03
_T_FLOAT = 0x04
_T_STR = 0x05
_T_BYTES = 0x06
_T_TUPLE = 0x07
_T_LIST = 0x08
_T_FSET = 0x09
_T_DICT = 0x0A
_T_CLASS = 0x0B

_FLOAT_STRUCT = struct.Struct(">d")


def _pack_uvarint(value: int, out: bytearray) -> None:
    while value > 0x7F:
        out.append((value & 0x7F) | 0x80)
        value >>= 7
    out.append(value)


def _unpack_uvarint(buf: bytes, pos: int) -> tuple[int, int]:
    result = 0
    shift = 0
    while True:
        byte = buf[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7


def _zigzag(value: int) -> int:
    return value * 2 if value >= 0 else -value * 2 - 1


def _unzigzag(value: int) -> int:
    return value >> 1 if not value & 1 else -(value + 1) >> 1


class BinaryWireCodec(WireCodec):
    """Compact tag-byte binary frames over the same registry and framing.

    The registry adds a layer on top of :class:`WireCodec`'s name map: each
    registered class also gets a numeric wire id (its registration ordinal)
    and a precomputed field tuple, so a dataclass encodes as
    ``CLASS tag || varint id || field values`` — no field names, no class
    names, no JSON quoting.  **Registration order is part of the wire
    format**: peers decode ids against their own registration sequence, so
    every node of a cluster must register the same classes in the same
    order (``default_binary_codec()`` guarantees this for the library's
    own messages; custom messages must be registered identically on every
    node, after the defaults).

    Frames keep the ``4-byte big-endian length || body`` envelope of the
    JSON codec — :class:`TcpTransport` reads both formats' length prefixes
    identically — but the body is ``svarint sender || packed payload``.
    """

    name = "binary"

    def __init__(self) -> None:
        super().__init__()
        # type -> (wire id, field names); ids are registration ordinals.
        self._class_info: dict[type, tuple[int, tuple[str, ...]]] = {}
        # wire id -> (class, field names); the decode side of the same map.
        self._by_id: list[tuple[type, tuple[str, ...]]] = []
        # Per-instance exact-type dispatch: primitives from the shared table
        # plus one entry per registered class, so the hottest shape (a
        # registered message) packs without an isinstance ladder.
        self._packers: dict[type, Callable[["BinaryWireCodec", Any, bytearray], None]] = dict(
            _BINARY_PACKERS
        )

    def register(self, cls: type) -> type:
        super().register(cls)
        if cls not in self._class_info:
            names = tuple(field.name for field in dataclasses.fields(cls))
            self._class_info[cls] = (len(self._by_id), names)
            self._by_id.append((cls, names))
            self._packers[cls] = BinaryWireCodec._pack_class
        return cls

    # ------------------------------------------------------------------
    # Frames
    # ------------------------------------------------------------------
    def encode_frame(self, sender: int, payload: Any) -> bytes:
        out = bytearray()
        self.encode_into(sender, payload, out)
        return bytes(out)

    def encode_into(self, sender: int, payload: Any, out: bytearray) -> int:
        """Append one frame to ``out`` with no intermediate body buffer.

        Reserves the 4-byte length prefix, packs sender and payload straight
        into ``out``, then patches the prefix in place — the body bytes are
        written exactly once.  Appended bytes are identical to
        :meth:`encode_frame`'s return value.
        """
        start = len(out)
        out += b"\x00\x00\x00\x00"
        _pack_uvarint(_zigzag(sender), out)
        self._pack_value(payload, out)
        body_len = len(out) - start - LENGTH_PREFIX_BYTES
        if body_len > MAX_FRAME_BYTES:
            del out[start:]
            raise WireCodecError(f"frame of {body_len} bytes exceeds MAX_FRAME_BYTES")
        out[start : start + LENGTH_PREFIX_BYTES] = body_len.to_bytes(
            LENGTH_PREFIX_BYTES, "big"
        )
        return LENGTH_PREFIX_BYTES + body_len

    def decode_body(self, body: bytes) -> tuple[int, Any]:
        try:
            raw_sender, pos = _unpack_uvarint(body, 0)
            payload, pos = self._unpack_value(body, pos)
        except WireCodecError:
            raise
        except Exception as exc:
            raise WireCodecError(f"malformed frame body: {exc}") from exc
        if pos != len(body):
            raise WireCodecError(
                f"malformed frame body: {len(body) - pos} trailing bytes"
            )
        return _unzigzag(raw_sender), payload

    # ------------------------------------------------------------------
    # Value packing
    # ------------------------------------------------------------------
    def _pack_value(self, value: Any, out: bytearray) -> None:
        packer = self._packers.get(type(value))
        if packer is not None:
            packer(self, value, out)
            return
        self._pack_other(value, out)

    def _pack_class(self, value: Any, out: bytearray) -> None:
        info = self._class_info.get(type(value))
        if info is None:
            raise WireCodecError(
                f"{type(value)!r} is not registered with this codec; "
                "register it before sending it over a wire transport"
            )
        wire_id, names = info
        out.append(_T_CLASS)
        _pack_uvarint(wire_id, out)
        pack = self._pack_value
        for name in names:
            pack(getattr(value, name), out)

    def _pack_other(self, value: Any, out: bytearray) -> None:
        """Generic path: builtin subclasses and registered dataclasses."""
        if dataclasses.is_dataclass(value) and not isinstance(value, type):
            self._pack_class(value, out)
        elif isinstance(value, bool):
            out.append(_T_TRUE if value else _T_FALSE)
        elif isinstance(value, int):
            out.append(_T_INT)
            _pack_uvarint(_zigzag(value), out)
        elif isinstance(value, float):
            out.append(_T_FLOAT)
            out += _FLOAT_STRUCT.pack(value)
        elif isinstance(value, str):
            _pack_str(self, value, out)
        elif isinstance(value, bytes):
            out.append(_T_BYTES)
            _pack_uvarint(len(value), out)
            out += value
        elif isinstance(value, tuple):
            _pack_tuple(self, value, out)
        elif isinstance(value, list):
            _pack_list(self, value, out)
        elif isinstance(value, frozenset):
            _pack_fset(self, value, out)
        elif isinstance(value, dict):
            _pack_dict(self, value, out)
        else:
            raise WireCodecError(
                f"cannot encode value of type {type(value)!r} for the wire"
            )

    # ------------------------------------------------------------------
    # Value unpacking
    # ------------------------------------------------------------------
    def _unpack_value(self, buf: bytes, pos: int) -> tuple[Any, int]:
        tag = buf[pos]
        pos += 1
        if tag == _T_STR:
            length, pos = _unpack_uvarint(buf, pos)
            end = pos + length
            if end > len(buf):
                raise WireCodecError("malformed frame body: truncated string")
            # str(..., "utf-8") decodes bytes and memoryview slices alike.
            return str(buf[pos:end], "utf-8"), end
        if tag == _T_INT:
            raw, pos = _unpack_uvarint(buf, pos)
            return _unzigzag(raw), pos
        if tag == _T_CLASS:
            wire_id, pos = _unpack_uvarint(buf, pos)
            if wire_id >= len(self._by_id):
                raise WireCodecError(f"unknown wire class id {wire_id}")
            cls, names = self._by_id[wire_id]
            unpack = self._unpack_value
            values = []
            for _ in names:
                value, pos = unpack(buf, pos)
                values.append(value)
            return cls(**dict(zip(names, values))), pos
        if tag == _T_TUPLE or tag == _T_LIST or tag == _T_FSET:
            count, pos = _unpack_uvarint(buf, pos)
            unpack = self._unpack_value
            items = []
            for _ in range(count):
                item, pos = unpack(buf, pos)
                items.append(item)
            if tag == _T_TUPLE:
                return tuple(items), pos
            if tag == _T_LIST:
                return items, pos
            return frozenset(items), pos
        if tag == _T_DICT:
            count, pos = _unpack_uvarint(buf, pos)
            unpack = self._unpack_value
            result = {}
            for _ in range(count):
                key, pos = unpack(buf, pos)
                value, pos = unpack(buf, pos)
                result[key] = value
            return result, pos
        if tag == _T_NONE:
            return None, pos
        if tag == _T_TRUE:
            return True, pos
        if tag == _T_FALSE:
            return False, pos
        if tag == _T_FLOAT:
            end = pos + 8
            if end > len(buf):
                raise WireCodecError("malformed frame body: truncated float")
            return _FLOAT_STRUCT.unpack_from(buf, pos)[0], end
        if tag == _T_BYTES:
            length, pos = _unpack_uvarint(buf, pos)
            end = pos + length
            if end > len(buf):
                raise WireCodecError("malformed frame body: truncated bytes")
            return bytes(buf[pos:end]), end
        raise WireCodecError(f"malformed frame body: unknown tag 0x{tag:02x}")


def _pack_str(codec: BinaryWireCodec, value: str, out: bytearray) -> None:
    encoded = value.encode("utf-8")
    out.append(_T_STR)
    _pack_uvarint(len(encoded), out)
    out += encoded


def _pack_tuple(codec: BinaryWireCodec, value: tuple, out: bytearray) -> None:
    out.append(_T_TUPLE)
    _pack_uvarint(len(value), out)
    pack = codec._pack_value
    for item in value:
        pack(item, out)


def _pack_list(codec: BinaryWireCodec, value: list, out: bytearray) -> None:
    out.append(_T_LIST)
    _pack_uvarint(len(value), out)
    pack = codec._pack_value
    for item in value:
        pack(item, out)


def _pack_fset(codec: BinaryWireCodec, value: frozenset, out: bytearray) -> None:
    # Sorted where possible so identical sets encode identically (matching
    # the JSON codec's convention); decode order is irrelevant to equality.
    try:
        items = sorted(value)
    except TypeError:
        items = list(value)
    out.append(_T_FSET)
    _pack_uvarint(len(items), out)
    pack = codec._pack_value
    for item in items:
        pack(item, out)


def _pack_dict(codec: BinaryWireCodec, value: dict, out: bytearray) -> None:
    out.append(_T_DICT)
    _pack_uvarint(len(value), out)
    pack = codec._pack_value
    for key, item in value.items():
        pack(key, out)
        pack(item, out)


# Exact-type dispatch for the hot shapes; subclasses fall through to the
# isinstance ladder in ``_pack_other`` (same trick as the canonicaliser in
# ``repro.crypto.backend``).
_BINARY_PACKERS: dict[type, Callable[[BinaryWireCodec, Any, bytearray], None]] = {
    type(None): lambda codec, value, out: out.append(_T_NONE),
    bool: lambda codec, value, out: out.append(_T_TRUE if value else _T_FALSE),
    int: lambda codec, value, out: (
        out.append(_T_INT),
        _pack_uvarint(_zigzag(value), out),
    )[0],
    float: lambda codec, value, out: (
        out.append(_T_FLOAT),
        out.__iadd__(_FLOAT_STRUCT.pack(value)),
    )[0],
    str: _pack_str,
    tuple: _pack_tuple,
    list: _pack_list,
    frozenset: _pack_fset,
    dict: _pack_dict,
}


def _message_subclasses(base: type) -> set[type]:
    """``base`` and every (transitive) subclass that is a live dataclass.

    ``@dataclass(slots=True)`` replaces the decorated class with a new one,
    leaving the original (slots-less) class in ``__subclasses__`` forever;
    only the class currently bound to its name in its defining module is
    the real wire type, so phantoms are filtered out here.
    """
    import sys

    found: set[type] = set()
    pending = [base]
    while pending:
        cls = pending.pop()
        if cls in found:
            continue
        found.add(cls)
        pending.extend(cls.__subclasses__())
    return {
        cls
        for cls in found
        if dataclasses.is_dataclass(cls)
        and getattr(sys.modules.get(cls.__module__), cls.__name__, None) is cls
    }


def _register_library_messages(codec: WireCodec) -> WireCodec:
    """Register every message type the library defines, in canonical order.

    Imports the consensus and pacemaker message modules (so their
    dataclasses exist), then registers the crypto/block value types followed
    by every dataclass reachable from the two message roots, sorted by name.
    The order is deterministic across processes — which is what lets
    :class:`BinaryWireCodec` use registration ordinals as wire ids.
    """
    # The message modules: importing them defines every wire dataclass.
    import repro.consensus.messages  # noqa: F401
    import repro.core.messages  # noqa: F401
    import repro.pacemakers.backoff  # noqa: F401
    import repro.pacemakers.cogsworth  # noqa: F401
    import repro.pacemakers.fever  # noqa: F401
    import repro.pacemakers.lp22  # noqa: F401
    import repro.pacemakers.naor_keidar  # noqa: F401
    import repro.pacemakers.raresync  # noqa: F401
    from repro.consensus.blocks import Block
    from repro.consensus.messages import ConsensusMessage
    from repro.consensus.quorum import QuorumCertificate
    from repro.crypto.signatures import Signature
    from repro.crypto.threshold import PartialSignature, ThresholdSignature
    from repro.pacemakers.base import PacemakerMessage
    from repro.statemachine.messages import ClientMessage, CommandBatch

    codec.register_all(
        [
            Block,
            QuorumCertificate,
            Signature,
            PartialSignature,
            ThresholdSignature,
            CommandBatch,
        ]
    )
    for base in (ConsensusMessage, PacemakerMessage, ClientMessage):
        codec.register_all(sorted(_message_subclasses(base), key=lambda c: c.__name__))
    return codec


_default: Optional[WireCodec] = None
_default_binary: Optional[BinaryWireCodec] = None


def default_codec() -> WireCodec:
    """The shared JSON codec knowing every message type the library defines.

    Built once per process; custom protocols with their own wire messages
    should build a :class:`WireCodec` and register on top (``default_codec()``
    returns the shared instance, so registering on it works too).
    """
    global _default
    if _default is None:
        _default = _register_library_messages(WireCodec())
    return _default


def default_binary_codec() -> BinaryWireCodec:
    """The shared binary codec over the same library-wide registry.

    The canonical registration order of :func:`_register_library_messages`
    assigns every message class the same numeric wire id in every process,
    so any two nodes using ``default_binary_codec()`` interoperate.  Custom
    messages must be registered *after* the defaults, identically on every
    node.
    """
    global _default_binary
    if _default_binary is None:
        _default_binary = _register_library_messages(BinaryWireCodec())
    return _default_binary


def available_codecs() -> tuple[str, ...]:
    """Names accepted by :func:`make_codec` (and the ``codec=`` knobs)."""
    return ("binary", "json")


def make_codec(name: str) -> WireCodec:
    """The shared codec instance registered for ``name``.

    ``"binary"`` is the :class:`TcpTransport` default; ``"json"`` selects
    the length-prefixed JSON format.  Raises :class:`WireCodecError` for
    unknown names.
    """
    if name == "binary":
        return default_binary_codec()
    if name == "json":
        return default_codec()
    raise WireCodecError(
        f"unknown wire codec {name!r}; available: {', '.join(available_codecs())}"
    )
