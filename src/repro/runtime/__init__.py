"""Pluggable runtimes: the seam between the protocol core and its world.

The consensus engine, the replicas and all eight pacemakers talk only to
the :class:`~repro.runtime.base.Runtime` interface — ``send`` /
``broadcast``, ``now``, ``set_timer`` / ``set_timer_at``, ``spawn`` — so
the *same* protocol objects execute

* under the discrete-event simulator
  (:class:`~repro.runtime.simulation.SimRuntime`, a pass-through adapter
  with byte-for-byte identical event ordering),
* on an asyncio loop in-memory
  (:class:`~repro.runtime.asyncio_runtime.AsyncioRuntime` +
  :class:`~repro.runtime.transports.LocalTransport`, deterministic when
  seeded under a :class:`~repro.runtime.asyncio_runtime.VirtualClock`), or
* over real TCP sockets (:class:`~repro.runtime.tcp.TcpTransport`,
  length-prefixed binary frames by default, JSON via ``codec="json"``).

See ``docs/runtimes.md`` for the interface contract and a
writing-a-transport guide.
"""

from repro.runtime.base import Clock, Runtime, RuntimeContext, TimerHandle
from repro.runtime.simulation import SimRuntime
from repro.runtime.asyncio_runtime import AsyncioRuntime, MonotonicClock, VirtualClock
from repro.runtime.transports import LocalTransport, Transport, TransportEnvelope
from repro.runtime.chaos import (
    ChaosConfig,
    ChaosContext,
    FaultCounters,
    FaultyTransport,
    ScheduleAdapter,
    adapt_schedule,
    live_adaptable_classes,
    register_live_adapter,
    schedule_downtime,
    track_downtime,
)
from repro.runtime.codec import (
    BinaryWireCodec,
    WireCodec,
    WireCodecError,
    available_codecs,
    default_binary_codec,
    default_codec,
    make_codec,
)
from repro.runtime.tcp import TcpTransport

__all__ = [
    "AsyncioRuntime",
    "BinaryWireCodec",
    "ChaosConfig",
    "ChaosContext",
    "Clock",
    "FaultCounters",
    "FaultyTransport",
    "LocalTransport",
    "MonotonicClock",
    "Runtime",
    "RuntimeContext",
    "ScheduleAdapter",
    "SimRuntime",
    "TcpTransport",
    "TimerHandle",
    "Transport",
    "TransportEnvelope",
    "VirtualClock",
    "WireCodec",
    "WireCodecError",
    "adapt_schedule",
    "available_codecs",
    "default_binary_codec",
    "default_codec",
    "live_adaptable_classes",
    "make_codec",
    "register_live_adapter",
    "schedule_downtime",
    "track_downtime",
]
