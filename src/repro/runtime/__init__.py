"""Pluggable runtimes: the seam between the protocol core and its world.

The consensus engine, the replicas and all eight pacemakers talk only to
the :class:`~repro.runtime.base.Runtime` interface — ``send`` /
``broadcast``, ``now``, ``set_timer`` / ``set_timer_at``, ``spawn`` — so
the *same* protocol objects execute

* under the discrete-event simulator
  (:class:`~repro.runtime.simulation.SimRuntime`, a pass-through adapter
  with byte-for-byte identical event ordering),
* on an asyncio loop in-memory
  (:class:`~repro.runtime.asyncio_runtime.AsyncioRuntime` +
  :class:`~repro.runtime.transports.LocalTransport`, deterministic when
  seeded under a :class:`~repro.runtime.asyncio_runtime.VirtualClock`), or
* over real TCP sockets (:class:`~repro.runtime.tcp.TcpTransport`,
  length-prefixed binary frames by default, JSON via ``codec="json"``), or
* over shared-memory rings between co-located node processes
  (:class:`~repro.runtime.shm.ShmTransport`, one SPSC ring per directed
  pair — zero syscalls and zero frame copies in steady state).

See ``docs/runtimes.md`` for the interface contract and a
writing-a-transport guide.
"""

from repro.runtime.base import Clock, Runtime, RuntimeContext, TimerHandle
from repro.runtime.simulation import SimRuntime
from repro.runtime.asyncio_runtime import AsyncioRuntime, MonotonicClock, VirtualClock
from repro.runtime.transports import LocalTransport, Transport, TransportEnvelope
from repro.runtime.chaos import (
    ChaosConfig,
    ChaosContext,
    FaultCounters,
    FaultyTransport,
    ScheduleAdapter,
    adapt_schedule,
    live_adaptable_classes,
    register_live_adapter,
    schedule_downtime,
    track_downtime,
)
from repro.runtime.codec import (
    BinaryWireCodec,
    WireCodec,
    WireCodecError,
    available_codecs,
    default_binary_codec,
    default_codec,
    make_codec,
)
from repro.runtime.tcp import TcpTransport
from repro.runtime.shm import (
    DEFAULT_RING_BYTES,
    ShmTransport,
    SpscRing,
    attach_ring,
    create_cluster_rings,
    destroy_cluster_rings,
    ring_segment_name,
)

__all__ = [
    "AsyncioRuntime",
    "BinaryWireCodec",
    "ChaosConfig",
    "ChaosContext",
    "Clock",
    "DEFAULT_RING_BYTES",
    "FaultCounters",
    "FaultyTransport",
    "LocalTransport",
    "MonotonicClock",
    "Runtime",
    "RuntimeContext",
    "ScheduleAdapter",
    "ShmTransport",
    "SimRuntime",
    "SpscRing",
    "TcpTransport",
    "TimerHandle",
    "Transport",
    "TransportEnvelope",
    "VirtualClock",
    "WireCodec",
    "WireCodecError",
    "adapt_schedule",
    "attach_ring",
    "available_codecs",
    "create_cluster_rings",
    "destroy_cluster_rings",
    "default_binary_codec",
    "default_codec",
    "live_adaptable_classes",
    "make_codec",
    "register_live_adapter",
    "ring_segment_name",
    "schedule_downtime",
    "track_downtime",
]
