"""``AsyncioRuntime``: the protocol core on an asyncio event loop.

One runtime hosts any number of local processes (a whole in-memory cluster
over :class:`~repro.runtime.transports.LocalTransport`, or a single node of
a TCP cluster over :class:`~repro.runtime.tcp.TcpTransport`) and runs in one
of two clock modes:

* :class:`VirtualClock` — **deterministic replay**.  The runtime keeps its
  own ``(time, seq)``-ordered event heap — the same ordering discipline as
  the discrete-event :class:`~repro.sim.events.Simulator` — and
  :meth:`AsyncioRuntime.run` drives it inside a coroutine, yielding to the
  loop between events.  With a seeded zero-jitter
  :class:`~repro.runtime.transports.LocalTransport` this reproduces a
  simulated run's decisions and ledgers exactly (see
  ``tests/test_live_runtime.py``), because timers and deliveries are
  scheduled by the same protocol calls in the same order and executed with
  the same tie-breaking.
* :class:`MonotonicClock` — **live wall-clock execution**.  Timers become
  ``loop.call_later`` callbacks, transports run real I/O tasks, and
  :meth:`AsyncioRuntime.run` simply sleeps until the requested wall
  duration (or a stop predicate) is reached.  The clock is re-zeroed at
  construction so live metrics share the "runs start near 0.0" convention
  of simulated ones.

Both modes honour the :class:`~repro.runtime.base.Runtime` contract:
sequential callbacks, timers never early, self-messages immediate.
"""

from __future__ import annotations

import asyncio
import heapq
import time as _time
from typing import Any, Callable, Optional, Sequence

from repro.errors import ConfigurationError, SimulationError
from repro.runtime.base import Clock, Runtime, TimerHandle
from repro.runtime.transports import Transport


class VirtualClock(Clock):
    """Deterministic virtual time, advanced only by the runtime's event heap."""

    __slots__ = ("_now",)

    def __init__(self, initial: float = 0.0) -> None:
        self._now = initial

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    def advance_to(self, time: float) -> None:
        """Move virtual time forward (never backwards)."""
        if time > self._now:
            self._now = time


class MonotonicClock(Clock):
    """Wall-clock time from ``time.monotonic``, re-zeroed at construction.

    Monotone and unaffected by system-clock jumps, which is exactly what
    local clocks and view timers need; sharing one instance across the
    nodes of an in-process cluster puts all their metrics on one timeline.

    ``origin`` pins time zero to an explicit ``time.monotonic()`` reading.
    On Linux ``CLOCK_MONOTONIC`` is system-wide, so a coordinator can take
    one reading and hand it to every node *process* of a multi-process
    cluster — their clocks then agree the way a shared instance makes
    in-process nodes agree (see
    :class:`~repro.runner.process_cluster.ProcessCluster`).
    """

    __slots__ = ("_origin",)

    def __init__(self, origin: Optional[float] = None) -> None:
        self._origin = _time.monotonic() if origin is None else origin

    @property
    def now(self) -> float:
        """Seconds of wall time since this clock was created."""
        return _time.monotonic() - self._origin


class _HeapTimerHandle:
    """Cancellable handle for virtual-mode heap timers (lazy cancellation)."""

    __slots__ = ("time", "cancelled", "fired", "label")

    def __init__(self, time: float, label: str = "") -> None:
        self.time = time
        self.cancelled = False
        self.fired = False
        self.label = label

    def cancel(self) -> None:
        """Prevent the timer from firing.  Safe to call more than once."""
        if not self.fired:
            self.cancelled = True

    @property
    def pending(self) -> bool:
        """True while neither fired nor cancelled."""
        return not self.cancelled and not self.fired

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "fired" if self.fired else ("cancelled" if self.cancelled else "pending")
        return f"_HeapTimerHandle(t={self.time:.3f}, {state}, label={self.label!r})"


class _LoopTimerHandle:
    """Cancellable handle wrapping a wall-mode ``loop.call_later`` callback."""

    __slots__ = ("cancelled", "fired", "label", "_loop_handle")

    def __init__(self, label: str = "") -> None:
        self.cancelled = False
        self.fired = False
        self.label = label
        self._loop_handle: Optional[asyncio.TimerHandle] = None

    def cancel(self) -> None:
        """Prevent the timer from firing.  Safe to call more than once."""
        if self.fired:
            return
        self.cancelled = True
        if self._loop_handle is not None:
            self._loop_handle.cancel()
            self._loop_handle = None

    @property
    def pending(self) -> bool:
        """True while neither fired nor cancelled."""
        return not self.cancelled and not self.fired

    def _run(self, runtime: "AsyncioRuntime", callback: Callable[..., None], args: tuple) -> None:
        if self.cancelled:
            return
        self.fired = True
        self._loop_handle = None
        runtime.events_processed += 1
        callback(*args)


class AsyncioRuntime(Runtime):
    """Run protocol processes on an asyncio loop over a pluggable transport.

    Parameters
    ----------
    transport:
        Message fabric; bound to this runtime at construction.  The
        transport schedules its local deliveries back through
        :meth:`call_after`, so delivery ordering follows the clock mode.
    clock:
        A :class:`VirtualClock` (default — deterministic replay) or a
        :class:`MonotonicClock` (live wall-clock execution).
    trace:
        Optional :class:`~repro.sim.tracing.TraceRecorder`.
    seed:
        Seed for :attr:`rng` (protocol-visible randomness).
    """

    #: Hard cap on virtual-mode events executed at one timestamp — the same
    #: zero-delay-chain livelock guard as
    #: :attr:`~repro.sim.events.Simulator.MAX_EVENTS_PER_TIMESTAMP`.
    MAX_EVENTS_PER_TIMESTAMP = 100_000

    def __init__(
        self,
        transport: Transport,
        clock: Optional[Clock] = None,
        trace: Any = None,
        seed: int = 0,
    ) -> None:
        import random

        self.transport = transport
        self.clock = clock if clock is not None else VirtualClock()
        self.virtual = isinstance(self.clock, VirtualClock)
        self.trace = trace
        self.rng = random.Random(seed)
        self.events_processed = 0
        self._processes: dict[int, Any] = {}
        # Virtual-mode event heap: (time, seq, handle_or_None, callback, args),
        # the Simulator's exact entry shape and tie-breaking discipline.
        self._heap: list[tuple[float, int, Optional[_HeapTimerHandle], Callable, tuple]] = []
        self._seq = 0
        self._stopping = False
        transport.bind(self)

    # ------------------------------------------------------------------
    # Time
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current time under this runtime's clock."""
        return self.clock.now

    # ------------------------------------------------------------------
    # Timers
    # ------------------------------------------------------------------
    def set_timer(
        self, delay: float, callback: Callable[..., None], *args: Any, label: str = ""
    ) -> TimerHandle:
        """Arm a cancellable timer ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule with negative delay {delay!r}")
        if self.virtual:
            return self._push(self.now + delay, callback, args, label)
        handle = _LoopTimerHandle(label)
        handle._loop_handle = asyncio.get_running_loop().call_later(
            delay, handle._run, self, callback, args
        )
        return handle

    def set_timer_at(
        self, time: float, callback: Callable[..., None], *args: Any, label: str = ""
    ) -> TimerHandle:
        """Arm a cancellable timer at absolute runtime time ``time``.

        Virtual mode rejects past times like the simulator does (time
        cannot advance between a caller reading ``now`` and scheduling).
        Wall mode clamps them to "fire immediately" instead: the monotonic
        clock keeps moving between those two instants, so a caller's
        freshly computed ``max(target, self.now)`` may already be a hair
        in the past by the time it arrives here.
        """
        if self.virtual:
            if time < self.now:
                raise SimulationError(
                    f"cannot schedule event at {time!r}, which is before now={self.now!r}"
                )
            return self._push(time, callback, args, label)
        return self.set_timer(max(0.0, time - self.now), callback, *args, label=label)

    def call_after(self, delay: float, callback: Callable[..., None], *args: Any) -> None:
        """Fire-and-forget lane: virtual mode skips the handle allocation."""
        if delay < 0:
            raise SimulationError(f"cannot schedule with negative delay {delay!r}")
        if self.virtual:
            self._seq += 1
            heapq.heappush(self._heap, (self.now + delay, self._seq, None, callback, args))
            return
        handle = _LoopTimerHandle()
        handle._loop_handle = asyncio.get_running_loop().call_later(
            delay, handle._run, self, callback, args
        )

    def _push(
        self, time: float, callback: Callable[..., None], args: tuple, label: str
    ) -> _HeapTimerHandle:
        handle = _HeapTimerHandle(time, label)
        self._seq += 1
        heapq.heappush(self._heap, (time, self._seq, handle, callback, args))
        return handle

    # ------------------------------------------------------------------
    # Messaging and registration
    # ------------------------------------------------------------------
    def send(self, sender: int, recipient: int, payload: Any) -> None:
        """Point-to-point send through the transport."""
        self.transport.send(sender, recipient, payload)

    def broadcast(self, sender: int, payload: Any) -> None:
        """Broadcast (including self) through the transport."""
        self.transport.broadcast(sender, payload)

    def register(self, process: Any) -> None:
        """Attach a local process and register it as a transport endpoint."""
        pid = process.pid
        if pid in self._processes:
            raise SimulationError(f"process id {pid} registered twice")
        self._processes[pid] = process
        self.transport.register(process)

    @property
    def process_ids(self) -> Sequence[int]:
        """Sorted ids of every addressable processor (transport-wide)."""
        return self.transport.process_ids

    def process(self, pid: int) -> Any:
        """The locally hosted process with id ``pid``."""
        return self._processes[pid]

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    async def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
        stop_when: Optional[Callable[[], bool]] = None,
        poll: float = 0.02,
    ) -> None:
        """Drive the runtime inside a coroutine.

        Virtual mode executes heap events in ``(time, seq)`` order until the
        heap drains, ``until`` (virtual seconds) is reached, ``max_events``
        further events ran, or ``stop_when()`` turns true (checked between
        events); like :meth:`Simulator.run`, it finishes with ``now`` equal
        to ``until``.  Wall mode starts the transport's I/O tasks (if not
        already started) and sleeps in ``poll``-second steps until ``until``
        wall seconds elapsed or ``stop_when()`` turns true; ``max_events``
        is a replay budget and is rejected there rather than ignored.
        """
        if self.virtual:
            await self._run_virtual(until, max_events, stop_when)
            return
        if max_events is not None:
            raise ConfigurationError(
                "max_events is a virtual-mode replay budget; wall-clock runs "
                "are bounded by `until` and `stop_when`"
            )
        await self.transport.start()
        deadline = None if until is None else self.now + until
        while not self._stopping:
            if stop_when is not None and stop_when():
                return
            if deadline is not None:
                remaining = deadline - self.now
                if remaining <= 0:
                    return
                await asyncio.sleep(min(poll, remaining))
            else:
                await asyncio.sleep(poll)

    async def _run_virtual(
        self,
        until: Optional[float],
        max_events: Optional[int],
        stop_when: Optional[Callable[[], bool]],
    ) -> None:
        clock = self.clock
        heap = self._heap
        budget = max_events if max_events is not None else -1
        if max_events is not None and budget <= 0:
            return
        events_at_now = 0
        last_time = clock.now
        executed = 0
        while heap:
            if budget == 0:
                return
            if stop_when is not None and stop_when():
                return
            entry = heap[0]
            handle = entry[2]
            if handle is not None and handle.cancelled:
                heapq.heappop(heap)
                continue
            event_time = entry[0]
            if until is not None and event_time > until:
                clock.advance_to(until)
                return
            heapq.heappop(heap)
            if handle is not None:
                handle.fired = True
            if event_time != last_time:
                clock.advance_to(event_time)
                last_time = event_time
                events_at_now = 1
            else:
                events_at_now += 1
                if events_at_now > self.MAX_EVENTS_PER_TIMESTAMP:
                    raise SimulationError(
                        f"more than {self.MAX_EVENTS_PER_TIMESTAMP} events executed "
                        f"at timestamp {event_time!r} without time advancing; give "
                        "the transport a positive delay or jitter floor"
                    )
            self.events_processed += 1
            entry[3](*entry[4])
            if budget > 0:
                budget -= 1
            executed += 1
            if executed % 256 == 0:
                # Stay cooperative: let other loop tasks (sibling runtimes,
                # watchdogs) breathe during long deterministic replays.
                await asyncio.sleep(0)
        if until is not None:
            clock.advance_to(until)

    def run_sync(
        self, until: Optional[float] = None, max_events: Optional[int] = None
    ) -> None:
        """Blocking convenience wrapper: ``asyncio.run(self.run(...))``.

        Virtual mode only — a wall-clock runtime needs a caller-owned loop
        so transports and replicas can share it.
        """
        if not self.virtual:
            raise ConfigurationError(
                "run_sync is only available with a VirtualClock; drive a "
                "wall-clock runtime from your own event loop via `await run(...)`"
            )
        asyncio.run(self.run(until=until, max_events=max_events))

    async def stop(self) -> None:
        """Stop a wall-mode run loop and shut the transport down."""
        self._stopping = True
        await self.transport.stop()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mode = "virtual" if self.virtual else "wall"
        return (
            f"AsyncioRuntime({mode}, now={self.now:.3f}, "
            f"processes={sorted(self._processes)}, events={self.events_processed})"
        )
