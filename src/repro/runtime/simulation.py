"""``SimRuntime``: the discrete-event simulator behind the runtime seam.

The adapter is deliberately nothing but pass-throughs: ``set_timer`` *is*
:meth:`~repro.sim.events.Simulator.schedule`, ``send`` *is*
:meth:`~repro.sim.network.Network.send`, and so on.  A protocol refactored
onto the :class:`~repro.runtime.base.Runtime` interface therefore issues the
exact same simulator and network calls, in the same order, as the
pre-runtime code did — the event heap sees identical ``(time, seq)``
entries, so traces, metrics and decisions are byte-for-byte unchanged (the
``tests/test_batched_delivery.py`` equivalence suite and the committed
``benchmarks/BASELINE_smoke.json`` decision counts both guard this).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Sequence

from repro.runtime.base import Runtime, TimerHandle

if TYPE_CHECKING:  # pragma: no cover - type-checking only
    from repro.sim.events import Simulator
    from repro.sim.network import Network
    from repro.sim.tracing import TraceRecorder


class SimRuntime(Runtime):
    """Adapter presenting a :class:`Simulator` + :class:`Network` as a :class:`Runtime`.

    Parameters
    ----------
    sim:
        The discrete-event simulator providing time and timers.
    network:
        The partial-synchrony network providing message delivery.
    trace:
        Optional trace recorder, exposed as :attr:`trace` by convention.
    """

    __slots__ = ("sim", "network", "trace", "rng")

    def __init__(self, sim: "Simulator", network: "Network", trace: "TraceRecorder" = None) -> None:
        self.sim = sim
        self.network = network
        self.trace = trace
        self.rng = sim.rng

    # ------------------------------------------------------------------
    # Time and timers
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time."""
        return self.sim.now

    def set_timer(
        self, delay: float, callback: Callable[..., None], *args: Any, label: str = ""
    ) -> TimerHandle:
        """Schedule via the simulator's cancellable lane."""
        return self.sim.schedule(delay, callback, *args, label=label)

    def set_timer_at(
        self, time: float, callback: Callable[..., None], *args: Any, label: str = ""
    ) -> TimerHandle:
        """Schedule at absolute virtual time via the simulator's cancellable lane."""
        return self.sim.schedule_at(time, callback, *args, label=label)

    def call_after(self, delay: float, callback: Callable[..., None], *args: Any) -> None:
        """Fire-and-forget lane: no handle allocation (``schedule_fired``)."""
        self.sim.schedule_fired(delay, callback, *args)

    # ------------------------------------------------------------------
    # Messaging and registration
    # ------------------------------------------------------------------
    def send(self, sender: int, recipient: int, payload: Any) -> None:
        """Point-to-point send through the simulated network."""
        self.network.send(sender, recipient, payload)

    def broadcast(self, sender: int, payload: Any) -> None:
        """Broadcast (including self) through the simulated network."""
        self.network.broadcast(sender, payload)

    def register(self, process: Any) -> None:
        """Register the process as a network endpoint."""
        self.network.register(process)

    @property
    def process_ids(self) -> Sequence[int]:
        """Sorted ids of all registered processes."""
        return self.network.process_ids

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimRuntime(now={self.sim.now:.3f}, n={len(self.process_ids)})"
