"""Transports: the message fabric beneath an :class:`AsyncioRuntime`.

A :class:`Transport` owns addressing (``process_ids``), endpoint
registration and the actual movement of payloads; the runtime delegates
:meth:`~repro.runtime.base.Runtime.send` / ``broadcast`` here.  Transports
mirror the observation surface of the simulated
:class:`~repro.sim.network.Network` — ``send_listeners`` /
``deliver_listeners`` called with an envelope per message, plus
``messages_sent`` / ``messages_delivered`` counters — so the metrics layer
attaches to a live transport exactly the way it attaches to a simulated
network (:meth:`~repro.metrics.collector.MetricsCollector.attach_transport`).

Two implementations ship:

* :class:`LocalTransport` (here) — in-memory, single-runtime: the whole
  cluster lives on one event loop.  Per-message latency is
  ``delay + U(0, jitter)`` drawn from a transport-local seeded RNG, so runs
  are deterministic under a :class:`~repro.runtime.asyncio_runtime.VirtualClock`;
  with zero jitter it reproduces a ``FixedDelay`` simulation exactly.
* :class:`~repro.runtime.tcp.TcpTransport` — one node of a real cluster,
  length-prefixed JSON frames over ``asyncio`` TCP streams.
"""

from __future__ import annotations

import itertools
import random
from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Any, Callable, NamedTuple, Optional, Sequence

from repro.errors import ConfigurationError, SimulationError

if TYPE_CHECKING:  # pragma: no cover - type-checking only
    from repro.runtime.asyncio_runtime import AsyncioRuntime


class TransportEnvelope(NamedTuple):
    """One in-flight message as observed by transport listeners.

    Field-compatible with the simulator's
    :class:`~repro.sim.network.Envelope` (the metrics collector duck-types
    over either).  ``deliver_time`` is the *scheduled* delivery time for
    local transports and the send time for TCP (real network latency is not
    known at send time); ``payload_digest`` is ``None`` unless the transport
    has a crypto backend attached.
    """

    msg_id: int
    sender: int
    recipient: int
    payload: Any
    send_time: float
    deliver_time: float
    payload_digest: Optional[str] = None

    @property
    def is_self_message(self) -> bool:
        """Whether the message was sent by a processor to itself."""
        return self.sender == self.recipient


class Transport(ABC):
    """Base class of all live-message fabrics.

    Subclasses implement :meth:`send` (and usually override
    :meth:`broadcast` only when they can do better than a send-per-peer
    loop) plus the async :meth:`start` / :meth:`stop` lifecycle for real
    I/O resources.  The shared machinery here handles listener fan-out,
    counters and envelope minting.
    """

    def __init__(self) -> None:
        self.send_listeners: list[Callable[[TransportEnvelope], None]] = []
        self.deliver_listeners: list[Callable[[TransportEnvelope], None]] = []
        self.messages_sent = 0
        self.messages_delivered = 0
        self._msg_ids = itertools.count()
        self._runtime: Optional["AsyncioRuntime"] = None

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def bind(self, runtime: "AsyncioRuntime") -> None:
        """Attach the runtime whose clock and scheduler deliveries use."""
        self._runtime = runtime

    @property
    def runtime(self) -> "AsyncioRuntime":
        """The bound runtime (raises if the transport is not bound yet)."""
        if self._runtime is None:
            raise ConfigurationError(
                f"{type(self).__name__} is not bound to a runtime yet; construct "
                "an AsyncioRuntime around it first"
            )
        return self._runtime

    @abstractmethod
    def register(self, process: Any) -> None:
        """Attach a locally hosted process as a delivery endpoint."""

    @property
    @abstractmethod
    def process_ids(self) -> Sequence[int]:
        """Sorted ids of every addressable processor, local and remote."""

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    @abstractmethod
    def send(self, sender: int, recipient: int, payload: Any) -> None:
        """Move ``payload`` from ``sender`` to ``recipient``."""

    def broadcast(self, sender: int, payload: Any, include_self: bool = True) -> None:
        """Send ``payload`` to every processor, in ascending id order.

        The id order matters for determinism: under a virtual clock the
        per-recipient jitter draws and delivery-event sequence numbers
        follow this loop, matching the simulated network's convention.
        """
        for pid in self.process_ids:
            if include_self or pid != sender:
                self.send(sender, pid, payload)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bring up I/O resources (servers, connections).  Default: no-op."""

    async def stop(self) -> None:
        """Tear down I/O resources.  Default: no-op."""

    # ------------------------------------------------------------------
    # Shared internals
    # ------------------------------------------------------------------
    def _mint(
        self, sender: int, recipient: int, payload: Any, deliver_time: float
    ) -> TransportEnvelope:
        """Create the envelope, bump counters and notify send listeners."""
        now = self.runtime.now
        envelope = TransportEnvelope(
            next(self._msg_ids), sender, recipient, payload, now, deliver_time
        )
        self.messages_sent += 1
        for listener in self.send_listeners:
            listener(envelope)
        return envelope

    def _delivered(self, envelope: TransportEnvelope, process: Any) -> None:
        """Notify deliver listeners and hand the payload to the process."""
        self.messages_delivered += 1
        for listener in self.deliver_listeners:
            listener(envelope)
        process.deliver(envelope.payload, envelope.sender)


class LocalTransport(Transport):
    """In-memory transport: the whole cluster on one runtime.

    Parameters
    ----------
    delay:
        Base latency applied to every message between *distinct* processors
        (self-messages are always immediate, the paper's convention).
    jitter:
        Width of the uniform jitter band added to ``delay``; each message
        draws ``U(0, jitter)`` from the transport's own seeded RNG, so a
        given ``(seed, send order)`` always yields the same latencies —
        deterministic replay under a virtual clock, reproducible noise
        under a wall clock.
    seed:
        Seed of the jitter RNG.
    """

    def __init__(self, delay: float = 0.0, jitter: float = 0.0, seed: int = 0) -> None:
        super().__init__()
        if delay < 0:
            raise ConfigurationError(f"delay must be non-negative, got {delay}")
        if jitter < 0:
            raise ConfigurationError(f"jitter must be non-negative, got {jitter}")
        self.delay = delay
        self.jitter = jitter
        self._rng = random.Random(seed)
        self._processes: dict[int, Any] = {}
        self._sorted_ids: tuple[int, ...] = ()

    def register(self, process: Any) -> None:
        """Register a process; ids must be unique and never unregister."""
        pid = process.pid
        if pid in self._processes:
            raise SimulationError(f"process id {pid} registered twice")
        self._processes[pid] = process
        self._sorted_ids = tuple(sorted(self._processes))

    @property
    def process_ids(self) -> Sequence[int]:
        """Sorted ids of all registered processes."""
        return self._sorted_ids

    def draw_delay(self, sender: int, recipient: int) -> float:
        """The latency this transport would apply to one message, drawn now.

        Consumes one jitter draw when jitter is configured, exactly as
        :meth:`send` would — callers that use the returned value with
        :meth:`send_with_delay` keep the RNG stream identical to an
        unwrapped transport.
        """
        if sender == recipient:
            return 0.0
        delay = self.delay
        if self.jitter:
            delay += self._rng.uniform(0.0, self.jitter)
        return delay

    def send_with_delay(
        self,
        sender: int,
        recipient: int,
        payload: Any,
        delay: float,
        deliver: bool = True,
    ) -> TransportEnvelope:
        """Send with an exact caller-imposed latency (the chaos-layer seam).

        Mints the envelope (counters and send listeners fire as usual, with
        the true ``deliver_time``) and schedules delivery ``delay`` seconds
        out.  ``deliver=False`` mints without scheduling — the envelope was
        sent but never arrives, which is how a drop injector keeps the
        sender-side accounting honest.
        """
        process = self._processes.get(recipient)
        if process is None:
            raise SimulationError(f"unknown recipient {recipient}")
        envelope = self._mint(sender, recipient, payload, self.runtime.now + delay)
        if deliver:
            self.runtime.call_after(delay, self._delivered, envelope, process)
        return envelope

    def send(self, sender: int, recipient: int, payload: Any) -> None:
        """Schedule an in-memory delivery through the runtime's timer lane."""
        self.send_with_delay(
            sender, recipient, payload, self.draw_delay(sender, recipient)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LocalTransport(n={len(self._processes)}, delay={self.delay}, "
            f"jitter={self.jitter}, sent={self.messages_sent})"
        )
