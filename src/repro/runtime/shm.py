"""``ShmTransport``: shared-memory message fabric for co-located node processes.

A :class:`~repro.runner.process_cluster.ProcessCluster` with
``transport="tcp"`` pays localhost-TCP syscalls, length-prefix framing and
at least two full buffer copies for every frame exchanged between processes
that live on the *same machine*.  This module replaces that path with one
fixed-size **SPSC ring buffer per directed node pair**, backed by
:class:`multiprocessing.shared_memory.SharedMemory`:

* the producer encodes a frame straight into a reusable staging buffer
  (:meth:`~repro.runtime.codec.WireCodec.encode_into`, no intermediate
  ``bytes``) and copies it into the ring **once**;
* the consumer decodes frames **in place** from a ``memoryview`` over the
  ring (a contiguous frame is never copied out before decoding) and only
  then advances the read index;
* in steady state neither side makes a single syscall per frame — the ring
  is plain memory shared by two processes.

Idle links must not burn CPU, so delivery is **doorbell-driven**: each
node binds a nonblocking **UDP doorbell** socket whose address rides the
exact same bootstrap address-exchange as a TCP port, and the doorbell's
``add_reader`` callback drains every inbound ring synchronously — the
same shape as the TCP reader's ``data_received``, with no pump task and
no per-wake allocations; the event loop simply blocks in its selector
between bursts.  When a drain burst finds every ring empty, the consumer
re-arms a *sleeping* flag in each inbound ring's header and re-checks
once (closing the race with a producer that pushed after the last sweep
but read the flag before it rose).  A producer that observes the flag
pokes the doorbell — one datagram, then the flag is cleared, so an
entire burst costs one syscall, not one per frame.  A coarse
:attr:`ShmTransport.WAKE_TIMEOUT` re-check timer backstops the handshake:
x86-64 gives no store-load barrier between "producer stores frame, loads
flag" and "consumer stores flag, loads write index", so a poke can in
principle be missed — the timer bounds the hiccup instead of hanging the
link.

Overflow is accounted, never blocking: a frame that does not fit is dropped
on the producer side, counted in :attr:`ShmTransport.frames_dropped` (the
same counter the metrics layer folds into a run's fault counts for TCP) and
surfaced once per peer in :attr:`ShmTransport.last_errors`.

Lifecycle: the **parent** (``ProcessCluster``) creates every segment before
spawning workers (:func:`create_cluster_rings`) and is the only process
that ever unlinks them (:func:`destroy_cluster_rings`).  Workers attach by
deterministic name (:func:`attach_ring`); spawned workers inherit the
parent's :mod:`multiprocessing.resource_tracker` process, so attach-side
registrations deduplicate against the parent's and the parent's ``unlink``
retires them — workers must *not* unregister, which would yank the
parent's own registration out of the shared tracker.
"""

from __future__ import annotations

import asyncio
import socket
import struct
from multiprocessing.shared_memory import SharedMemory
from typing import Any, Mapping, Optional, Sequence, Union

from repro.errors import ConfigurationError, SimulationError
from repro.runtime.codec import (
    LENGTH_PREFIX_BYTES,
    WireCodec,
    WireCodecError,
    default_binary_codec,
    make_codec,
)
from repro.runtime.transports import Transport, TransportEnvelope

#: Bytes reserved at the front of every segment for the ring header.
#: Fields live on separate 64-byte lines so the producer-owned write index
#: and the consumer-owned read index never share a cache line.
RING_HEADER_BYTES = 256

#: Default data capacity of one directed ring (a protocol frame is
#: typically well under 1 KiB, so this buffers hundreds of frames).
DEFAULT_RING_BYTES = 256 * 1024

#: Smallest accepted ring capacity; anything less cannot hold a burst.
MIN_RING_BYTES = 4096

_OFF_WRITE = 0  # producer-owned monotonic write index (8 bytes, LE)
_OFF_READ = 64  # consumer-owned monotonic read index (8 bytes, LE)
_OFF_SLEEP = 128  # consumer-sleeping flag (1 byte)

# ``Struct.unpack_from``/``pack_into`` read and write the header words
# without materialising a slice object per access — the header is touched
# several times per frame on both sides, so the hot path stays
# allocation-free.
_U64 = struct.Struct("<Q")
_PREFIX = struct.Struct(">I")
assert _PREFIX.size == LENGTH_PREFIX_BYTES


def ring_segment_name(token: str, src: int, dst: int) -> str:
    """Deterministic segment name of the ``src -> dst`` ring of a cluster.

    ``token`` is the cluster's shm namespace (minted once by the parent);
    both sides derive the same name independently, so no ring handle ever
    crosses the control pipe.
    """
    return f"repro-{token}-{src}-{dst}"


class SpscRing:
    """Single-producer single-consumer byte ring over a shared-memory buffer.

    Layout: a :data:`RING_HEADER_BYTES` header (monotonic write index,
    monotonic read index, consumer-sleeping flag — the indices never wrap,
    so ``write - read`` is always the exact number of unread bytes) followed
    by ``capacity`` data bytes addressed modulo ``capacity``.  Frames are
    stored exactly as the codecs emit them — 4-byte big-endian length prefix
    plus body — and either part may wrap around the end of the data region.

    One process may call :meth:`try_push`; a different (or the same) process
    may call :meth:`peek`/:meth:`consume`.  Each side caches its own index
    in Python and publishes it to the header for the other side, so a push
    costs one header load and one header store.
    """

    def __init__(self, buf: memoryview, capacity: int) -> None:
        self._buf = buf
        self._data = buf[RING_HEADER_BYTES : RING_HEADER_BYTES + capacity]
        self.capacity = capacity
        self._w = self._load(_OFF_WRITE)
        self._r = self._load(_OFF_READ)
        #: Frames refused by :meth:`try_push` because the ring was full.
        self.dropped = 0
        self._pending = 0  # total bytes of the last peeked frame

    # ------------------------------------------------------------------
    # Header accessors
    # ------------------------------------------------------------------
    def _load(self, offset: int) -> int:
        return _U64.unpack_from(self._buf, offset)[0]

    def _store(self, offset: int, value: int) -> None:
        _U64.pack_into(self._buf, offset, value)

    @property
    def unread_bytes(self) -> int:
        """Bytes written but not yet consumed (either side may ask)."""
        buf = self._buf
        return _U64.unpack_from(buf, _OFF_WRITE)[0] - _U64.unpack_from(buf, _OFF_READ)[0]

    # ------------------------------------------------------------------
    # Producer side
    # ------------------------------------------------------------------
    def try_push(self, frame: Union[bytes, bytearray, memoryview]) -> bool:
        """Copy one complete frame (prefix included) into the ring.

        Returns ``False`` — and counts the frame in :attr:`dropped` —
        when the frame does not fit in the free space; the ring is never
        blocked on and existing content is never overwritten.
        """
        n = len(frame)
        w = self._w
        cap = self.capacity
        if n > cap - (w - _U64.unpack_from(self._buf, _OFF_READ)[0]):
            self.dropped += 1
            return False
        pos = w % cap
        first = cap - pos
        if n <= first:
            self._data[pos : pos + n] = frame
        else:
            view = memoryview(frame)
            self._data[pos:] = view[:first]
            self._data[: n - first] = view[first:]
        # Data is in place before the index store publishes it (x86-64
        # preserves store order; CPython executes these sequentially).
        self._w = w + n
        _U64.pack_into(self._buf, _OFF_WRITE, self._w)
        return True

    def consumer_sleeping(self) -> bool:
        """Whether the consumer advertised it is parked on its doorbell."""
        return self._buf[_OFF_SLEEP] != 0

    # ------------------------------------------------------------------
    # Consumer side
    # ------------------------------------------------------------------
    def peek(self) -> Optional[Union[bytes, memoryview]]:
        """The next frame's body without consuming it, or ``None`` if empty.

        A contiguous body comes back as a ``memoryview`` straight into the
        ring — decode it *before* :meth:`consume`, which is what makes the
        read path zero-copy (the producer cannot overwrite unconsumed
        bytes).  A body that wraps the ring edge is assembled into a fresh
        ``bytes`` from its two slices.
        """
        r = self._r
        if _U64.unpack_from(self._buf, _OFF_WRITE)[0] == r:
            return None
        cap = self.capacity
        data = self._data
        pos = r % cap
        if pos + LENGTH_PREFIX_BYTES <= cap:
            length = _PREFIX.unpack_from(data, pos)[0]
        else:
            split = cap - pos
            length = int.from_bytes(
                bytes(data[pos:]) + bytes(data[: LENGTH_PREFIX_BYTES - split]),
                "big",
            )
        self._pending = LENGTH_PREFIX_BYTES + length
        body_pos = (pos + LENGTH_PREFIX_BYTES) % cap
        if body_pos + length <= cap:
            return data[body_pos : body_pos + length]
        split = cap - body_pos
        return bytes(data[body_pos:]) + bytes(data[: length - split])

    def consume(self) -> None:
        """Advance past the frame returned by the last :meth:`peek`."""
        self._r += self._pending
        self._pending = 0
        _U64.pack_into(self._buf, _OFF_READ, self._r)

    def set_sleeping(self, flag: bool) -> None:
        """Publish (or retract) the consumer's about-to-sleep advertisement."""
        self._buf[_OFF_SLEEP] = 1 if flag else 0

    def detach(self) -> None:
        """Release this ring's views so the segment can be closed."""
        self._data.release()
        self._buf.release()


# ----------------------------------------------------------------------
# Segment lifecycle helpers
# ----------------------------------------------------------------------
def create_cluster_rings(
    token: str, pids: Sequence[int], ring_bytes: int
) -> list[SharedMemory]:
    """Create one segment per directed node pair (parent side).

    The parent calls this before spawning workers and keeps the returned
    handles; it is the sole owner of the segments' lifetime
    (:func:`destroy_cluster_rings`).
    """
    if ring_bytes < MIN_RING_BYTES:
        raise ConfigurationError(
            f"ring_bytes must be >= {MIN_RING_BYTES}, got {ring_bytes}"
        )
    segments: list[SharedMemory] = []
    try:
        for src in pids:
            for dst in pids:
                if src == dst:
                    continue
                segments.append(
                    SharedMemory(
                        name=ring_segment_name(token, src, dst),
                        create=True,
                        size=RING_HEADER_BYTES + ring_bytes,
                    )
                )
    except Exception:
        destroy_cluster_rings(segments)
        raise
    return segments


def destroy_cluster_rings(segments: Sequence[SharedMemory]) -> None:
    """Close and unlink every segment, ignoring already-gone ones."""
    for segment in segments:
        try:
            segment.close()
        except BufferError:  # pragma: no cover - views still exported
            pass
        try:
            segment.unlink()
        except FileNotFoundError:
            pass


def attach_ring(name: str) -> SharedMemory:
    """Attach an existing segment without adopting its lifetime (worker side).

    CPython's :mod:`multiprocessing.resource_tracker` registers shared
    memory on *attach* as well as on create — but spawned workers inherit
    the *parent's* tracker process, whose registration cache is a set:
    the attach-side register deduplicates against the parent's create-side
    one, and the parent's ``unlink()`` retires it.  Unregistering here
    would remove the parent's registration from the shared tracker (and a
    second worker's unregister would raise ``KeyError`` inside the tracker
    process), so attaching is all this needs to do.
    """
    return SharedMemory(name=name, create=False)


class ShmTransport(Transport):
    """Shared-memory message fabric for a single node of a live cluster.

    Drop-in sibling of :class:`~repro.runtime.tcp.TcpTransport` for nodes
    that share a machine: the same ``send``/``broadcast``/listener surface,
    the same ``start_server``/``set_peers`` bootstrap dance (the address
    exchanged is the node's UDP doorbell instead of a TCP listen port), the
    same ``frames_dropped``/``last_errors`` accounting — so
    :class:`~repro.runtime.chaos.FaultyTransport` and the metrics layer
    wrap it unchanged.  Only meaningful under a wall clock (it is built for
    :class:`~repro.runner.process_cluster.ProcessCluster` workers).

    Parameters
    ----------
    pid:
        The processor id of the (single) local process this node hosts.
    token:
        The cluster's shm namespace; all nodes of one cluster must agree
        (the parent mints it and ships it through the shard spec).
    codec:
        Wire codec instance or name, exactly as for ``TcpTransport``.
    ring_bytes:
        Data capacity of each directed ring this node consumes or fills.
        Must match the creator's value — both sides derive the data region
        from it.
    host:
        Doorbell bind host (loopback; shm peers are local by definition).
    """

    #: Period of the idle re-check timer: backstops a missed doorbell.
    WAKE_TIMEOUT = 0.05

    #: Empty re-sweeps after a drain burst before re-arming the sleep
    #: flags (a producer may push between the last sweep and the flags;
    #: the post-park unread re-check catches anything this misses, so one
    #: sweep of spin insurance is enough).
    SPIN_SWEEPS = 1

    #: Frames drained from one ring before giving its siblings a turn.
    MAX_DRAIN_PER_RING = 128

    #: Drain sweeps executed inside one doorbell callback before the
    #: remainder is rescheduled with ``call_soon`` — keeps timers and the
    #: control pipe responsive under a sustained flood.
    MAX_SWEEPS_PER_CALLBACK = 8

    def __init__(
        self,
        pid: int,
        token: str,
        codec: Union[WireCodec, str, None] = None,
        ring_bytes: int = DEFAULT_RING_BYTES,
        host: str = "127.0.0.1",
    ) -> None:
        super().__init__()
        self.pid = pid
        self.token = token
        self.host = host
        if codec is None:
            self.codec = default_binary_codec()
        elif isinstance(codec, str):
            self.codec = make_codec(codec)
        else:
            self.codec = codec
        if ring_bytes < MIN_RING_BYTES:
            raise ConfigurationError(
                f"ring_bytes must be >= {MIN_RING_BYTES}, got {ring_bytes}"
            )
        self.ring_bytes = ring_bytes
        #: Frames dropped because an outbound ring was full (folded into a
        #: run's fault counts by ``MetricsCollector.attach_transport``).
        self.frames_dropped = 0
        #: Teardown/overflow errors surfaced instead of swallowed.
        self.last_errors: list[str] = []
        self._peers: dict[int, tuple[str, int]] = {}
        self._process: Any = None
        self._sock: Optional[socket.socket] = None
        self._rings_out: dict[int, SpscRing] = {}
        self._rings_in: dict[int, SpscRing] = {}
        self._segments: list[SharedMemory] = []
        self._in_pairs: tuple[tuple[int, SpscRing], ...] = ()
        self._stopped = False
        self._reader_installed = False
        self._backstop_handle: Optional[asyncio.TimerHandle] = None
        self._drain_scheduled = False
        self._scratch = bytearray()
        self._overflowed: set[int] = set()

    # ------------------------------------------------------------------
    # Addressing
    # ------------------------------------------------------------------
    def register(self, process: Any) -> None:
        """Attach the node's local process (exactly one per transport)."""
        if process.pid != self.pid:
            raise ConfigurationError(
                f"ShmTransport for pid {self.pid} cannot host process {process.pid}; "
                "one transport per node"
            )
        if self._process is not None:
            raise SimulationError(f"process id {self.pid} registered twice")
        self._process = process

    def set_peers(self, peers: Mapping[int, tuple[str, int]]) -> None:
        """Install the ``pid -> doorbell address`` map (own entry ignored)."""
        self._peers = {
            pid: tuple(addr) for pid, addr in peers.items() if pid != self.pid
        }

    @property
    def process_ids(self) -> Sequence[int]:
        """Sorted ids of the whole cluster (self plus peers)."""
        return sorted({self.pid, *self._peers})

    @property
    def address(self) -> tuple[str, int]:
        """The bound doorbell address (resolves the ephemeral port)."""
        if self._sock is None:
            return (self.host, 0)
        return self._sock.getsockname()[:2]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start_server(self) -> tuple[str, int]:
        """Bind the UDP doorbell; returns its address for the peer exchange."""
        if self._sock is None:
            sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
            sock.setblocking(False)
            sock.bind((self.host, 0))
            self._sock = sock
        return self.address

    async def start(self) -> None:
        """Attach every ring this node touches and arm the doorbell.

        There is no pump task: the doorbell's ``add_reader`` callback
        drains rings directly (exactly as the TCP reader's
        ``data_received`` delivers frames), the event loop blocks in its
        selector whenever nothing is ready, and a single
        :attr:`WAKE_TIMEOUT` re-check timer backstops a missed poke.
        """
        await self.start_server()
        loop = asyncio.get_running_loop()
        if not self._reader_installed:
            assert self._sock is not None
            loop.add_reader(self._sock.fileno(), self._on_doorbell)
            self._reader_installed = True
        if not self._rings_out:
            for peer in self._peers:
                self._rings_out[peer] = self._attach(
                    ring_segment_name(self.token, self.pid, peer)
                )
                self._rings_in[peer] = self._attach(
                    ring_segment_name(self.token, peer, self.pid)
                )
        # Frozen (peer, ring) pairs: the drain loop sweeps these dozens of
        # times per burst, and a tuple walks faster than a dict view.
        self._in_pairs = tuple(self._rings_in.items())
        self._stopped = False
        # Idle until the first poke: advertise sleep so the first producer
        # of every inbound ring rings the doorbell.
        for ring in self._rings_in.values():
            ring.set_sleeping(True)
        if self._backstop_handle is None:
            self._backstop_handle = loop.call_later(self.WAKE_TIMEOUT, self._backstop)

    def _attach(self, name: str) -> SpscRing:
        segment = attach_ring(name)
        self._segments.append(segment)
        return SpscRing(segment.buf, self.ring_bytes)

    async def stop(self) -> None:
        """Disarm the doorbell, detach rings, close the socket.  Never raises.

        Segments are *closed*, never unlinked — the parent owns their
        lifetime.  ``_stopped`` turns any already-scheduled drain
        continuation or backstop firing into a no-op, so teardown cannot
        race a callback into detached rings.
        """
        self._stopped = True
        if self._backstop_handle is not None:
            self._backstop_handle.cancel()
            self._backstop_handle = None
        if self._reader_installed and self._sock is not None:
            try:
                asyncio.get_running_loop().remove_reader(self._sock.fileno())
            except (RuntimeError, OSError):
                pass
            self._reader_installed = False
        for ring in (*self._rings_out.values(), *self._rings_in.values()):
            try:
                ring.detach()
            except BufferError as exc:  # pragma: no cover - view leaked
                self.last_errors.append(f"shm-detach-{self.pid}: {exc!r}")
        self._rings_out.clear()
        self._rings_in.clear()
        self._in_pairs = ()
        for segment in self._segments:
            try:
                segment.close()
            except BufferError as exc:  # pragma: no cover - view leaked
                self.last_errors.append(f"shm-close-{self.pid}: {exc!r}")
        self._segments.clear()
        if self._sock is not None:
            self._sock.close()
            self._sock = None

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(self, sender: int, recipient: int, payload: Any) -> None:
        """Deliver locally (immediate) or encode once and push to the ring.

        After :meth:`stop` the rings are gone but replica timers may still
        fire for a few loop iterations; their sends are silently dropped,
        exactly as a closed TCP socket swallows late writes.
        """
        if self._stopped:
            return
        if recipient == self.pid:
            self._deliver_local(sender, payload)
            return
        if recipient not in self._rings_out:
            raise SimulationError(f"unknown recipient {recipient}")
        self._mint(sender, recipient, payload, self.runtime.now)
        scratch = self._scratch
        del scratch[:]
        self.codec.encode_into(sender, payload, scratch)
        self._push(recipient, scratch)

    def broadcast(self, sender: int, payload: Any, include_self: bool = True) -> None:
        """Send to every processor, encoding the frame once for all rings."""
        if self._stopped:
            return
        scratch = None
        now = self.runtime.now
        for pid in self.process_ids:
            if not include_self and pid == sender:
                continue
            if pid == self.pid:
                self._deliver_local(sender, payload)
                continue
            if scratch is None:
                scratch = self._scratch
                del scratch[:]
                self.codec.encode_into(sender, payload, scratch)
            self._mint(sender, pid, payload, now)
            self._push(pid, scratch)

    def _deliver_local(self, sender: int, payload: Any) -> None:
        """Immediate loopback delivery to the hosted process."""
        envelope = self._mint(sender, self.pid, payload, self.runtime.now)
        if self._process is None:
            return
        self.runtime.call_after(0.0, self._delivered, envelope, self._process)

    def _push(self, recipient: int, frame: Union[bytes, bytearray]) -> None:
        """Ring-push with overflow accounting and doorbell poke."""
        ring = self._rings_out[recipient]
        if not ring.try_push(frame):
            self.frames_dropped += 1
            if recipient not in self._overflowed:
                self._overflowed.add(recipient)
                self.last_errors.append(
                    f"shm-ring-{self.pid}->{recipient}: ring full "
                    f"({self.ring_bytes} B), frame of {len(frame)} B dropped"
                )
            return
        if ring.consumer_sleeping():
            # Clear before poking so a burst costs one datagram, not one
            # per frame; the consumer re-arms the flag itself next time it
            # finds every ring empty.
            ring.set_sleeping(False)
            addr = self._peers.get(recipient)
            if addr is not None and self._sock is not None:
                try:
                    self._sock.sendto(b"\x00", addr)
                except OSError:
                    pass  # full socket buffer etc.; WAKE_TIMEOUT covers it

    # ------------------------------------------------------------------
    # Receiving
    # ------------------------------------------------------------------
    def _on_doorbell(self) -> None:
        """Drain the doorbell socket, then drain the rings in this callback."""
        assert self._sock is not None
        try:
            while True:
                self._sock.recv(64)
        except (BlockingIOError, InterruptedError):
            pass
        except OSError:
            pass
        self._drain_burst()

    def _drain_ready(self) -> int:
        """One sweep over all inbound rings; returns frames delivered.

        Frames decode **in place** from the ring's memoryview before the
        read index advances (the producer cannot overwrite unconsumed
        bytes), then deliver exactly like the TCP pump.  Each ring yields
        at most :attr:`MAX_DRAIN_PER_RING` frames per sweep so one loud
        peer cannot starve the others.
        """
        delivered = 0
        codec = self.codec
        for peer, ring in self._in_pairs:
            if self._stopped:
                break
            for _ in range(self.MAX_DRAIN_PER_RING):
                body = ring.peek()
                if body is None:
                    break
                try:
                    sender, payload = codec.decode_body(body)
                except WireCodecError as exc:
                    self.last_errors.append(f"shm-decode-{peer}->{self.pid}: {exc!r}")
                    ring.consume()
                    continue
                finally:
                    body = None  # release a memoryview into the ring
                ring.consume()
                delivered += 1
                if self._process is None:
                    continue
                envelope = TransportEnvelope(
                    next(self._msg_ids), sender, self.pid, payload,
                    self.runtime.now, self.runtime.now,
                )
                self.runtime.events_processed += 1
                self._delivered(envelope, self._process)
        return delivered

    def _drain_burst(self) -> None:
        """Drain every inbound ring until all are empty, then re-arm sleep.

        Runs synchronously inside the doorbell callback (or a ``call_soon``
        continuation of itself), exactly as the TCP reader delivers frames
        from ``data_received`` — no pump task, no per-wake allocations.
        After :attr:`SPIN_SWEEPS` consecutive empty sweeps the flags go
        back up, then one final re-check closes the race with a producer
        that pushed after the last sweep but read the flag before it rose.
        A sustained flood is rescheduled after
        :attr:`MAX_SWEEPS_PER_CALLBACK` sweeps so timers and co-located
        tasks keep running between bursts.
        """
        if self._stopped:
            return
        pairs = self._in_pairs
        empty_sweeps = 0
        for _ in range(self.MAX_SWEEPS_PER_CALLBACK):
            if self._drain_ready():
                empty_sweeps = 0
            else:
                empty_sweeps += 1
                if empty_sweeps >= self.SPIN_SWEEPS:
                    break
        else:
            # Budget exhausted with frames still flowing: yield to the
            # loop and continue in a fresh callback.
            if not self._drain_scheduled and not self._stopped:
                self._drain_scheduled = True
                asyncio.get_running_loop().call_soon(self._drain_continue)
            return
        for _, ring in pairs:
            ring.set_sleeping(True)
        if any(ring.unread_bytes for _, ring in pairs):
            for _, ring in pairs:
                ring.set_sleeping(False)
            if not self._drain_scheduled and not self._stopped:
                self._drain_scheduled = True
                asyncio.get_running_loop().call_soon(self._drain_continue)

    def _drain_continue(self) -> None:
        self._drain_scheduled = False
        self._drain_burst()

    def _backstop(self) -> None:
        """Periodic missed-poke insurance: re-check rings, re-arm timer."""
        self._backstop_handle = None
        if self._stopped:
            return
        if any(ring.unread_bytes for ring in self._rings_in.values()):
            for ring in self._rings_in.values():
                ring.set_sleeping(False)
            self._drain_burst()
        self._backstop_handle = asyncio.get_running_loop().call_later(
            self.WAKE_TIMEOUT, self._backstop
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShmTransport(pid={self.pid}, token={self.token!r}, "
            f"peers={sorted(self._peers)}, sent={self.messages_sent}, "
            f"frames_dropped={self.frames_dropped}, "
            f"teardown_errors={len(self.last_errors)})"
        )
