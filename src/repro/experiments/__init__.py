"""Experiment harness: scenario construction, runs, and the paper's artefacts.

:func:`run_scenario` builds a complete simulated deployment (simulator,
network, keys, replicas with the chosen pacemaker, corruption plan, metrics)
from a declarative :class:`ScenarioConfig`, runs it, and returns a
:class:`ScenarioResult` with the measured quantities.  It is the single
low-level entry point; sweeps over it are expressed as
:class:`~repro.runner.Campaign` grids (see :mod:`repro.runner`) with
:meth:`~repro.runner.Campaign.run` as the single high-level one.

The ``table1``, ``figure1``, ``responsiveness`` and ``steady_state`` modules
build campaigns that regenerate the corresponding artefacts from the paper;
``gauntlet`` runs every pacemaker against the named adversarial scenario
library (:mod:`repro.faults`).
"""

from repro.experiments.scenario import ScenarioConfig, ScenarioResult, run_scenario
from repro.experiments.table1 import (
    Table1Row,
    eventual_complexity_sweep,
    table1_rows,
    worst_case_complexity_sweep,
)
from repro.experiments.figure1 import Figure1Result, figure1_sweep, run_figure1
from repro.experiments.gauntlet import (
    DEFAULT_GAUNTLET_SCENARIOS,
    GauntletCell,
    gauntlet_table,
    scenario_gauntlet,
)
from repro.experiments.responsiveness import ResponsivenessPoint, responsiveness_sweep
from repro.experiments.steady_state import HeavySyncResult, heavy_sync_count, heavy_sync_sweep

__all__ = [
    "DEFAULT_GAUNTLET_SCENARIOS",
    "Figure1Result",
    "GauntletCell",
    "HeavySyncResult",
    "ResponsivenessPoint",
    "ScenarioConfig",
    "ScenarioResult",
    "Table1Row",
    "eventual_complexity_sweep",
    "figure1_sweep",
    "gauntlet_table",
    "heavy_sync_count",
    "heavy_sync_sweep",
    "responsiveness_sweep",
    "run_figure1",
    "run_scenario",
    "scenario_gauntlet",
    "table1_rows",
    "worst_case_complexity_sweep",
]
