"""Experiment harness: scenario construction, runs, and the paper's artefacts.

:func:`run_scenario` builds a complete simulated deployment (simulator,
network, keys, replicas with the chosen pacemaker, corruption plan, metrics)
from a declarative :class:`ScenarioConfig`, runs it, and returns a
:class:`ScenarioResult` with the measured quantities.

The ``table1``, ``figure1`` and ``responsiveness`` modules build on it to
regenerate the corresponding artefacts from the paper.
"""

from repro.experiments.scenario import ScenarioConfig, ScenarioResult, run_scenario
from repro.experiments.table1 import (
    Table1Row,
    eventual_complexity_sweep,
    table1_rows,
    worst_case_complexity_sweep,
)
from repro.experiments.figure1 import Figure1Result, run_figure1
from repro.experiments.responsiveness import ResponsivenessPoint, responsiveness_sweep
from repro.experiments.steady_state import HeavySyncResult, heavy_sync_count

__all__ = [
    "Figure1Result",
    "HeavySyncResult",
    "ResponsivenessPoint",
    "ScenarioConfig",
    "ScenarioResult",
    "Table1Row",
    "eventual_complexity_sweep",
    "heavy_sync_count",
    "responsiveness_sweep",
    "run_figure1",
    "run_scenario",
    "table1_rows",
    "worst_case_complexity_sweep",
]
