"""Declarative scenario construction and execution.

A :class:`ScenarioConfig` says *what* to run (protocol, system size, timing
parameters, faults, network adversary, duration); :func:`run_scenario` builds
the full simulated system, runs it to the requested virtual time, and
returns a :class:`ScenarioResult` wrapping the metrics, traces and replicas.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.adversary.attacks import spread_corruption
from repro.adversary.behaviours import Behaviour, SilentLeaderBehaviour
from repro.adversary.corruption import CorruptionPlan
from repro.config import ProtocolConfig
from repro.consensus.ledger import ledgers_consistent
from repro.consensus.replica import Replica
from repro.crypto.backend import CryptoBackend, make_backend, set_default_backend
from repro.crypto.signatures import PKI
from repro.crypto.threshold import ThresholdScheme
from repro.errors import ConfigurationError
from repro.metrics.collector import MetricsCollector
from repro.metrics.summary import (
    ComplexitySummary,
    RunMetrics,
    extract_run_metrics,
    summarize_run,
)
from repro.pacemakers.registry import make_pacemaker_factory
from repro.sim.events import Simulator
from repro.sim.network import DelayModel, FixedDelay, Network, NetworkConfig
from repro.sim.process import SimContext
from repro.sim.tracing import TraceRecorder


@dataclass
class ScenarioConfig:
    """Everything needed to reproduce one simulation run."""

    #: Number of processors (n = 3f + 1 recommended).
    n: int = 4
    #: Pacemaker name (see :func:`repro.pacemakers.registry.available_pacemakers`).
    pacemaker: str = "lumiere"
    #: Protocol-specific pacemaker configuration object (optional).
    pacemaker_config: Any = None
    #: Known post-GST delay bound Delta.
    delta: float = 1.0
    #: Actual message delay delta (<= Delta) used by the default delay model.
    actual_delay: float = 0.1
    #: Global stabilisation time chosen by the adversary.
    gst: float = 0.0
    #: Virtual time to run for (must comfortably exceed GST).
    duration: float = 300.0
    #: View-completion constant x of assumption (⋄1).
    x: int = 4
    #: RNG seed (delay models, leader schedules default to it too).
    seed: int = 0
    #: Explicit corruption plan; ``None`` means no faults.
    corruption: Optional[CorruptionPlan] = None
    #: Network delay model; ``None`` means FixedDelay(actual_delay).
    delay_model: Optional[DelayModel] = None
    #: Whether to record a full protocol trace (costs memory on long runs).
    record_trace: bool = True
    #: Upper bound on pre-GST delays used when a chaotic pre-GST model is built.
    pre_gst_max_delay: float = 50.0
    #: Floor on every proposed message delay (see
    #: :attr:`repro.sim.network.NetworkConfig.min_delay`); guards zero-delay
    #: models against the same-timestamp event budget.
    min_delay: float = 0.0
    #: Named fault scenario from :mod:`repro.faults.library`.  When set, the
    #: scenario determines the delay model and corruption plan (so
    #: ``delay_model`` and ``corruption`` must stay ``None``); campaigns can
    #: sweep this field directly.
    scenario: Optional[str] = None
    #: Parameter overrides for the named scenario (JSON-serializable values).
    scenario_params: dict[str, Any] = field(default_factory=dict)
    #: Crypto backend name (see :func:`repro.crypto.backend.available_backends`):
    #: ``"hashing"`` (stable digests, the default), ``"counting"`` (O(1)
    #: structural tokens, the large-n fast path) or ``"interned"`` (memoised
    #: hashing).  Semantically identical for modelled runs, so campaigns can
    #: sweep this field directly — ``benchmarks/bench_scaling.py`` does.
    crypto_backend: str = "hashing"
    #: Client workload (a :class:`repro.runner.workload.WorkloadConfig`);
    #: ``None`` runs pure consensus with synthetic payloads.  When set,
    #: every replica applies committed blocks to a replicated KV store and
    #: the selected replicas run load generators — in this simulated lane
    #: and in every live lane, since the field rides the config into
    #: ``_make_replica`` and the spawned workers of a process cluster.
    workload: Optional[Any] = None

    def protocol_config(self) -> ProtocolConfig:
        """The shared :class:`ProtocolConfig` implied by this scenario."""
        return ProtocolConfig(
            n=self.n, delta=self.delta, x=self.x, crypto_backend=self.crypto_backend
        )

    def network_config(self) -> NetworkConfig:
        """The :class:`NetworkConfig` implied by this scenario."""
        return NetworkConfig(
            delta=self.delta,
            gst=self.gst,
            actual_delay=self.actual_delay,
            pre_gst_max_delay=self.pre_gst_max_delay,
            min_delay=self.min_delay,
        )


@dataclass
class ScenarioResult:
    """The outcome of one simulated run."""

    config: ScenarioConfig
    protocol_config: ProtocolConfig
    metrics: MetricsCollector
    trace: TraceRecorder
    replicas: dict[int, Replica]
    corruption: CorruptionPlan
    simulator: Simulator
    #: The run's crypto backend instance (its counters expose how much digest
    #: work the run performed); ``None`` only for hand-built results.
    crypto_backend: Optional[CryptoBackend] = None
    #: The run's network (exposes delivery counters and the
    #: ``batch_deliveries`` toggle); ``None`` only for hand-built results.
    network: Optional[Network] = None

    # ------------------------------------------------------------------
    # Summaries
    # ------------------------------------------------------------------
    def summary(self, warmup_decisions: int = 5) -> ComplexitySummary:
        """The Table-1 measures for this run."""
        return summarize_run(
            self.metrics,
            protocol=self.config.pacemaker,
            n=self.config.n,
            f_actual=self.corruption.f_actual,
            gst=self.config.gst,
            delta=self.config.delta,
            warmup_decisions=warmup_decisions,
        )

    def run_metrics(self) -> RunMetrics:
        """The picklable derived-metrics residue of this run.

        This is the "lightweight half" of a :class:`ScenarioResult`: what the
        campaign runner ships between processes and stores in its cache.  The
        live half (replicas, traces, the simulator) stays in this object and
        never crosses a process boundary.
        """
        return extract_run_metrics(self.metrics)

    # ------------------------------------------------------------------
    # Safety / liveness helpers used by tests and examples
    # ------------------------------------------------------------------
    @property
    def honest_replicas(self) -> list[Replica]:
        """Replicas that were never corrupted."""
        return [r for pid, r in sorted(self.replicas.items()) if pid in self.corruption.honest_ids]

    def ledgers_are_consistent(self) -> bool:
        """Safety: honest ledgers are pairwise prefix-consistent."""
        return ledgers_consistent([replica.ledger for replica in self.honest_replicas])

    def honest_decisions(self) -> int:
        """Number of QCs produced by honest leaders during the run."""
        return len(self.metrics.honest_decisions())

    def committed_blocks(self) -> int:
        """Length of the longest honest ledger."""
        lengths = [len(replica.ledger) for replica in self.honest_replicas]
        return max(lengths) if lengths else 0

    def max_honest_view(self) -> int:
        """The highest view any honest replica entered."""
        views = [self.metrics.max_view_entered(r.pid) for r in self.honest_replicas]
        return max(views) if views else -1

    def describe(self) -> str:
        """One-line run description for reports."""
        summary = self.summary()
        return (
            f"{self.config.pacemaker} n={self.config.n} f_a={self.corruption.f_actual} "
            f"decisions={summary.decisions} msgs={summary.total_messages} "
            f"worst_latency={summary.worst_case_latency}"
        )


def build_spread_fault_config(params: dict[str, Any]) -> ScenarioConfig:
    """Module-level campaign builder for the steady-state cell shape shared
    by the responsiveness, heavy-sync and Table-1 eventual sweeps (and the
    examples): GST = 0, no trace, and ``f_actual`` silent leaders spread
    evenly over the id space.

    ``params`` must carry ``n``, ``protocol``, ``delta``, ``actual_delay``,
    ``duration``, ``seed`` and ``f_actual``; an optional ``crypto_backend``
    name selects the digest backend (so campaigns can sweep it).
    """
    config = ScenarioConfig(
        n=params["n"],
        pacemaker=params["protocol"],
        delta=params["delta"],
        actual_delay=params["actual_delay"],
        gst=0.0,
        duration=params["duration"],
        seed=params["seed"],
        record_trace=False,
        crypto_backend=params.get("crypto_backend", "hashing"),
    )
    config.corruption = spread_corruption(
        config.protocol_config(), params["f_actual"], SilentLeaderBehaviour
    )
    return config


def build_scenario(config: ScenarioConfig) -> ScenarioResult:
    """Construct the simulated system for ``config`` without running it.

    Returned with virtual time still at zero; callers that need to perturb
    initial state (e.g. desynchronise local clocks) can do so before calling
    ``result.simulator.run(...)`` themselves.  Most callers should use
    :func:`run_scenario`.
    """
    protocol_config = config.protocol_config()
    delay_model = config.delay_model
    explicit_corruption = config.corruption
    if config.scenario is not None:
        # Local import: the library builds on the experiments package's config
        # type, so importing it at module level would create a cycle.
        from repro.faults.library import get_scenario

        if delay_model is not None or explicit_corruption is not None:
            raise ConfigurationError(
                f"scenario {config.scenario!r} fully determines the adversary; "
                "leave delay_model and corruption unset (override via "
                "scenario_params instead)"
            )
        delay_model, explicit_corruption = get_scenario(config.scenario).build(
            config, config.scenario_params
        )
    corruption = explicit_corruption or CorruptionPlan.none(protocol_config)
    if corruption.config.n != protocol_config.n:
        raise ConfigurationError("corruption plan was built for a different system size")

    # One fresh backend per run (counting tokens / memo tables must never
    # cross runs), shared by the PKI, the threshold scheme and the network,
    # and installed as the process default so lazily derived block ids use
    # it too.  Runs are single-threaded per process; building two scenarios
    # with *different* backends and interleaving their runs in one process
    # is the one unsupported pattern (the campaign executors never do it).
    crypto_backend = make_backend(protocol_config.crypto_backend)
    set_default_backend(crypto_backend)

    simulator = Simulator(seed=config.seed)
    network = Network(
        simulator,
        config.network_config(),
        delay_model=delay_model or FixedDelay(config.actual_delay),
        crypto_backend=crypto_backend,
    )
    trace = TraceRecorder(enabled=config.record_trace)
    ctx = SimContext(sim=simulator, network=network, trace=trace)

    metrics = MetricsCollector()
    metrics.set_honest(corruption.honest_ids)
    metrics.attach_network(network)

    pki, signing_keys = PKI.setup(protocol_config.processor_ids, backend=crypto_backend)
    scheme = ThresholdScheme(pki)

    replicas: dict[int, Replica] = {}
    for pid in protocol_config.processor_ids:
        factory = make_pacemaker_factory(
            config.pacemaker, protocol_config, config.pacemaker_config
        )
        replicas[pid] = Replica(
            pid=pid,
            ctx=ctx,
            config=protocol_config,
            pki=pki,
            signing_key=signing_keys[pid],
            scheme=scheme,
            pacemaker_factory=factory,
            metrics=metrics,
            behaviour=corruption.behaviour_for(pid),
        )
        if config.workload is not None:
            # Local import: repro.runner layers above this package.
            from repro.runner.workload import attach_workload

            attach_workload(replicas[pid], config.workload)

    return ScenarioResult(
        config=config,
        protocol_config=protocol_config,
        metrics=metrics,
        trace=trace,
        replicas=replicas,
        corruption=corruption,
        simulator=simulator,
        crypto_backend=crypto_backend,
        network=network,
    )


def run_scenario(config: ScenarioConfig, max_events: Optional[int] = None) -> ScenarioResult:
    """Build and run a scenario to ``config.duration`` of virtual time."""
    result = build_scenario(config)
    for replica in result.replicas.values():
        replica.start()
    result.simulator.run(until=config.duration, max_events=max_events)
    return result
