"""Heavy-synchronisation elimination (Theorem 1.1, property 4).

Lumiere's second innovation is that, once an epoch satisfies the success
criterion, processors stop performing heavy (all-to-all) epoch
synchronisations — so only an expected constant number of them happen after
GST, and the eventual worst-case communication drops to ``O(n f_a + n)``.

:func:`heavy_sync_count` runs a protocol for many epochs and counts how many
distinct epochs any honest processor heavy-synced, before and after the
steady state is reached, for Lumiere and for the epoch-based baselines that
never stop (Basic Lumiere, LP22, RareSync).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.adversary.attacks import spread_corruption
from repro.adversary.behaviours import SilentLeaderBehaviour
from repro.experiments.scenario import ScenarioConfig, run_scenario


@dataclass(frozen=True)
class HeavySyncResult:
    """Heavy-epoch-synchronisation counts for one protocol run."""

    protocol: str
    n: int
    f_actual: int
    duration: float
    #: Distinct epochs heavy-synced over the whole run.
    total_heavy_syncs: int
    #: Distinct epochs heavy-synced after the warmup point.
    heavy_syncs_after_warmup: int
    #: Honest-leader decisions over the run (to show the run made progress).
    decisions: int
    #: Honest messages per decision over the post-warmup period (average).
    avg_messages_per_decision: Optional[float]


def heavy_sync_count(
    protocol: str = "lumiere",
    n: int = 7,
    f_actual: int = 0,
    *,
    delta: float = 1.0,
    actual_delay: float = 0.05,
    duration: Optional[float] = None,
    warmup: Optional[float] = None,
    seed: int = 0,
) -> HeavySyncResult:
    """Count heavy epoch synchronisations for one protocol configuration."""
    if duration is None:
        duration = 1500.0 * delta + 100.0 * n * delta
    if warmup is None:
        warmup = 100.0 * delta + 20.0 * n * delta
    config = ScenarioConfig(
        n=n,
        pacemaker=protocol,
        delta=delta,
        actual_delay=actual_delay,
        gst=0.0,
        duration=duration,
        seed=seed,
        record_trace=False,
    )
    config.corruption = spread_corruption(
        config.protocol_config(), f_actual, SilentLeaderBehaviour
    )
    result = run_scenario(config)
    metrics = result.metrics
    decisions_after_warmup = [d for d in metrics.honest_decisions() if d.time >= warmup]
    per_gap = metrics.messages_per_gap(after=warmup)
    avg_msgs = sum(per_gap) / len(per_gap) if per_gap else None
    return HeavySyncResult(
        protocol=protocol,
        n=n,
        f_actual=f_actual,
        duration=duration,
        total_heavy_syncs=metrics.epoch_syncs_after(0.0),
        heavy_syncs_after_warmup=metrics.epoch_syncs_after(warmup),
        decisions=len(decisions_after_warmup),
        avg_messages_per_decision=avg_msgs,
    )
