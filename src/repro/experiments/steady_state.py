"""Heavy-synchronisation elimination (Theorem 1.1, property 4).

Lumiere's second innovation is that, once an epoch satisfies the success
criterion, processors stop performing heavy (all-to-all) epoch
synchronisations — so only an expected constant number of them happen after
GST, and the eventual worst-case communication drops to ``O(n f_a + n)``.

:func:`heavy_sync_sweep` runs a set of protocols for many epochs — as one
campaign grid — and counts how many distinct epochs any honest processor
heavy-synced, before and after the steady state is reached, for Lumiere and
for the epoch-based baselines that never stop (Basic Lumiere, LP22,
RareSync).  :func:`heavy_sync_count` is the single-protocol wrapper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Union

from repro.experiments.scenario import build_spread_fault_config
from repro.runner.cache import ResultCache
from repro.runner.campaign import Campaign, Sweep
from repro.runner.record import RunRecord


@dataclass(frozen=True)
class HeavySyncResult:
    """Heavy-epoch-synchronisation counts for one protocol run."""

    protocol: str
    n: int
    f_actual: int
    duration: float
    #: Distinct epochs heavy-synced over the whole run.
    total_heavy_syncs: int
    #: Distinct epochs heavy-synced after the warmup point.
    heavy_syncs_after_warmup: int
    #: Honest-leader decisions after the warmup (to show the run made progress).
    decisions: int
    #: Honest messages per decision over the post-warmup period (average).
    avg_messages_per_decision: Optional[float]


def _result_from_record(record: RunRecord, warmup: float) -> HeavySyncResult:
    metrics = record.metrics
    per_gap = metrics.messages_per_gap(after=warmup)
    return HeavySyncResult(
        protocol=record.params["protocol"],
        n=record.params["n"],
        f_actual=record.params["f_actual"],
        duration=record.params["duration"],
        total_heavy_syncs=metrics.epoch_syncs_after(0.0),
        heavy_syncs_after_warmup=metrics.epoch_syncs_after(warmup),
        decisions=len(metrics.decision_times_after(warmup)),
        avg_messages_per_decision=sum(per_gap) / len(per_gap) if per_gap else None,
    )


def heavy_sync_sweep(
    protocols: Iterable[str],
    n: int = 7,
    f_actual: int = 0,
    *,
    delta: float = 1.0,
    actual_delay: float = 0.05,
    duration: Optional[float] = None,
    warmup: Optional[float] = None,
    seed: int = 0,
    backend: str = "serial",
    workers: Optional[int] = None,
    cache: Union[ResultCache, str, None] = None,
) -> dict[str, HeavySyncResult]:
    """Count heavy epoch synchronisations for each protocol, one campaign run.

    ``duration``/``warmup`` default to values that scale with ``n`` so every
    protocol passes through many epochs and well into its steady state.
    """
    protocols = tuple(dict.fromkeys(protocols))  # preserve order, drop duplicate cells
    if duration is None:
        duration = 1500.0 * delta + 100.0 * n * delta
    if warmup is None:
        warmup = 100.0 * delta + 20.0 * n * delta
    campaign = Campaign(
        name="heavy-sync",
        build=build_spread_fault_config,
        sweeps=(Sweep("protocol", protocols),),
        fixed={
            "n": n,
            "f_actual": f_actual,
            "delta": delta,
            "actual_delay": actual_delay,
            "duration": duration,
            "seed": seed,
        },
    )
    result = campaign.run(backend=backend, workers=workers, cache=cache)
    return {
        record.params["protocol"]: _result_from_record(record, warmup)
        for record in result
    }


def heavy_sync_count(
    protocol: str = "lumiere",
    n: int = 7,
    f_actual: int = 0,
    *,
    delta: float = 1.0,
    actual_delay: float = 0.05,
    duration: Optional[float] = None,
    warmup: Optional[float] = None,
    seed: int = 0,
    backend: str = "serial",
    workers: Optional[int] = None,
    cache: Union[ResultCache, str, None] = None,
) -> HeavySyncResult:
    """Count heavy epoch synchronisations for one protocol configuration."""
    results = heavy_sync_sweep(
        (protocol,),
        n=n,
        f_actual=f_actual,
        delta=delta,
        actual_delay=actual_delay,
        duration=duration,
        warmup=warmup,
        seed=seed,
        backend=backend,
        workers=workers,
        cache=cache,
    )
    return results[protocol]
