"""The scenario gauntlet: every pacemaker against the named scenario library.

The paper's headline claim is comparative — Lumiere stays live and cheap
under adversarial partial-synchrony schedules where the baselines degrade.
The gauntlet makes that claim an experiment: one campaign grid of pacemaker
x named scenario (see :mod:`repro.faults.library`), all cells under the same
timing parameters, reduced to a comparison table of decisions, worst
post-GST decision gap, and message cost.

Every scenario in the default set keeps at most ``f`` processors faulty and
proposes delays within the partial-synchrony envelope, so *every correct*
pacemaker must stay safe and live in every cell; what separates them is how
much latency and communication the adversary can extract.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Optional, Union

from repro.errors import ConfigurationError
from repro.experiments.scenario import ScenarioConfig
from repro.faults.library import available_scenarios
from repro.pacemakers.registry import available_pacemakers
from repro.runner.cache import ResultCache
from repro.runner.campaign import Campaign, Sweep

#: The scenario names every pacemaker is run against by default: the whole
#: registered library.  This is sound because the library's conventions
#: (enforced by the gauntlet benchmark) require every entry to keep >= 2f+1
#: honest-and-up processors at all times and heal every partition by GST, so
#: liveness is required of every correct pacemaker in every cell.
DEFAULT_GAUNTLET_SCENARIOS = tuple(available_scenarios())


@dataclass(frozen=True)
class GauntletCell:
    """One (pacemaker, scenario) outcome of the gauntlet."""

    pacemaker: str
    scenario: str
    #: Honest-leader decisions over the whole run.
    decisions: int
    #: Length of the longest honest ledger.
    committed_blocks: int
    #: Safety: honest ledgers pairwise prefix-consistent.
    ledgers_consistent: bool
    #: Largest gap between consecutive honest-leader decisions after the
    #: post-GST warmup (``None`` with fewer than two decisions there).
    max_gap: Optional[float]
    #: Honest messages sent over the whole run.
    total_messages: int
    #: Simulator events executed (a proxy for simulation cost).
    events_processed: int


def build_gauntlet_config(params: dict[str, Any]) -> ScenarioConfig:
    """Module-level campaign builder for gauntlet cells.

    ``params`` must carry ``protocol``, ``scenario``, ``n``, ``delta``,
    ``actual_delay``, ``gst``, ``duration`` and ``seed``; an optional
    ``scenario_params`` dict is forwarded to the named scenario and an
    optional ``crypto_backend`` name selects the digest backend (so
    campaigns can sweep it).  Being module-level keeps the builder
    picklable for the process-pool backend.
    """
    return ScenarioConfig(
        n=params["n"],
        pacemaker=params["protocol"],
        delta=params["delta"],
        actual_delay=params["actual_delay"],
        gst=params["gst"],
        duration=params["duration"],
        seed=params["seed"],
        record_trace=False,
        scenario=params["scenario"],
        scenario_params=dict(params.get("scenario_params", {})),
        crypto_backend=params.get("crypto_backend", "hashing"),
    )


def gauntlet_campaign(
    pacemakers: Iterable[str],
    scenarios: Iterable[str],
    *,
    n: int = 7,
    delta: float = 1.0,
    actual_delay: float = 0.1,
    gst: float = 20.0,
    duration: Optional[float] = None,
    seed: int = 0,
) -> Campaign:
    """The pacemaker x scenario grid as a :class:`Campaign`.

    ``gst`` must be positive: several library scenarios (partitions, pre-GST
    storms) attack the pre-GST period and require it.  ``duration`` defaults
    to ``gst + 300 * delta``, long enough for every pacemaker to settle after
    the worst scenario in the default set.
    """
    if gst <= 0:
        raise ConfigurationError(
            f"the gauntlet needs gst > 0 (several scenarios attack the "
            f"pre-GST period), got gst={gst}"
        )
    if duration is None:
        duration = gst + 300.0 * delta
    return Campaign(
        name="gauntlet",
        build=build_gauntlet_config,
        sweeps=(
            Sweep("protocol", tuple(pacemakers)),
            Sweep("scenario", tuple(scenarios)),
        ),
        fixed={
            "n": n,
            "delta": delta,
            "actual_delay": actual_delay,
            "gst": gst,
            "duration": duration,
            "seed": seed,
        },
    )


def scenario_gauntlet(
    pacemakers: Optional[Iterable[str]] = None,
    scenarios: Optional[Iterable[str]] = None,
    *,
    n: int = 7,
    delta: float = 1.0,
    actual_delay: float = 0.1,
    gst: float = 20.0,
    duration: Optional[float] = None,
    seed: int = 0,
    backend: str = "serial",
    workers: Optional[int] = None,
    cache: Union[ResultCache, str, None] = None,
) -> list[GauntletCell]:
    """Run the gauntlet and reduce it to comparison cells.

    Defaults sweep every registered pacemaker against
    :data:`DEFAULT_GAUNTLET_SCENARIOS`.  The post-GST warmup for ``max_gap``
    is ``gst + 30 * delta``, skipping the recovery transient every scenario
    deliberately front-loads.
    """
    pacemakers = tuple(pacemakers) if pacemakers is not None else tuple(available_pacemakers())
    scenarios = (
        tuple(scenarios) if scenarios is not None else DEFAULT_GAUNTLET_SCENARIOS
    )
    campaign = gauntlet_campaign(
        pacemakers,
        scenarios,
        n=n,
        delta=delta,
        actual_delay=actual_delay,
        gst=gst,
        duration=duration,
        seed=seed,
    )
    result = campaign.run(backend=backend, workers=workers, cache=cache)

    warmup = gst + 30.0 * delta
    cells = []
    for record in result:
        cells.append(
            GauntletCell(
                pacemaker=record.params["protocol"],
                scenario=record.params["scenario"],
                decisions=record.decisions,
                committed_blocks=record.committed_blocks,
                ledgers_consistent=record.ledgers_consistent,
                max_gap=record.metrics.max_gap(after=warmup),
                total_messages=record.metrics.total_honest_messages,
                events_processed=record.events_processed,
            )
        )
    return cells


def gauntlet_table(cells: Iterable[GauntletCell], measure: str = "decisions") -> str:
    """Render gauntlet cells as a pacemaker x scenario text matrix.

    ``measure`` selects the cell value: any :class:`GauntletCell` field name
    (``"decisions"``, ``"max_gap"``, ``"total_messages"``, ...).  Cells that
    failed the safety check are marked with ``!`` — these should never occur
    and mean a protocol bug.
    """
    cells = list(cells)
    if not cells:
        return "(no cells)"
    pacemakers = sorted({cell.pacemaker for cell in cells})
    scenarios = sorted({cell.scenario for cell in cells})
    by_key = {(cell.pacemaker, cell.scenario): cell for cell in cells}

    def render(cell: Optional[GauntletCell]) -> str:
        if cell is None:
            return "-"
        value = getattr(cell, measure)
        if value is None:
            text = "-"
        elif isinstance(value, float):
            text = f"{value:.2f}"
        else:
            text = str(value)
        return f"{text}!" if not cell.ledgers_consistent else text

    width = max(
        [len(measure)]
        + [len(render(by_key.get((p, s)))) for p in pacemakers for s in scenarios]
    )
    label_width = max(len("pacemaker"), *(len(p) for p in pacemakers))
    column_widths = [max(len(s), width) for s in scenarios]

    lines = [
        " ".join(
            [f"{'pacemaker':<{label_width}}"]
            + [f"{s:>{w}}" for s, w in zip(scenarios, column_widths)]
        )
    ]
    for pacemaker in pacemakers:
        row = [f"{pacemaker:<{label_width}}"]
        for scenario_name, column_width in zip(scenarios, column_widths):
            row.append(f"{render(by_key.get((pacemaker, scenario_name))):>{column_width}}")
        lines.append(" ".join(row))
    return "\n".join(lines)
