"""Smooth optimistic responsiveness (Theorem 1.1, property 3).

A protocol is *smoothly optimistically responsive* when, after some finite
time following GST, the worst-case latency between honest-leader decisions
is ``O(Delta * f_a + delta)``: with no faults it runs at network speed
(``O(delta)``), and every additional actual fault costs at most a constant
number of ``Delta`` per decision gap.

:func:`responsiveness_sweep` measures the steady-state worst decision gap as
a function of ``f_a`` for a protocol — one campaign grid over the fault
counts — with ``delta`` much smaller than ``Delta`` so the two regimes are
clearly separated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Union

from repro.experiments.scenario import build_spread_fault_config
from repro.runner.cache import ResultCache
from repro.runner.campaign import Campaign, Sweep


@dataclass(frozen=True)
class ResponsivenessPoint:
    """Measured steady-state latency at one fault level."""

    protocol: str
    n: int
    f_actual: int
    delta: float
    actual_delay: float
    #: Largest gap between consecutive honest-leader decisions after warmup.
    max_gap: Optional[float]
    #: Median gap (the typical decision cadence).
    median_gap: Optional[float]
    decisions: int

    def gap_in_delta(self) -> Optional[float]:
        """The worst gap expressed in units of Delta."""
        if self.max_gap is None:
            return None
        return self.max_gap / self.delta


def responsiveness_sweep(
    protocol: str = "lumiere",
    n: int = 13,
    fault_counts: Optional[Iterable[int]] = None,
    *,
    delta: float = 1.0,
    actual_delay: float = 0.02,
    seed: int = 0,
    duration: Optional[float] = None,
    backend: str = "serial",
    workers: Optional[int] = None,
    cache: Union[ResultCache, str, None] = None,
) -> list[ResponsivenessPoint]:
    """Measure the steady-state decision gap for increasing ``f_a``."""
    f_max = (n - 1) // 3
    if fault_counts is None:
        fault_counts = range(0, f_max + 1)
    if duration is None:
        duration = 400.0 * delta + 60.0 * n * delta
    campaign = Campaign(
        name="responsiveness",
        build=build_spread_fault_config,
        sweeps=(Sweep("f_actual", fault_counts),),
        fixed={
            "protocol": protocol,
            "n": n,
            "delta": delta,
            "actual_delay": actual_delay,
            "duration": duration,
            "seed": seed,
        },
    )
    result = campaign.run(backend=backend, workers=workers, cache=cache)

    warmup = 30.0 * delta
    points = []
    for record in result:
        metrics = record.metrics
        points.append(
            ResponsivenessPoint(
                protocol=protocol,
                n=n,
                f_actual=record.params["f_actual"],
                delta=delta,
                actual_delay=actual_delay,
                max_gap=metrics.max_gap(after=warmup),
                median_gap=metrics.median_gap(after=warmup),
                decisions=record.decisions,
            )
        )
    return points
