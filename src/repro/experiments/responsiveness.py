"""Smooth optimistic responsiveness (Theorem 1.1, property 3).

A protocol is *smoothly optimistically responsive* when, after some finite
time following GST, the worst-case latency between honest-leader decisions
is ``O(Delta * f_a + delta)``: with no faults it runs at network speed
(``O(delta)``), and every additional actual fault costs at most a constant
number of ``Delta`` per decision gap.

:func:`responsiveness_sweep` measures the steady-state worst decision gap as
a function of ``f_a`` for a protocol, with ``delta`` much smaller than
``Delta`` so the two regimes are clearly separated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from repro.adversary.attacks import spread_corruption
from repro.adversary.behaviours import SilentLeaderBehaviour
from repro.experiments.scenario import ScenarioConfig, run_scenario


@dataclass(frozen=True)
class ResponsivenessPoint:
    """Measured steady-state latency at one fault level."""

    protocol: str
    n: int
    f_actual: int
    delta: float
    actual_delay: float
    #: Largest gap between consecutive honest-leader decisions after warmup.
    max_gap: Optional[float]
    #: Median gap (the typical decision cadence).
    median_gap: Optional[float]
    decisions: int

    def gap_in_delta(self) -> Optional[float]:
        """The worst gap expressed in units of Delta."""
        if self.max_gap is None:
            return None
        return self.max_gap / self.delta


def responsiveness_sweep(
    protocol: str = "lumiere",
    n: int = 13,
    fault_counts: Optional[Iterable[int]] = None,
    *,
    delta: float = 1.0,
    actual_delay: float = 0.02,
    seed: int = 0,
    duration: Optional[float] = None,
) -> list[ResponsivenessPoint]:
    """Measure the steady-state decision gap for increasing ``f_a``."""
    f_max = (n - 1) // 3
    if fault_counts is None:
        fault_counts = range(0, f_max + 1)
    if duration is None:
        duration = 400.0 * delta + 60.0 * n * delta
    points = []
    for f_actual in fault_counts:
        config = ScenarioConfig(
            n=n,
            pacemaker=protocol,
            delta=delta,
            actual_delay=actual_delay,
            gst=0.0,
            duration=duration,
            seed=seed,
            record_trace=False,
        )
        config.corruption = spread_corruption(
            config.protocol_config(), f_actual, SilentLeaderBehaviour
        )
        result = run_scenario(config)
        warmup = 30.0 * delta
        gaps = result.metrics.decision_gaps(after=warmup)
        gaps_sorted = sorted(gaps)
        median = gaps_sorted[len(gaps_sorted) // 2] if gaps_sorted else None
        points.append(
            ResponsivenessPoint(
                protocol=protocol,
                n=n,
                f_actual=f_actual,
                delta=delta,
                actual_delay=actual_delay,
                max_gap=max(gaps) if gaps else None,
                median_gap=median,
                decisions=len(result.metrics.honest_decisions()),
            )
        )
    return points
