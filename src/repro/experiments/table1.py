"""Regeneration of Table 1: the four complexity measures across protocols.

The paper's Table 1 is asymptotic; we regenerate it *empirically* by running
each protocol in the simulator under the scenarios the bounds are about and
reporting the measured counts.  Two sweeps are provided, both expressed as
declarative :class:`~repro.runner.Campaign` grids:

* :func:`worst_case_complexity_sweep` — worst-case communication and latency
  after GST, as a function of ``n``, under maximal faults and pre-GST chaos
  (rows 1 and 3 of Table 1);
* :func:`eventual_complexity_sweep` — steady-state (post-warmup) per-decision
  communication and latency as a function of the number of actual faults
  ``f_a`` (rows 2 and 4 of Table 1).

:func:`table1_rows` combines both into the table printed by
``benchmarks/bench_table1_*.py`` and recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Optional, Sequence, Union

from repro.adversary.attacks import spread_corruption, worst_case_clock_dispersion_model
from repro.adversary.behaviours import SilentLeaderBehaviour
from repro.experiments.scenario import ScenarioConfig, build_spread_fault_config
# Submodule imports (not ``repro.runner``) keep the experiments <-> runner
# import graph acyclic; see the note in repro/runner/campaign.py.
from repro.runner.cache import ResultCache
from repro.runner.campaign import Campaign, Sweep
from repro.runner.record import RunRecord


#: Protocols included in the Table-1 comparison, in the paper's column order.
TABLE1_PROTOCOLS: tuple[str, ...] = ("cogsworth", "lp22", "fever", "lumiere")


@dataclass(frozen=True)
class Table1Row:
    """One measured cell group of Table 1 (one protocol at one system size / fault level)."""

    protocol: str
    n: int
    f_actual: int
    worst_case_communication: Optional[int]
    worst_case_latency: Optional[float]
    eventual_communication: Optional[int]
    eventual_latency: Optional[float]
    decisions: int

    def as_dict(self) -> dict[str, object]:
        return {
            "protocol": self.protocol,
            "n": self.n,
            "f_a": self.f_actual,
            "worst_comm": self.worst_case_communication,
            "worst_latency": self.worst_case_latency,
            "eventual_comm": self.eventual_communication,
            "eventual_latency": self.eventual_latency,
            "decisions": self.decisions,
        }


def _base_config(params: dict[str, Any], *, gst: float, duration: float) -> ScenarioConfig:
    return ScenarioConfig(
        n=params["n"],
        pacemaker=params["protocol"],
        delta=params["delta"],
        actual_delay=params["actual_delay"],
        gst=gst,
        duration=duration,
        seed=params["seed"],
        record_trace=False,
    )


def build_worst_case_config(params: dict[str, Any]) -> ScenarioConfig:
    """Campaign cell builder for the worst-case (rows 1 & 3) sweep.

    The run duration scales with ``n`` because the worst-case latency of the
    epoch-based protocols is Theta(n * Delta); faults are maximal and the
    pre-GST period is chaotic to maximise clock dispersion at GST.
    """
    n, delta = params["n"], params["delta"]
    gst = 20.0 * delta
    config = _base_config(params, gst=gst, duration=gst + 400.0 * delta + 60.0 * n * delta)
    protocol_config = config.protocol_config()
    config.corruption = spread_corruption(
        protocol_config, (n - 1) // 3, SilentLeaderBehaviour
    )
    config.delay_model = worst_case_clock_dispersion_model(
        protocol_config, params["actual_delay"], pre_gst_max_delay=gst
    )
    return config


def build_eventual_config(params: dict[str, Any]) -> ScenarioConfig:
    """Campaign cell builder for the eventual (rows 2 & 4) sweep.

    GST is zero (the network is synchronous throughout) so the measurement
    isolates the steady state; faults are silent leaders spread across the
    id space.  The shape is the shared steady-state cell with a duration
    that scales with ``n``.
    """
    n, delta = params["n"], params["delta"]
    return build_spread_fault_config(
        {**params, "duration": 600.0 * delta + 80.0 * n * delta}
    )


def row_from_record(record: RunRecord) -> Table1Row:
    """Project one campaign record onto its Table-1 row."""
    summary = record.summary
    return Table1Row(
        protocol=summary.protocol,
        n=summary.n,
        f_actual=summary.f_actual,
        worst_case_communication=summary.worst_case_communication,
        worst_case_latency=summary.worst_case_latency,
        eventual_communication=summary.eventual_communication,
        eventual_latency=summary.eventual_latency,
        decisions=summary.decisions,
    )


def worst_case_complexity_sweep(
    protocols: Sequence[str] = TABLE1_PROTOCOLS,
    sizes: Iterable[int] = (4, 7, 13, 19),
    *,
    delta: float = 1.0,
    actual_delay: float = 0.1,
    seed: int = 0,
    backend: str = "serial",
    workers: Optional[int] = None,
    cache: Union[ResultCache, str, None] = None,
) -> list[Table1Row]:
    """Rows 1 & 3 of Table 1: worst case after GST, maximal faults, pre-GST chaos."""
    campaign = Campaign(
        name="table1-worst-case",
        build=build_worst_case_config,
        sweeps=(Sweep("n", sizes), Sweep("protocol", protocols)),
        fixed={"delta": delta, "actual_delay": actual_delay, "seed": seed},
    )
    result = campaign.run(backend=backend, workers=workers, cache=cache)
    return [row_from_record(record) for record in result]


def eventual_complexity_sweep(
    protocols: Sequence[str] = TABLE1_PROTOCOLS,
    n: int = 13,
    fault_counts: Optional[Iterable[int]] = None,
    *,
    delta: float = 1.0,
    actual_delay: float = 0.1,
    seed: int = 0,
    backend: str = "serial",
    workers: Optional[int] = None,
    cache: Union[ResultCache, str, None] = None,
) -> list[Table1Row]:
    """Rows 2 & 4 of Table 1: steady-state cost per decision as ``f_a`` grows."""
    f_max = (n - 1) // 3
    if fault_counts is None:
        fault_counts = range(0, f_max + 1)
    campaign = Campaign(
        name="table1-eventual",
        build=build_eventual_config,
        sweeps=(Sweep("f_actual", fault_counts), Sweep("protocol", protocols)),
        fixed={"n": n, "delta": delta, "actual_delay": actual_delay, "seed": seed},
    )
    result = campaign.run(backend=backend, workers=workers, cache=cache)
    return [row_from_record(record) for record in result]


def table1_rows(
    *,
    sizes: Iterable[int] = (4, 7, 13),
    steady_state_n: int = 13,
    delta: float = 1.0,
    actual_delay: float = 0.1,
    seed: int = 0,
    backend: str = "serial",
    workers: Optional[int] = None,
    cache: Union[ResultCache, str, None] = None,
) -> dict[str, list[Table1Row]]:
    """Both sweeps, keyed by which half of the table they regenerate."""
    return {
        "worst_case": worst_case_complexity_sweep(
            sizes=sizes, delta=delta, actual_delay=actual_delay, seed=seed,
            backend=backend, workers=workers, cache=cache,
        ),
        "eventual": eventual_complexity_sweep(
            n=steady_state_n, delta=delta, actual_delay=actual_delay, seed=seed,
            backend=backend, workers=workers, cache=cache,
        ),
    }


def format_rows(rows: Sequence[Table1Row]) -> str:
    """Render rows as an aligned text table for reports and bench output."""
    header = (
        f"{'protocol':<14} {'n':>4} {'f_a':>4} {'worst_comm':>11} {'worst_lat':>10} "
        f"{'event_comm':>11} {'event_lat':>10} {'decisions':>10}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.protocol:<14} {row.n:>4} {row.f_actual:>4} "
            f"{_fmt(row.worst_case_communication):>11} {_fmt(row.worst_case_latency):>10} "
            f"{_fmt(row.eventual_communication):>11} {_fmt(row.eventual_latency):>10} "
            f"{row.decisions:>10}"
        )
    return "\n".join(lines)


def _fmt(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)
