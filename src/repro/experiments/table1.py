"""Regeneration of Table 1: the four complexity measures across protocols.

The paper's Table 1 is asymptotic; we regenerate it *empirically* by running
each protocol in the simulator under the scenarios the bounds are about and
reporting the measured counts.  Two sweeps are provided:

* :func:`worst_case_complexity_sweep` — worst-case communication and latency
  after GST, as a function of ``n``, under maximal faults and pre-GST chaos
  (rows 1 and 3 of Table 1);
* :func:`eventual_complexity_sweep` — steady-state (post-warmup) per-decision
  communication and latency as a function of the number of actual faults
  ``f_a`` (rows 2 and 4 of Table 1).

:func:`table1_rows` combines both into the table printed by
``benchmarks/bench_table1_*.py`` and recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from repro.adversary.attacks import spread_corruption, worst_case_clock_dispersion_model
from repro.adversary.behaviours import SilentLeaderBehaviour
from repro.experiments.scenario import ScenarioConfig, run_scenario


#: Protocols included in the Table-1 comparison, in the paper's column order.
TABLE1_PROTOCOLS: tuple[str, ...] = ("cogsworth", "lp22", "fever", "lumiere")


@dataclass(frozen=True)
class Table1Row:
    """One measured cell group of Table 1 (one protocol at one system size / fault level)."""

    protocol: str
    n: int
    f_actual: int
    worst_case_communication: Optional[int]
    worst_case_latency: Optional[float]
    eventual_communication: Optional[int]
    eventual_latency: Optional[float]
    decisions: int

    def as_dict(self) -> dict[str, object]:
        return {
            "protocol": self.protocol,
            "n": self.n,
            "f_a": self.f_actual,
            "worst_comm": self.worst_case_communication,
            "worst_latency": self.worst_case_latency,
            "eventual_comm": self.eventual_communication,
            "eventual_latency": self.eventual_latency,
            "decisions": self.decisions,
        }


def _run(
    protocol: str,
    n: int,
    f_actual: int,
    *,
    gst: float,
    duration: float,
    delta: float,
    actual_delay: float,
    seed: int,
    chaotic_pre_gst: bool,
    warmup_decisions: int = 5,
) -> Table1Row:
    """Run one cell of the table and extract the four measures."""
    config = ScenarioConfig(
        n=n,
        pacemaker=protocol,
        delta=delta,
        actual_delay=actual_delay,
        gst=gst,
        duration=duration,
        seed=seed,
        record_trace=False,
    )
    protocol_config = config.protocol_config()
    config.corruption = spread_corruption(protocol_config, f_actual, SilentLeaderBehaviour)
    if chaotic_pre_gst:
        config.delay_model = worst_case_clock_dispersion_model(
            protocol_config, actual_delay, pre_gst_max_delay=gst if gst > 0 else None
        )
    result = run_scenario(config)
    summary = result.summary(warmup_decisions=warmup_decisions)
    return Table1Row(
        protocol=protocol,
        n=n,
        f_actual=f_actual,
        worst_case_communication=summary.worst_case_communication,
        worst_case_latency=summary.worst_case_latency,
        eventual_communication=summary.eventual_communication,
        eventual_latency=summary.eventual_latency,
        decisions=summary.decisions,
    )


def worst_case_complexity_sweep(
    protocols: Sequence[str] = TABLE1_PROTOCOLS,
    sizes: Iterable[int] = (4, 7, 13, 19),
    *,
    delta: float = 1.0,
    actual_delay: float = 0.1,
    seed: int = 0,
) -> list[Table1Row]:
    """Rows 1 & 3 of Table 1: worst case after GST, maximal faults, pre-GST chaos.

    The run duration scales with ``n`` because the worst-case latency of the
    epoch-based protocols is Theta(n * Delta).
    """
    rows = []
    for n in sizes:
        f = (n - 1) // 3
        gst = 20.0 * delta
        duration = gst + 400.0 * delta + 60.0 * n * delta
        for protocol in protocols:
            rows.append(
                _run(
                    protocol,
                    n,
                    f,
                    gst=gst,
                    duration=duration,
                    delta=delta,
                    actual_delay=actual_delay,
                    seed=seed,
                    chaotic_pre_gst=True,
                )
            )
    return rows


def eventual_complexity_sweep(
    protocols: Sequence[str] = TABLE1_PROTOCOLS,
    n: int = 13,
    fault_counts: Optional[Iterable[int]] = None,
    *,
    delta: float = 1.0,
    actual_delay: float = 0.1,
    seed: int = 0,
) -> list[Table1Row]:
    """Rows 2 & 4 of Table 1: steady-state cost per decision as ``f_a`` grows.

    GST is zero (the network is synchronous throughout) so the measurement
    isolates the steady state; faults are silent leaders spread across the
    id space.
    """
    f_max = (n - 1) // 3
    if fault_counts is None:
        fault_counts = range(0, f_max + 1)
    rows = []
    for f_actual in fault_counts:
        duration = 600.0 * delta + 80.0 * n * delta
        for protocol in protocols:
            rows.append(
                _run(
                    protocol,
                    n,
                    f_actual,
                    gst=0.0,
                    duration=duration,
                    delta=delta,
                    actual_delay=actual_delay,
                    seed=seed,
                    chaotic_pre_gst=False,
                )
            )
    return rows


def table1_rows(
    *,
    sizes: Iterable[int] = (4, 7, 13),
    steady_state_n: int = 13,
    delta: float = 1.0,
    actual_delay: float = 0.1,
    seed: int = 0,
) -> dict[str, list[Table1Row]]:
    """Both sweeps, keyed by which half of the table they regenerate."""
    return {
        "worst_case": worst_case_complexity_sweep(
            sizes=sizes, delta=delta, actual_delay=actual_delay, seed=seed
        ),
        "eventual": eventual_complexity_sweep(
            n=steady_state_n, delta=delta, actual_delay=actual_delay, seed=seed
        ),
    }


def format_rows(rows: Sequence[Table1Row]) -> str:
    """Render rows as an aligned text table for reports and bench output."""
    header = (
        f"{'protocol':<14} {'n':>4} {'f_a':>4} {'worst_comm':>11} {'worst_lat':>10} "
        f"{'event_comm':>11} {'event_lat':>10} {'decisions':>10}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.protocol:<14} {row.n:>4} {row.f_actual:>4} "
            f"{_fmt(row.worst_case_communication):>11} {_fmt(row.worst_case_latency):>10} "
            f"{_fmt(row.eventual_communication):>11} {_fmt(row.eventual_latency):>10} "
            f"{row.decisions:>10}"
        )
    return "\n".join(lines)


def _fmt(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)
