"""Regeneration of Figure 1: the LP22 single-faulty-leader pathology.

Figure 1 of the paper shows an LP22 epoch in which the first leaders produce
QCs at network speed, a faulty leader near the end of the epoch stalls, and
honest processors must then wait out almost the whole epoch's worth of clock
time before the next epoch synchronisation — even though only one processor
is faulty.  Lumiere bounds the damage of the same faulty leader to a single
view's ``Gamma``.

:func:`run_figure1` runs the same corruption plan (one silent leader owning
the tail view of an epoch) under both protocols and reports, for each, the
largest gap between consecutive honest-leader decisions after the warmup,
together with the decision timeline used to plot the figure.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.adversary.behaviours import SilentLeaderBehaviour
from repro.adversary.corruption import CorruptionPlan
from repro.experiments.scenario import ScenarioConfig, ScenarioResult, run_scenario


@dataclass(frozen=True)
class Figure1Result:
    """Decision timelines and maximum stall for the two protocols."""

    n: int
    corrupted: int
    lp22_decision_times: tuple[float, ...]
    lumiere_decision_times: tuple[float, ...]
    lp22_max_gap: float
    lumiere_max_gap: float
    lp22_gamma: float
    lumiere_gamma: float

    def gap_ratio(self) -> float:
        """How many times larger LP22's worst stall is than Lumiere's."""
        if self.lumiere_max_gap <= 0:
            return float("inf")
        return self.lp22_max_gap / self.lumiere_max_gap

    def describe(self) -> str:
        return (
            f"Figure 1 (n={self.n}, silent leader p{self.corrupted}): "
            f"LP22 worst stall {self.lp22_max_gap:.2f} "
            f"({self.lp22_max_gap / self.lp22_gamma:.1f} Gamma_lp22), "
            f"Lumiere worst stall {self.lumiere_max_gap:.2f} "
            f"({self.lumiere_max_gap / self.lumiere_gamma:.1f} Gamma_lumiere)"
        )


def _decision_times(result: ScenarioResult, after: float) -> list[float]:
    return [d.time for d in result.metrics.honest_decisions() if d.time >= after]


def run_figure1(
    n: int = 13,
    *,
    delta: float = 1.0,
    actual_delay: float = 0.05,
    duration: float = 2500.0,
    seed: int = 0,
    corrupted: int | None = None,
) -> Figure1Result:
    """Run the Figure-1 scenario under LP22 and Lumiere and compare stalls."""
    base = ScenarioConfig(n=n, delta=delta, actual_delay=actual_delay, gst=0.0, duration=duration,
                          seed=seed, record_trace=False)
    protocol_config = base.protocol_config()
    if corrupted is None:
        # A silent leader somewhere in the middle of the round-robin order;
        # over a long run its views periodically fall at an LP22 epoch tail.
        corrupted = (2 * (protocol_config.f + 1) - 1) % n

    def plan() -> CorruptionPlan:
        return CorruptionPlan.uniform(protocol_config, [corrupted], SilentLeaderBehaviour)

    lp22_config = ScenarioConfig(
        n=n, pacemaker="lp22", delta=delta, actual_delay=actual_delay, gst=0.0,
        duration=duration, seed=seed, corruption=plan(), record_trace=False,
    )
    lumiere_config = ScenarioConfig(
        n=n, pacemaker="lumiere", delta=delta, actual_delay=actual_delay, gst=0.0,
        duration=duration, seed=seed, corruption=plan(), record_trace=False,
    )
    lp22_result = run_scenario(lp22_config)
    lumiere_result = run_scenario(lumiere_config)

    warmup = 20.0 * delta
    lp22_times = _decision_times(lp22_result, warmup)
    lumiere_times = _decision_times(lumiere_result, warmup)
    lp22_gaps = [b - a for a, b in zip(lp22_times, lp22_times[1:])]
    lumiere_gaps = [b - a for a, b in zip(lumiere_times, lumiere_times[1:])]

    x = protocol_config.x
    return Figure1Result(
        n=n,
        corrupted=corrupted,
        lp22_decision_times=tuple(lp22_times),
        lumiere_decision_times=tuple(lumiere_times),
        lp22_max_gap=max(lp22_gaps) if lp22_gaps else float("nan"),
        lumiere_max_gap=max(lumiere_gaps) if lumiere_gaps else float("nan"),
        lp22_gamma=(x + 1) * delta,
        lumiere_gamma=2 * (x + 2) * delta,
    )
