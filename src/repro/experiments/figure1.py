"""Regeneration of Figure 1: the LP22 single-faulty-leader pathology.

Figure 1 of the paper shows an LP22 epoch in which the first leaders produce
QCs at network speed, a faulty leader near the end of the epoch stalls, and
honest processors must then wait out almost the whole epoch's worth of clock
time before the next epoch synchronisation — even though only one processor
is faulty.  Lumiere bounds the damage of the same faulty leader to a single
view's ``Gamma``.

:func:`figure1_sweep` runs the same corruption plan (one silent leader owning
the tail view of an epoch) under both protocols at each requested system
size — as one campaign grid — and reports, for each size, the largest gap
between consecutive honest-leader decisions after the warmup, together with
the decision timeline used to plot the figure.  :func:`run_figure1` is the
single-size convenience wrapper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Optional, Union

from repro.adversary.behaviours import SilentLeaderBehaviour
from repro.adversary.corruption import CorruptionPlan
from repro.config import ProtocolConfig
from repro.experiments.scenario import ScenarioConfig
from repro.runner.cache import ResultCache
from repro.runner.campaign import Campaign, Sweep


@dataclass(frozen=True)
class Figure1Result:
    """Decision timelines and maximum stall for the two protocols."""

    n: int
    corrupted: int
    lp22_decision_times: tuple[float, ...]
    lumiere_decision_times: tuple[float, ...]
    lp22_max_gap: float
    lumiere_max_gap: float
    lp22_gamma: float
    lumiere_gamma: float

    def gap_ratio(self) -> float:
        """How many times larger LP22's worst stall is than Lumiere's."""
        if self.lumiere_max_gap <= 0:
            return float("inf")
        return self.lp22_max_gap / self.lumiere_max_gap

    def describe(self) -> str:
        return (
            f"Figure 1 (n={self.n}, silent leader p{self.corrupted}): "
            f"LP22 worst stall {self.lp22_max_gap:.2f} "
            f"({self.lp22_max_gap / self.lp22_gamma:.1f} Gamma_lp22), "
            f"Lumiere worst stall {self.lumiere_max_gap:.2f} "
            f"({self.lumiere_max_gap / self.lumiere_gamma:.1f} Gamma_lumiere)"
        )


def default_corrupted(n: int) -> int:
    """A silent leader somewhere in the middle of the round-robin order.

    Over a long run its views periodically fall at an LP22 epoch tail, which
    is the pathology Figure 1 is about.
    """
    f = ProtocolConfig(n=n).f
    return (2 * (f + 1) - 1) % n


def build_figure1_config(params: dict[str, Any]) -> ScenarioConfig:
    """Campaign cell builder: one protocol at one size, one silent leader."""
    n = params["n"]
    corrupted = params["corrupted"]
    if corrupted is None:
        corrupted = default_corrupted(n)
    duration = params["duration"]
    if duration is None:
        duration = 300.0 + 120.0 * n
    config = ScenarioConfig(
        n=n,
        pacemaker=params["pacemaker"],
        delta=params["delta"],
        actual_delay=params["actual_delay"],
        gst=0.0,
        duration=duration,
        seed=params["seed"],
        record_trace=False,
    )
    config.corruption = CorruptionPlan.uniform(
        config.protocol_config(), [corrupted], SilentLeaderBehaviour
    )
    return config


def figure1_sweep(
    sizes: Iterable[int],
    *,
    delta: float = 1.0,
    actual_delay: float = 0.05,
    duration: Optional[float] = None,
    seed: int = 0,
    corrupted: Optional[int] = None,
    backend: str = "serial",
    workers: Optional[int] = None,
    cache: Union[ResultCache, str, None] = None,
) -> dict[int, Figure1Result]:
    """Run the Figure-1 scenario under LP22 and Lumiere at each size.

    ``duration=None`` scales the run with the system size (``300 + 120 n``);
    ``corrupted=None`` picks the epoch-tail leader via
    :func:`default_corrupted`.  Returns one :class:`Figure1Result` per size.
    """
    sizes = tuple(dict.fromkeys(sizes))  # preserve order, drop duplicate cells
    campaign = Campaign(
        name="figure1",
        build=build_figure1_config,
        sweeps=(Sweep("n", sizes), Sweep("pacemaker", ("lp22", "lumiere"))),
        fixed={
            "delta": delta,
            "actual_delay": actual_delay,
            "duration": duration,
            "seed": seed,
            "corrupted": corrupted,
        },
    )
    result = campaign.run(backend=backend, workers=workers, cache=cache)

    warmup = 20.0 * delta
    x = ProtocolConfig().x
    figures: dict[int, Figure1Result] = {}
    for n in sizes:
        lp22 = result.one(n=n, pacemaker="lp22").metrics
        lumiere = result.one(n=n, pacemaker="lumiere").metrics
        lp22_times = lp22.decision_times_after(warmup)
        lumiere_times = lumiere.decision_times_after(warmup)
        lp22_gaps = lp22.decision_gaps(after=warmup)
        lumiere_gaps = lumiere.decision_gaps(after=warmup)
        figures[n] = Figure1Result(
            n=n,
            corrupted=corrupted if corrupted is not None else default_corrupted(n),
            lp22_decision_times=tuple(lp22_times),
            lumiere_decision_times=tuple(lumiere_times),
            lp22_max_gap=max(lp22_gaps) if lp22_gaps else float("nan"),
            lumiere_max_gap=max(lumiere_gaps) if lumiere_gaps else float("nan"),
            lp22_gamma=(x + 1) * delta,
            lumiere_gamma=2 * (x + 2) * delta,
        )
    return figures


def run_figure1(
    n: int = 13,
    *,
    delta: float = 1.0,
    actual_delay: float = 0.05,
    duration: float = 2500.0,
    seed: int = 0,
    corrupted: int | None = None,
    backend: str = "serial",
    workers: Optional[int] = None,
    cache: Union[ResultCache, str, None] = None,
) -> Figure1Result:
    """Run the Figure-1 scenario under LP22 and Lumiere and compare stalls."""
    figures = figure1_sweep(
        (n,),
        delta=delta,
        actual_delay=actual_delay,
        duration=duration,
        seed=seed,
        corrupted=corrupted,
        backend=backend,
        workers=workers,
        cache=cache,
    )
    return figures[n]
