"""The Lumiere leader schedule.

Section 4 of the paper assigns leaders as follows: fix a sequence of
permutations of the processor set such that consecutive "leader rounds" at
an epoch boundary share an endpoint; give every leader two consecutive
views; cycle through the permutations round by round.  The property the
correctness proof actually relies on (Lemma 5.13 and footnote 2) is:

* every leader owns two consecutive views (an initial view and the
  non-initial grace view after it), and
* **the last leader of every epoch is also the first leader of the next
  epoch**, so that an honest processor in that position can carry the
  synchronisation gained at the end of one epoch into the start of the next.

The paper achieves the boundary property with paired reverse permutations;
we construct it directly: rounds are pseudo-random permutations, and each
round that starts an epoch is constrained to begin with the processor that
ended the previous round.  This preserves exactly the property the proof
needs while keeping leader assignment pseudo-random and identical at every
processor (the schedule is a deterministic function of the seed).
"""

from __future__ import annotations

import random

from repro.errors import ConfigurationError


class LeaderSchedule:
    """Deterministic epoch-aware leader assignment shared by all processors."""

    def __init__(self, n: int, views_per_round: int, rounds_per_epoch: int, seed: int = 0) -> None:
        if n < 1:
            raise ConfigurationError(f"n must be positive, got {n}")
        if views_per_round != 2 * n:
            raise ConfigurationError(
                f"views_per_round must be 2n={2 * n} (two consecutive views per leader), "
                f"got {views_per_round}"
            )
        if rounds_per_epoch < 1:
            raise ConfigurationError(f"rounds_per_epoch must be >= 1, got {rounds_per_epoch}")
        self.n = n
        self.views_per_round = views_per_round
        self.rounds_per_epoch = rounds_per_epoch
        self._rng = random.Random(seed)
        self._rounds: list[list[int]] = []

    # ------------------------------------------------------------------
    # Round generation
    # ------------------------------------------------------------------
    def _round(self, index: int) -> list[int]:
        """The permutation used for leader round ``index`` (lazily generated)."""
        while len(self._rounds) <= index:
            self._rounds.append(self._generate_round(len(self._rounds)))
        return self._rounds[index]

    def _generate_round(self, index: int) -> list[int]:
        permutation = list(range(self.n))
        self._rng.shuffle(permutation)
        if index == 0:
            return permutation
        starts_epoch = index % self.rounds_per_epoch == 0
        if starts_epoch:
            previous_last = self._rounds[index - 1][-1]
            permutation.remove(previous_last)
            permutation.insert(0, previous_last)
        return permutation

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def leader_of(self, view: int) -> int:
        """The leader of ``view``."""
        if view < 0:
            return 0
        round_index = view // self.views_per_round
        slot = (view // 2) % self.n
        return self._round(round_index)[slot]

    def views_led_by(self, pid: int, epoch: int, epoch_length: int) -> list[int]:
        """All views within ``epoch`` that ``pid`` leads (useful for tests and attacks)."""
        first = epoch * epoch_length
        return [view for view in range(first, first + epoch_length) if self.leader_of(view) == pid]

    def last_leader_of_epoch(self, epoch: int, epoch_length: int) -> int:
        """The leader of the final view of ``epoch``."""
        return self.leader_of((epoch + 1) * epoch_length - 1)

    def first_leader_of_epoch(self, epoch: int, epoch_length: int) -> int:
        """The leader of the first view of ``epoch``."""
        return self.leader_of(epoch * epoch_length)
