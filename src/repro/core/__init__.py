"""Lumiere: the paper's Byzantine View Synchronization protocol.

This package implements Algorithm 1 of the paper (the full Lumiere protocol
with the success-criterion mechanism that removes heavy epoch
synchronisations in the steady state), plus Basic Lumiere (Section 3.4,
which performs a heavy synchronisation at the start of every epoch), the
epoch-aware leader schedule, and the certificate machinery (View
Certificates, Timeout Certificates and Epoch Certificates).
"""

from repro.core.config import LumiereConfig
from repro.core.leader_schedule import LeaderSchedule
from repro.core.lumiere import BasicLumierePacemaker, LumierePacemaker
from repro.core.messages import EpochViewMessage, ViewCertificate, ViewMessage
from repro.core.certificates import CertificateCollector, EpochMessageCollector
from repro.core.success import SuccessTracker

__all__ = [
    "BasicLumierePacemaker",
    "CertificateCollector",
    "EpochMessageCollector",
    "EpochViewMessage",
    "LeaderSchedule",
    "LumiereConfig",
    "LumierePacemaker",
    "SuccessTracker",
    "ViewCertificate",
    "ViewMessage",
]
