"""Configuration of the Lumiere pacemaker.

The defaults follow Section 4 of the paper:

* ``Gamma = 2 (x + 2) Delta`` — the time allotted to each view,
* epochs of ``10 n`` views, i.e. five "leader rounds" of ``2 n`` views each
  (every processor leads two consecutive views per round, so every
  processor leads ten views per epoch),
* success criterion: at least ``2f + 1`` distinct processors each produce a
  QC for every one of their views in the epoch (ten QCs with the default
  epoch length),
* QC-production deadline: an honest leader only produces a QC for view
  ``v`` if it can do so within ``Gamma / 2 - 2 Delta`` of sending the VC for
  ``v`` (or of entering ``v``, for the responsive path / non-initial views).

``epoch_rounds`` scales the epoch length (and the success threshold with
it); tests use smaller values to keep runs short, the paper's value is 5.
Setting ``use_success_criterion=False`` and ``epoch_rounds`` appropriately
yields Basic Lumiere (Section 3.4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.config import ProtocolConfig
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class LumiereConfig:
    """Parameters of the Lumiere view-synchronisation protocol."""

    protocol: ProtocolConfig
    #: Number of 2n-view leader rounds per epoch.  The paper uses 5 (10n views).
    epoch_rounds: int = 5
    #: Whether to run the Section-3.5 mechanism that skips heavy epoch
    #: synchronisations once an epoch satisfies the success criterion.
    use_success_criterion: bool = True
    #: Seed of the deterministic leader schedule shared by all processors.
    leader_seed: int = 0
    #: Override for Gamma (defaults to ``2 (x + 2) Delta``).
    gamma_override: Optional[float] = None
    #: Number of distinct leaders that must hit the per-leader QC quota for
    #: the success criterion.  Defaults to ``2f + 1``.
    success_leaders_override: Optional[int] = None
    #: Number of QCs each of those leaders must produce within the epoch.
    #: Defaults to the number of views each leader owns per epoch.
    success_qcs_override: Optional[int] = None

    def __post_init__(self) -> None:
        if self.epoch_rounds < 1:
            raise ConfigurationError(f"epoch_rounds must be >= 1, got {self.epoch_rounds}")
        if self.gamma_override is not None and self.gamma_override <= 0:
            raise ConfigurationError("gamma_override must be positive")
        # The success tracker counts a leader as qualified the moment its
        # QC-set *reaches* the quota, so a quota (or leader requirement)
        # below 1 is meaningless — reject it instead of silently never (or
        # always) satisfying the criterion.
        if self.success_qcs_override is not None and self.success_qcs_override < 1:
            raise ConfigurationError(
                f"success_qcs_override must be >= 1, got {self.success_qcs_override}"
            )
        if self.success_leaders_override is not None and self.success_leaders_override < 1:
            raise ConfigurationError(
                f"success_leaders_override must be >= 1, got {self.success_leaders_override}"
            )

    # ------------------------------------------------------------------
    # Derived parameters
    # ------------------------------------------------------------------
    @property
    def gamma(self) -> float:
        """Time allotted to each view: ``2 (x + 2) Delta`` unless overridden."""
        if self.gamma_override is not None:
            return self.gamma_override
        return 2.0 * (self.protocol.x + 2) * self.protocol.delta

    @property
    def epoch_length(self) -> int:
        """Number of views per epoch (``2 n`` views per leader round)."""
        return 2 * self.protocol.n * self.epoch_rounds

    @property
    def views_per_leader_per_epoch(self) -> int:
        """How many views each processor leads in one epoch."""
        return 2 * self.epoch_rounds

    @property
    def success_qcs_per_leader(self) -> int:
        """QCs a leader must produce within an epoch to count towards success."""
        if self.success_qcs_override is not None:
            return self.success_qcs_override
        return self.views_per_leader_per_epoch

    @property
    def success_leaders_required(self) -> int:
        """Distinct leaders needed for an epoch to satisfy the success criterion."""
        if self.success_leaders_override is not None:
            return self.success_leaders_override
        return self.protocol.quorum_size

    @property
    def qc_deadline(self) -> float:
        """``Gamma / 2 - 2 Delta``: how late an honest leader may still produce a QC."""
        return self.gamma / 2.0 - 2.0 * self.protocol.delta

    # ------------------------------------------------------------------
    # View arithmetic
    # ------------------------------------------------------------------
    def clock_time(self, view: int) -> float:
        """``c_v = Gamma * v``: the local-clock time corresponding to ``view``."""
        return self.gamma * view

    def is_initial(self, view: int) -> bool:
        """Even views are initial; odd views are non-initial grace views."""
        return view % 2 == 0

    def is_epoch_view(self, view: int) -> bool:
        """Whether ``view`` is the first view of its epoch."""
        return view % self.epoch_length == 0

    def epoch_of(self, view: int) -> int:
        """``E(v)``: the epoch the view belongs to."""
        return view // self.epoch_length

    def first_view_of_epoch(self, epoch: int) -> int:
        """``V(e)``: the first view of ``epoch``."""
        return epoch * self.epoch_length

    def describe(self) -> str:
        """Summary used in reports."""
        return (
            f"LumiereConfig(n={self.protocol.n}, Gamma={self.gamma}, "
            f"epoch_length={self.epoch_length}, success={self.use_success_criterion})"
        )
