"""The success criterion of Section 3.5.

An epoch *produces the success criterion* when at least ``2f + 1`` distinct
processors each produce a QC for every one of their views in the epoch (ten
QCs with the default epoch length).  Each processor tracks the criterion
locally from the QCs it observes; when the local variable ``success(e)``
flips to 1, the processor treats the first view of epoch ``e + 1`` as a
standard initial view and skips the heavy epoch synchronisation.
"""

from __future__ import annotations

from typing import Callable

from repro.consensus.quorum import QuorumCertificate
from repro.core.config import LumiereConfig


class SuccessTracker:
    """Tracks, per epoch, which leaders produced QCs for which views."""

    def __init__(self, config: LumiereConfig, leader_of: Callable[[int], int]) -> None:
        self.config = config
        self.leader_of = leader_of
        self._qc_views: dict[int, dict[int, set[int]]] = {}
        self._satisfied: set[int] = set()
        # Number of leaders currently meeting the per-leader quota, per epoch,
        # maintained incrementally: observe_qc is called for every QC at every
        # replica, so rescanning all leaders there was an O(n) cost per QC
        # that dominated large-n profiles.
        self._qualified: dict[int, int] = {}
        self._quota = config.success_qcs_per_leader
        self._required = config.success_leaders_required

    def observe_qc(self, qc: QuorumCertificate) -> bool:
        """Record a QC.  Returns True if this observation *newly* satisfies the epoch."""
        if not self.config.use_success_criterion:
            return False
        view = qc.view
        if view < 0:
            return False
        epoch = self.config.epoch_of(view)
        if epoch in self._satisfied:
            return False
        leader = self.leader_of(view)
        per_leader = self._qc_views.setdefault(epoch, {})
        views = per_leader.setdefault(leader, set())
        if view in views:
            return False
        views.add(view)
        if len(views) != self._quota:
            return False  # leader not *newly* qualified; counts unchanged
        qualified = self._qualified.get(epoch, 0) + 1
        self._qualified[epoch] = qualified
        if qualified >= self._required:
            self._satisfied.add(epoch)
            return True
        return False

    def satisfied(self, epoch: int) -> bool:
        """The local variable ``success(epoch)``."""
        if epoch < 0:
            return False
        return epoch in self._satisfied

    def qc_count(self, epoch: int) -> int:
        """Total QCs observed for views of ``epoch`` (diagnostics)."""
        per_leader = self._qc_views.get(epoch, {})
        return sum(len(views) for views in per_leader.values())

    def qualified_leaders(self, epoch: int) -> int:
        """How many leaders currently meet the per-leader QC quota in ``epoch``."""
        per_leader = self._qc_views.get(epoch, {})
        return sum(
            1 for views in per_leader.values() if len(views) >= self.config.success_qcs_per_leader
        )
