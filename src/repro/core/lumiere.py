"""The Lumiere pacemaker — Algorithm 1 of the paper.

Lumiere intertwines two synchronisation procedures:

* a **heavy epoch synchronisation** (all-to-all epoch-view messages,
  quadratic communication) performed at the start of an epoch *only when the
  previous epoch did not satisfy the success criterion*, and
* a **light view synchronisation** within epochs (Fever-style): processors
  send a single view message to the next leader when their local clock
  reaches an initial view, leaders aggregate ``f+1`` of them into a View
  Certificate, and QCs / VCs / TCs bump local clocks forward so that honest
  clocks only ever get closer together.

The class follows Algorithm 1 line by line; comments cite the line numbers.
``BasicLumierePacemaker`` (Section 3.4) is the same machinery with the
success criterion disabled and a one-round epoch, so a heavy synchronisation
happens at the start of every epoch.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Optional

from repro.config import ProtocolConfig
from repro.consensus.quorum import QuorumCertificate
from repro.core.certificates import CertificateCollector, EpochMessageCollector
from repro.core.config import LumiereConfig
from repro.core.leader_schedule import LeaderSchedule
from repro.core.messages import (
    EpochViewMessage,
    ViewCertificate,
    ViewMessage,
    epoch_view_message_payload,
    view_message_payload,
)
from repro.core.success import SuccessTracker
from repro.pacemakers.base import Pacemaker, PacemakerMessage
from repro.sim.clock import LocalTimer

if TYPE_CHECKING:  # pragma: no cover
    from repro.consensus.replica import Replica

_EPS = 1e-9


class LumierePacemaker(Pacemaker):
    """Full Lumiere (Algorithm 1) with the steady-state heavy-sync elimination."""

    name = "lumiere"

    def __init__(
        self,
        replica: "Replica",
        config: ProtocolConfig,
        lumiere_config: Optional[LumiereConfig] = None,
    ) -> None:
        super().__init__(replica, config)
        self.cfg = lumiere_config or LumiereConfig(protocol=config)
        self.schedule = LeaderSchedule(
            n=config.n,
            views_per_round=2 * config.n,
            rounds_per_epoch=self.cfg.epoch_rounds,
            seed=self.cfg.leader_seed,
        )
        self.success = SuccessTracker(self.cfg, self.leader_of)
        scheme = replica.scheme
        self._vc_collector = CertificateCollector(
            scheme, config.small_quorum_size, view_message_payload
        )
        self._epoch_collector = EpochMessageCollector(
            scheme,
            tc_threshold=config.small_quorum_size,
            ec_threshold=config.quorum_size,
            payload_fn=epoch_view_message_payload,
        )
        # Protocol state --------------------------------------------------
        self._current_epoch = -1
        self._view_msgs_sent: set[int] = set()
        self._epoch_msgs_sent: set[int] = set()
        self._epoch_clock_handled: set[int] = set()  # line 9/13 "upon first seeing"
        self._vc_handled: set[int] = set()  # line 36 "upon first seeing"
        self._qc_handled: set[int] = set()  # line 44 "upon first seeing"
        self._tc_handled: set[int] = set()  # line 16 "upon first seeing"
        self._ec_handled: set[int] = set()  # line 23 "upon first seeing"
        self._paused_for: Optional[int] = None
        self._clock_timer: Optional[LocalTimer] = None
        # Leader-side deadline bookkeeping for the Gamma/2 - 2*Delta rule.
        self._deadline_start: dict[int, float] = {}
        # Per-view ``(payload, digest)`` memos for the two signed message
        # classes this pacemaker originates or checks.  Every partial sign,
        # VC verification and broadcast re-digested the (tiny, but
        # per-view-constant) payload; at n=512 that digest dispatch is the
        # single hottest crypto call in the kernel profile, and caching it
        # per view makes it O(views) instead of O(messages).
        self._view_payloads: dict[int, tuple] = {}
        self._epoch_payloads: dict[int, tuple] = {}

    # ------------------------------------------------------------------
    # Shorthands
    # ------------------------------------------------------------------
    @property
    def gamma(self) -> float:
        """Time allotted to each view."""
        return self.cfg.gamma

    @property
    def current_epoch(self) -> int:
        """The epoch this replica is currently in (-1 before the protocol starts)."""
        return self._current_epoch

    def clock_time(self, view: int) -> float:
        """``c_v``."""
        return self.cfg.clock_time(view)

    def leader_of(self, view: int) -> int:
        """Leader per the epoch-aware schedule (two consecutive views per leader)."""
        return self.schedule.leader_of(view)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        # Everyone starts in view/epoch -1 with lc = 0 == c_0, which is the
        # epoch view of epoch 0, so the first clock event fires immediately
        # and bootstraps the initial heavy synchronisation (or, before GST,
        # stalls harmlessly while clocks are paused).
        self._schedule_next_clock_event(include_current=True)

    # ------------------------------------------------------------------
    # Local-clock events (lines 9-14 and 28-30)
    # ------------------------------------------------------------------
    def _schedule_next_clock_event(self, include_current: bool = False) -> None:
        if self._clock_timer is not None:
            self._clock_timer.cancel()
            self._clock_timer = None
        lc = self.clock.read()
        step = 2 * self.gamma
        candidate = int(math.floor(lc / step + _EPS)) * 2
        if candidate < 0:
            candidate = 0
        if not include_current:
            while self.clock_time(candidate) <= lc + _EPS:
                candidate += 2
        # include_current keeps the floor boundary at-or-below lc.  On a real
        # monotonic clock a few microseconds elapse between bump_to(c_v) and
        # the read() above, so requiring c_candidate >= lc here would skip the
        # boundary we were just bumped onto — under responsive view racing
        # that silently skips the epoch view and live-locks the run at the
        # epoch boundary.  Re-offering an already-handled boundary is safe:
        # _on_clock_target's view/first-seeing guards make the re-fire a no-op
        # and its finally-clause schedules the next boundary above lc.
        target_view = candidate
        self._clock_timer = self.clock.schedule_at_local(
            self.clock_time(target_view),
            lambda: self._on_clock_target(target_view),
            label=f"lumiere-clock-v{target_view}",
        )

    def _on_clock_target(self, view: int) -> None:
        self._clock_timer = None
        try:
            if view <= self._current_view:
                return
            if self.clock.read() + _EPS < self.clock_time(view):
                return  # clock was paused or re-anchored; we will be rescheduled
            if self.cfg.is_epoch_view(view):
                self._on_clock_reaches_epoch_view(view)
            elif self.cfg.is_initial(view) and self._current_epoch == self.cfg.epoch_of(view):
                # Line 28-30: enter the initial view and do the light sync.
                self._enter(view)
                self._send_view_message(view)
        finally:
            if self._clock_timer is None:
                self._schedule_next_clock_event()

    def _on_clock_reaches_epoch_view(self, view: int) -> None:
        """Lines 9-14: the local clock reached the clock time of an epoch view."""
        if view in self._epoch_clock_handled:
            return
        self._epoch_clock_handled.add(view)
        previous_epoch = self.cfg.epoch_of(view) - 1
        if self.success.satisfied(previous_epoch):
            # Line 13-14: treat the epoch view as a standard initial view.
            self._enter(view)
            self._send_view_message(view)
            return
        # Line 9-11: pause and, if still paused Delta later, start a heavy sync.
        self.clock.pause()
        self._paused_for = view
        self.trace("lumiere_epoch_pause", view=view, epoch=self.cfg.epoch_of(view))
        self.replica.runtime.set_timer(
            self.config.delta, self._after_pause_delay, view, label="lumiere-pause-delay"
        )

    def _after_pause_delay(self, view: int) -> None:
        """Line 11: send the epoch-view message if we are still paused for ``view``."""
        if self.clock.paused and self._paused_for == view:
            self._send_epoch_view_message(view)

    # ------------------------------------------------------------------
    # Message dispatch
    # ------------------------------------------------------------------
    def on_message(self, msg: PacemakerMessage, sender: int) -> None:
        if isinstance(msg, ViewMessage):
            self._on_view_message(msg, sender)
        elif isinstance(msg, ViewCertificate):
            self._on_view_certificate(msg, sender)
        elif isinstance(msg, EpochViewMessage):
            self._on_epoch_view_message(msg, sender)

    # ------------------------------------------------------------------
    # View messages and VCs (lines 32-40)
    # ------------------------------------------------------------------
    def _on_view_message(self, msg: ViewMessage, sender: int) -> None:
        view = msg.view
        if not self.cfg.is_initial(view) or view < 0:
            return
        if self.leader_of(view) != self.pid:
            return
        if view < self._current_view:
            return  # line 32 requires v >= view(p)
        aggregate = self._vc_collector.add(view, sender, msg.partial)
        if aggregate is None:
            return
        # Line 33-34: form the VC and send it to all processors.
        self._note_deadline_start(view)
        if self.replica.behaviour.suppress_view_sync("vc", view):
            return
        self.broadcast(ViewCertificate(view=view, aggregate=aggregate))
        self.trace("lumiere_vc_sent", view=view)

    def _on_view_certificate(self, msg: ViewCertificate, sender: int) -> None:
        view = msg.view
        if not self.cfg.is_initial(view) or view < 0:
            return
        payload, digest = self._view_payload(view)
        if not self.replica.scheme.verify(msg.aggregate, payload, message_digest=digest):
            return
        if msg.aggregate.size < self.config.small_quorum_size:
            return
        if view in self._vc_handled:
            return  # line 36 "upon first seeing"
        self._vc_handled.add(view)
        self._maybe_unpause(trigger_view=view, kind="vc")
        if view <= self._current_view:
            return
        # Lines 37-40.
        if self.clock.read() < self.clock_time(view) - _EPS:
            self._send_skipped_view_messages(view)
            self.clock.bump_to(self.clock_time(view))
            self._enter(view)
            self._schedule_next_clock_event(include_current=True)

    # ------------------------------------------------------------------
    # Epoch-view messages, TCs and ECs (lines 16-24)
    # ------------------------------------------------------------------
    def _on_epoch_view_message(self, msg: EpochViewMessage, sender: int) -> None:
        view = msg.view
        if not self.cfg.is_epoch_view(view) or view < 0:
            return
        tc_now, ec_now = self._epoch_collector.add(view, sender, msg.partial)
        if tc_now:
            self._on_timeout_certificate(view)
        if ec_now:
            self._on_epoch_certificate(view)

    def _on_timeout_certificate(self, view: int) -> None:
        """Lines 16-21: first sight of a TC (f+1 epoch-view messages) for ``view``."""
        if view in self._tc_handled:
            return
        self._tc_handled.add(view)
        if self.cfg.epoch_of(view) < self._current_epoch:
            return
        self._maybe_unpause(trigger_view=view, kind="tc")
        if self.clock.read() < self.clock_time(view) - _EPS:
            # Lines 17-20.
            self._send_skipped_view_messages(view)
            self.clock.bump_to(self.clock_time(view))
            if self._current_view < view - 1:
                self._enter(view - 1)
            self._schedule_next_clock_event(include_current=True)
        # Line 21: relay our own epoch-view message so the EC can complete.
        self._send_epoch_view_message(view)

    def _on_epoch_certificate(self, view: int) -> None:
        """Lines 23-24: first sight of an EC (2f+1 epoch-view messages) for ``view``."""
        if view in self._ec_handled:
            return
        self._ec_handled.add(view)
        if self.cfg.epoch_of(view) <= self._current_epoch:
            return
        self._maybe_unpause(trigger_view=view, kind="ec")
        if self.clock.read() < self.clock_time(view) - _EPS:
            self.clock.bump_to(self.clock_time(view))
        self._enter(view)
        self.trace("lumiere_enter_epoch_via_ec", view=view, epoch=self.cfg.epoch_of(view))
        self._schedule_next_clock_event(include_current=True)

    # ------------------------------------------------------------------
    # QCs (lines 44-49) and the success criterion
    # ------------------------------------------------------------------
    def on_qc(self, qc: QuorumCertificate) -> None:
        view = qc.view
        if view < 0:
            return
        newly_satisfied = self.success.observe_qc(qc)
        if newly_satisfied:
            epoch = self.cfg.epoch_of(view)
            self.trace("lumiere_success_criterion", epoch=epoch)
            self._maybe_unpause(trigger_view=self.cfg.first_view_of_epoch(epoch + 1), kind="success")
        if view in self._qc_handled:
            return  # line 44 "upon first seeing"
        self._qc_handled.add(view)
        self._maybe_unpause(trigger_view=view, kind="qc")
        if view < self._current_view:
            return
        next_view = view + 1
        if self.clock.read() < self.clock_time(next_view) - _EPS:
            # Lines 45-49.
            self._send_skipped_view_messages(view)
            self.clock.bump_to(self.clock_time(next_view))
            if not self.cfg.is_epoch_view(next_view):
                self._enter(next_view)
            elif self._current_view < view:
                self._enter(view)
            # Rescheduling includes the current local-clock value so that the
            # "lc reached c_w" event of an epoch view we were bumped exactly
            # onto (lines 9-14) still fires.
            self._schedule_next_clock_event(include_current=True)

    def on_local_qc(self, qc: QuorumCertificate) -> None:
        """Leader-side bookkeeping: producing a QC starts the next view's deadline."""
        next_view = qc.view + 1
        if self.leader_of(next_view) == self.pid:
            self._note_deadline_start(next_view)

    def may_produce_qc(self, view: int) -> bool:
        """The Gamma/2 - 2*Delta production deadline for honest leaders (Section 4)."""
        start = self._deadline_start.get(view)
        if start is None:
            return True
        return self.now <= start + self.cfg.qc_deadline + _EPS

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    def _enter(self, view: int) -> None:
        """Enter ``view`` (and its epoch), keeping the deadline bookkeeping current."""
        if view <= self._current_view:
            return
        self._current_epoch = self.cfg.epoch_of(view)
        if self.leader_of(view) == self.pid and view not in self._deadline_start:
            self._deadline_start[view] = self.now
        self.enter_view(view)

    def _view_payload(self, view: int) -> tuple:
        """``(payload, digest)`` of ``view``'s view message, memoised."""
        cached = self._view_payloads.get(view)
        if cached is None:
            payload = view_message_payload(view)
            digest = self.replica.scheme.backend.digest(payload)
            cached = self._view_payloads[view] = (payload, digest)
        return cached

    def _epoch_payload(self, view: int) -> tuple:
        """``(payload, digest)`` of ``view``'s epoch-view message, memoised."""
        cached = self._epoch_payloads.get(view)
        if cached is None:
            payload = epoch_view_message_payload(view)
            digest = self.replica.scheme.backend.digest(payload)
            cached = self._epoch_payloads[view] = (payload, digest)
        return cached

    def _send_view_message(self, view: int) -> None:
        """Send a view message for ``view`` to its leader (at most once)."""
        if view in self._view_msgs_sent or view < 0 or not self.cfg.is_initial(view):
            return
        self._view_msgs_sent.add(view)
        if self.replica.behaviour.suppress_view_sync("view", view):
            return
        payload, digest = self._view_payload(view)
        partial = self.replica.scheme.partial_sign(
            self.replica.signing_key, payload, message_digest=digest
        )
        self.send(self.leader_of(view), ViewMessage(view=view, partial=partial))

    def _send_skipped_view_messages(self, up_to_view: int) -> None:
        """Lines 18/38/46: send view messages for initial views in [view(p), up_to_view)."""
        start = max(self._current_view, 0)
        if start % 2 == 1:
            start += 1
        for view in range(start, up_to_view, 2):
            self._send_view_message(view)

    def _send_epoch_view_message(self, view: int) -> None:
        """Broadcast an epoch-view message for ``view`` (at most once)."""
        if view in self._epoch_msgs_sent:
            return
        self._epoch_msgs_sent.add(view)
        self.replica.record_epoch_sync(self.cfg.epoch_of(view))
        if self.replica.behaviour.suppress_view_sync("epoch_view", view):
            return
        payload, digest = self._epoch_payload(view)
        partial = self.replica.scheme.partial_sign(
            self.replica.signing_key, payload, message_digest=digest
        )
        self.broadcast(EpochViewMessage(view=view, partial=partial))
        self.trace("lumiere_epoch_view_sent", view=view, epoch=self.cfg.epoch_of(view))

    def _maybe_unpause(self, trigger_view: int, kind: str) -> None:
        """Line 10: resume the paused clock when one of the stated events occurs."""
        if self._paused_for is None or not self.clock.paused:
            return
        waiting_for = self._paused_for
        should_unpause = False
        if kind in ("ec", "qc", "vc") and trigger_view >= waiting_for:
            should_unpause = True
        elif kind == "tc" and trigger_view > waiting_for:
            should_unpause = True
        elif kind == "success" and trigger_view >= waiting_for:
            should_unpause = True
        if not should_unpause:
            return
        self._paused_for = None
        self.clock.unpause()
        self.trace("lumiere_unpause", trigger=kind, view=trigger_view)
        if kind == "success":
            # Line 13-14 via the unpause condition: enter the epoch view as a
            # standard initial view and perform its light synchronisation.
            self._epoch_clock_handled.add(waiting_for)
            self._enter(waiting_for)
            self._send_view_message(waiting_for)
        self._schedule_next_clock_event(include_current=True)

    def _note_deadline_start(self, view: int) -> None:
        """Reset the QC-production deadline reference point for ``view`` to now."""
        self._deadline_start[view] = self.now

    def describe(self) -> str:
        return (
            f"{type(self).__name__}(view={self._current_view}, epoch={self._current_epoch}, "
            f"lc={self.clock.read():.2f}, paused={self.clock.paused})"
        )


class BasicLumierePacemaker(LumierePacemaker):
    """Basic Lumiere (Section 3.4): LP22-style epochs with Fever-style views.

    Identical machinery, but the success criterion is disabled, so every
    epoch begins with a heavy (all-to-all) synchronisation, and epochs are a
    single leader round of ``2n`` views (close to the paper's ``2(f+1)``
    while keeping the two-consecutive-views-per-leader structure).
    """

    name = "basic-lumiere"

    def __init__(
        self,
        replica: "Replica",
        config: ProtocolConfig,
        lumiere_config: Optional[LumiereConfig] = None,
    ) -> None:
        if lumiere_config is None:
            lumiere_config = LumiereConfig(
                protocol=config,
                epoch_rounds=1,
                use_success_criterion=False,
            )
        super().__init__(replica, config, lumiere_config)
