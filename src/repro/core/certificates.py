"""Certificate collectors used by Lumiere (and reusable by other pacemakers).

Two collectors exist:

* :class:`CertificateCollector` — collects signed *view messages* per view at
  the view's leader and forms a View Certificate (``f+1`` threshold
  signature) exactly once.
* :class:`EpochMessageCollector` — collects broadcast *epoch-view messages*
  per epoch view at every processor and reports when the Timeout
  Certificate threshold (``f+1`` distinct signers) and the Epoch Certificate
  threshold (``2f+1`` distinct signers) are first crossed.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.crypto.threshold import PartialSignature, ThresholdScheme, ThresholdSignature
from repro.errors import CryptoError, ThresholdError


class CertificateCollector:
    """Aggregates partial signatures per view into a threshold signature."""

    def __init__(self, scheme: ThresholdScheme, threshold: int, payload_fn) -> None:
        self.scheme = scheme
        self.threshold = threshold
        self.payload_fn = payload_fn
        self._partials: dict[int, dict[int, PartialSignature]] = {}
        self._formed: set[int] = set()
        self._payloads: dict[int, tuple] = {}
        # Sender -> VerifyingKey, resolved once: ``PKI.is_valid_digest``
        # re-derives the key (dict lookup behind a try/except) on every
        # share, and a leader sees each sender once per view.
        self._vkeys: dict[int, Any] = {}

    def _payload_and_digest(self, view: int) -> tuple:
        """``(payload, digest)`` for ``view``, computed once per view.

        Every arriving share triggers a payload build and digest; memoising
        per view turns O(shares) digest calls into O(views) — at n=256 this
        alone removes tens of thousands of digest dispatches per run.
        """
        cached = self._payloads.get(view)
        if cached is None:
            payload = self.payload_fn(view)
            cached = self._payloads[view] = (payload, self.scheme.backend.digest(payload))
        return cached

    def add(self, view: int, sender: int, partial: PartialSignature) -> Optional[ThresholdSignature]:
        """Record a share; return the aggregate the first time the threshold is met.

        The checks run cheapest-first: mismatched or duplicate senders are
        rejected before any signature verification happens — a re-delivered
        share costs two dict lookups, not a proof digest.
        """
        if view in self._formed or partial.signer != sender:
            return None
        bucket = self._partials.setdefault(view, {})
        if sender in bucket:
            return None
        payload, payload_digest = self._payload_and_digest(view)
        if partial.message_digest != payload_digest:
            return None
        key = self._verifying_key(sender)
        if key is None or not key.verify_digest(partial.signature, payload_digest):
            return None
        bucket[sender] = partial
        if len(bucket) < self.threshold:
            return None
        try:
            aggregate = self.scheme.combine(
                list(bucket.values()),
                self.threshold,
                payload,
                message_digest=payload_digest,
            )
        except ThresholdError:
            return None
        self._formed.add(view)
        return aggregate

    def _verifying_key(self, sender: int):
        key = self._vkeys.get(sender)
        if key is None:
            try:
                key = self.scheme.pki.verifying_key(sender)
            except CryptoError:
                return None
            self._vkeys[sender] = key
        return key

    def count(self, view: int) -> int:
        """Number of distinct valid shares collected for ``view``."""
        return len(self._partials.get(view, {}))

    def formed(self, view: int) -> bool:
        """Whether the aggregate for ``view`` has already been produced."""
        return view in self._formed


class EpochMessageCollector:
    """Counts distinct epoch-view message signers and reports TC / EC thresholds.

    ``add`` returns a pair of booleans ``(tc_now, ec_now)`` that are True the
    first time the respective threshold is crossed for the view.
    """

    def __init__(self, scheme: ThresholdScheme, tc_threshold: int, ec_threshold: int, payload_fn) -> None:
        self.scheme = scheme
        self.tc_threshold = tc_threshold
        self.ec_threshold = ec_threshold
        self.payload_fn = payload_fn
        self._signers: dict[int, set[int]] = {}
        self._tc_reported: set[int] = set()
        self._ec_reported: set[int] = set()
        # (payload, digest) per view — same memo as CertificateCollector:
        # every processor runs one of these, and every broadcast epoch-view
        # message used to re-digest the per-view payload on arrival.
        self._payloads: dict[int, tuple] = {}
        # Sender -> VerifyingKey, resolved once (see CertificateCollector).
        self._vkeys: dict[int, Any] = {}

    def add(self, view: int, sender: int, partial: PartialSignature) -> tuple[bool, bool]:
        """Record an epoch-view message; report threshold crossings.

        Duplicate senders return early *before* signature verification:
        once a signer counted towards a view, re-verifying a re-broadcast
        cannot change either threshold answer (both thresholds are reported
        the instant the signer count reaches them), so the proof digest is
        pure waste — and every processor receives every broadcast, so the
        duplicate path is the common one under retransmission.
        """
        if partial.signer != sender:
            return (False, False)
        signers = self._signers.setdefault(view, set())
        if sender in signers:
            return (False, False)
        cached = self._payloads.get(view)
        if cached is None:
            payload = self.payload_fn(view)
            cached = self._payloads[view] = (payload, self.scheme.backend.digest(payload))
        payload, payload_digest = cached
        if partial.message_digest != payload_digest:
            return (False, False)
        key = self._vkeys.get(sender)
        if key is None:
            try:
                key = self.scheme.pki.verifying_key(sender)
            except CryptoError:
                return (False, False)
            self._vkeys[sender] = key
        if not key.verify_digest(partial.signature, payload_digest):
            return (False, False)
        signers.add(sender)
        tc_now = False
        ec_now = False
        if len(signers) >= self.tc_threshold and view not in self._tc_reported:
            self._tc_reported.add(view)
            tc_now = True
        if len(signers) >= self.ec_threshold and view not in self._ec_reported:
            self._ec_reported.add(view)
            ec_now = True
        return (tc_now, ec_now)

    def count(self, view: int) -> int:
        """Distinct signers seen for ``view``."""
        return len(self._signers.get(view, set()))

    def has_tc(self, view: int) -> bool:
        """Whether a TC (``f+1`` signers) has been assembled for ``view``."""
        return view in self._tc_reported

    def has_ec(self, view: int) -> bool:
        """Whether an EC (``2f+1`` signers) has been assembled for ``view``."""
        return view in self._ec_reported
