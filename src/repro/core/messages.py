"""Lumiere's view-synchronisation messages.

Three wire messages exist:

* ``ViewMessage`` — "view ``v`` message": the value ``v`` signed by the
  sender, sent to ``lead(v)`` when a processor's local clock reaches the
  initial view ``v`` (O(1) messages per processor per view).
* ``ViewCertificate`` — a threshold signature of ``f+1`` view messages,
  formed and broadcast by the leader (linear per view).
* ``EpochViewMessage`` — "epoch view ``v`` message", broadcast to all
  processors during a heavy epoch synchronisation (quadratic per epoch
  synchronisation, which is the cost Lumiere eliminates in the steady
  state).

Timeout Certificates (``f+1`` epoch-view messages) and Epoch Certificates
(``2f+1`` epoch-view messages) are not separate wire messages: every
processor assembles them locally from the broadcast epoch-view messages it
receives (see :mod:`repro.core.certificates`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.threshold import PartialSignature, ThresholdSignature
from repro.pacemakers.base import PacemakerMessage


def view_message_payload(view: int) -> tuple:
    """The signed payload of a view message."""
    return ("lumiere-view", view)


def epoch_view_message_payload(view: int) -> tuple:
    """The signed payload of an epoch-view message."""
    return ("lumiere-epoch-view", view)


@dataclass(frozen=True, slots=True)
class ViewMessage(PacemakerMessage):
    """A processor's signed wish to run initial view ``view``, sent to its leader."""

    view: int
    partial: PartialSignature


@dataclass(frozen=True, slots=True)
class ViewCertificate(PacemakerMessage):
    """A threshold signature of ``f+1`` view messages, broadcast by ``lead(view)``."""

    view: int
    aggregate: ThresholdSignature


@dataclass(frozen=True, slots=True)
class EpochViewMessage(PacemakerMessage):
    """A processor's signed wish to start the epoch beginning at ``view``, broadcast to all."""

    view: int
    partial: PartialSignature
