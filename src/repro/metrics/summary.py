"""Summaries of a run in the units the paper reports.

:func:`summarize_run` turns a :class:`~repro.metrics.collector.MetricsCollector`
into a :class:`ComplexitySummary` holding the four Table-1 measures, plus a
few practical extras (decision throughput, heavy-sync count) used by the
examples and benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.metrics.collector import MetricsCollector


@dataclass(frozen=True)
class ComplexitySummary:
    """The measured analogue of one Table-1 column for one run."""

    protocol: str
    n: int
    f_actual: int
    gst: float
    delta: float
    #: W_{GST+Delta}: honest messages from GST+Delta to the first honest-leader QC after it.
    worst_case_communication: Optional[int]
    #: t*_GST - GST.
    worst_case_latency: Optional[float]
    #: max over post-warmup decision gaps of honest messages per gap.
    eventual_communication: Optional[int]
    #: max over post-warmup decision gaps of elapsed time per gap.
    eventual_latency: Optional[float]
    #: number of honest-leader decisions in the run.
    decisions: int
    #: distinct epochs heavy-synced after the warm-up point.
    heavy_syncs_after_warmup: int
    #: total honest messages in the run.
    total_messages: int

    def as_row(self) -> dict[str, object]:
        """Flat dict form, convenient for tabular reports."""
        return {
            "protocol": self.protocol,
            "n": self.n,
            "f_actual": self.f_actual,
            "worst_comm": self.worst_case_communication,
            "worst_latency": self.worst_case_latency,
            "eventual_comm": self.eventual_communication,
            "eventual_latency": self.eventual_latency,
            "decisions": self.decisions,
            "heavy_syncs": self.heavy_syncs_after_warmup,
            "total_messages": self.total_messages,
        }


def summarize_run(
    metrics: MetricsCollector,
    protocol: str,
    n: int,
    f_actual: int,
    gst: float,
    delta: float,
    warmup_decisions: int = 5,
) -> ComplexitySummary:
    """Compute the Table-1 measures for one finished run.

    ``warmup_decisions`` controls where "eventually" starts: the eventual
    measures are maxima over the decision gaps that begin at or after the
    ``warmup_decisions``-th honest-leader decision following GST.  The paper
    shows Lumiere reaches its steady state within expected O(n*Delta) of GST,
    i.e. within a small constant number of decisions.
    """
    honest_decisions = [d for d in metrics.honest_decisions() if d.time >= gst]
    if len(honest_decisions) > warmup_decisions:
        warmup_time = honest_decisions[warmup_decisions].time
    elif honest_decisions:
        warmup_time = honest_decisions[-1].time
    else:
        warmup_time = gst

    gaps = metrics.decision_gaps(after=warmup_time)
    per_gap_messages = metrics.messages_per_gap(after=warmup_time)

    return ComplexitySummary(
        protocol=protocol,
        n=n,
        f_actual=f_actual,
        gst=gst,
        delta=delta,
        worst_case_communication=metrics.communication_after(gst + delta),
        worst_case_latency=metrics.latency_after(gst),
        eventual_communication=max(per_gap_messages) if per_gap_messages else None,
        eventual_latency=max(gaps) if gaps else None,
        decisions=len(honest_decisions),
        heavy_syncs_after_warmup=metrics.epoch_syncs_after(warmup_time),
        total_messages=metrics.total_honest_messages,
    )
