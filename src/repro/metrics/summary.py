"""Summaries of a run in the units the paper reports.

:func:`summarize_run` turns a :class:`~repro.metrics.collector.MetricsCollector`
into a :class:`ComplexitySummary` holding the four Table-1 measures, plus a
few practical extras (decision throughput, heavy-sync count) used by the
examples and benchmarks.

:class:`RunMetrics` is the *serializable* residue of a run: the derived
time-series (honest decision times, per-gap message counts, heavy-sync
events) that every experiment module needs, without the live simulator,
replicas or traces.  It is what crosses process boundaries when a campaign
runs on the process-pool executor, and what the on-disk result cache stores.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.metrics.collector import MetricsCollector


@dataclass(frozen=True)
class ComplexitySummary:
    """The measured analogue of one Table-1 column for one run."""

    protocol: str
    n: int
    f_actual: int
    gst: float
    delta: float
    #: W_{GST+Delta}: honest messages from GST+Delta to the first honest-leader QC after it.
    worst_case_communication: Optional[int]
    #: t*_GST - GST.
    worst_case_latency: Optional[float]
    #: max over post-warmup decision gaps of honest messages per gap.
    eventual_communication: Optional[int]
    #: max over post-warmup decision gaps of elapsed time per gap.
    eventual_latency: Optional[float]
    #: number of honest-leader decisions in the run.
    decisions: int
    #: distinct epochs heavy-synced after the warm-up point.
    heavy_syncs_after_warmup: int
    #: total honest messages in the run.
    total_messages: int

    def as_row(self) -> dict[str, object]:
        """Flat dict form, convenient for tabular reports."""
        return {
            "protocol": self.protocol,
            "n": self.n,
            "f_actual": self.f_actual,
            "worst_comm": self.worst_case_communication,
            "worst_latency": self.worst_case_latency,
            "eventual_comm": self.eventual_communication,
            "eventual_latency": self.eventual_latency,
            "decisions": self.decisions,
            "heavy_syncs": self.heavy_syncs_after_warmup,
            "total_messages": self.total_messages,
        }


@dataclass(frozen=True)
class RunMetrics:
    """Picklable derived metrics of one run, detached from the live system.

    The fields are exactly what the experiment modules (table1, figure1,
    responsiveness, steady_state) compute from a
    :class:`~repro.metrics.collector.MetricsCollector`; keeping them here —
    rather than the collector's raw per-message records — makes the object
    small enough to pickle across a process pool and to store in the result
    cache, while still supporting arbitrary warm-up cutoffs after the fact.
    """

    #: Honest-leader decision times, ascending.
    decision_times: tuple[float, ...]
    #: Honest messages sent between consecutive honest-leader decisions
    #: (``len == len(decision_times) - 1``; entry ``i`` covers the half-open
    #: interval ``[decision_times[i], decision_times[i+1])``).
    gap_message_counts: tuple[int, ...]
    #: Honest heavy epoch synchronisations as ``(time, epoch)`` pairs.
    epoch_sync_events: tuple[tuple[float, int], ...]
    #: Total messages sent by honest processors.
    total_honest_messages: int
    #: Injected-fault totals of a chaotic live run, as sorted
    #: ``(name, count)`` pairs (empty for simulated and fault-free runs).
    fault_counts: tuple[tuple[str, int], ...] = ()
    #: End-to-end client-request latencies in apply order (empty without a
    #: workload).  Defaults keep old cached pickles loadable.
    request_latencies: tuple[float, ...] = ()
    #: Client-request totals (submitted counts acceptances; rejected counts
    #: backpressure refusals; applied == len(request_latencies)).
    requests_submitted: int = 0
    requests_rejected: int = 0

    # ------------------------------------------------------------------
    # The same queries MetricsCollector answers, evaluated on the residue
    # ------------------------------------------------------------------
    def decision_times_after(self, after: float) -> list[float]:
        """Honest-leader decision times at or after ``after``."""
        return [t for t in self.decision_times if t >= after]

    def decision_gaps(self, after: float = 0.0) -> list[float]:
        """Gaps between consecutive honest-leader decisions after ``after``."""
        times = self.decision_times_after(after)
        return [later - earlier for earlier, later in zip(times, times[1:])]

    def messages_per_gap(self, after: float = 0.0) -> list[int]:
        """Honest message counts between consecutive decisions after ``after``.

        Decision times are ascending, so filtering by ``after`` removes a
        prefix and the surviving consecutive pairs match the precomputed
        per-gap counts.
        """
        skipped = len(self.decision_times) - len(self.decision_times_after(after))
        return list(self.gap_message_counts[skipped:])

    def epoch_syncs_after(self, time: float) -> int:
        """Distinct epochs any honest processor heavy-synced at or after ``time``."""
        return len({epoch for t, epoch in self.epoch_sync_events if t >= time})

    def max_gap(self, after: float = 0.0) -> Optional[float]:
        """Largest decision gap after ``after`` (``None`` with < 2 decisions)."""
        gaps = self.decision_gaps(after)
        return max(gaps) if gaps else None

    def median_gap(self, after: float = 0.0) -> Optional[float]:
        """Median decision gap after ``after`` (``None`` with < 2 decisions)."""
        gaps = sorted(self.decision_gaps(after))
        return gaps[len(gaps) // 2] if gaps else None

    def fault_count(self, name: str) -> int:
        """One injected-fault counter by name (0 when absent)."""
        return dict(self.fault_counts).get(name, 0)

    @property
    def requests_applied(self) -> int:
        """Client requests completed during the run."""
        return len(self.request_latencies)

    def request_latency_percentile(self, quantile: float) -> Optional[float]:
        """The ``quantile``-th request latency (0.5 = p50), or ``None``."""
        latencies = sorted(self.request_latencies)
        if not latencies:
            return None
        index = min(len(latencies) - 1, int(quantile * len(latencies)))
        return latencies[index]


def extract_run_metrics(metrics: MetricsCollector) -> RunMetrics:
    """Reduce a live collector to its picklable :class:`RunMetrics` residue."""
    times = metrics.honest_decision_times_after(0.0)
    # messages_per_gap bisects each decision boundary once on the sorted
    # send-time column; its consecutive differences are exactly the per-gap
    # counts messages_between would return pairwise.
    return RunMetrics(
        decision_times=tuple(times),
        gap_message_counts=tuple(metrics.messages_per_gap(after=0.0)),
        epoch_sync_events=tuple(
            (t, epoch)
            for t, pid, epoch in metrics.epoch_syncs
            if pid in metrics.honest_ids
        ),
        total_honest_messages=metrics.total_honest_messages,
        fault_counts=tuple(sorted(metrics.fault_counts.items())),
        request_latencies=tuple(metrics.request_latencies()),
        requests_submitted=metrics.requests_submitted,
        requests_rejected=metrics.requests_rejected,
    )


def summarize_run(
    metrics: MetricsCollector,
    protocol: str,
    n: int,
    f_actual: int,
    gst: float,
    delta: float,
    warmup_decisions: int = 5,
) -> ComplexitySummary:
    """Compute the Table-1 measures for one finished run.

    ``warmup_decisions`` controls where "eventually" starts: the eventual
    measures are maxima over the decision gaps that begin at or after the
    ``warmup_decisions``-th honest-leader decision following GST.  The paper
    shows Lumiere reaches its steady state within expected O(n*Delta) of GST,
    i.e. within a small constant number of decisions.
    """
    honest_decisions = [d for d in metrics.honest_decisions() if d.time >= gst]
    if len(honest_decisions) > warmup_decisions:
        warmup_time = honest_decisions[warmup_decisions].time
    elif honest_decisions:
        warmup_time = honest_decisions[-1].time
    else:
        warmup_time = gst

    gaps = metrics.decision_gaps(after=warmup_time)
    per_gap_messages = metrics.messages_per_gap(after=warmup_time)

    return ComplexitySummary(
        protocol=protocol,
        n=n,
        f_actual=f_actual,
        gst=gst,
        delta=delta,
        worst_case_communication=metrics.communication_after(gst + delta),
        worst_case_latency=metrics.latency_after(gst),
        eventual_communication=max(per_gap_messages) if per_gap_messages else None,
        eventual_latency=max(gaps) if gaps else None,
        decisions=len(honest_decisions),
        heavy_syncs_after_warmup=metrics.epoch_syncs_after(warmup_time),
        total_messages=metrics.total_honest_messages,
    )
