"""Run-time metrics collection.

The collector is attached to the network (to observe sends) and is called by
replicas when QCs form, views are entered, blocks commit, or heavy epoch
synchronisations happen.  It never influences the protocols — it only
observes.

The paper's complexity measures (Section 2):

* ``W_T`` — the number of messages sent by correct processors between time
  ``T >= GST`` and ``t*_T``, the first time after ``T`` at which an honest
  leader produces a QC for its view.
* worst-case communication complexity — ``W_{GST + Delta}``,
* eventual worst-case communication complexity — ``limsup_{T -> inf} W_T``,
* worst-case latency — ``t*_GST - GST``,
* eventual worst-case latency — ``limsup_{T -> inf} (t*_T - T)``.

In a finite run we approximate the limsup by the maximum over all decision
gaps after a configurable warm-up.

Storage is **columnar**: the paper's measures only need message *counts and
times*, so :meth:`MetricsCollector.on_send` appends to parallel primitive
columns (``array('d')`` times, integer id columns, interned kind tokens)
instead of allocating a record object per envelope — the dominant
observation-layer cost of large-``n`` runs.  The record dataclasses
(:class:`MessageRecord`, :class:`DecisionRecord`, :class:`CommitRecord`)
still exist and are materialised lazily by the query methods, so the public
API is unchanged.
"""

from __future__ import annotations

import bisect
from array import array
from dataclasses import dataclass
from typing import Iterable, Optional

from repro.sim.network import Envelope


@dataclass(frozen=True, slots=True)
class DecisionRecord:
    """One QC produced by a leader for its own view."""

    time: float
    view: int
    leader: int
    leader_honest: bool


@dataclass(frozen=True, slots=True)
class MessageRecord:
    """One message sent by an honest processor (self-deliveries excluded)."""

    time: float
    sender: int
    recipient: int
    kind: str


@dataclass(frozen=True, slots=True)
class CommitRecord:
    """One block commit observed at one replica."""

    time: float
    pid: int
    view: int
    block_id: str


class MetricsCollector:
    """Collects message, decision, view-entry, commit and epoch-sync records.

    Messages, decisions and commits are stored as parallel primitive columns
    and materialised into their record dataclasses only when queried (the
    :attr:`messages`, :attr:`decisions` and :attr:`commits` properties build
    fresh lists on each access — iterate, don't mutate).  Interval queries
    (``messages_between``, ``message_kinds_between``, the ``*_after``
    family) bisect sorted time columns instead of scanning every record.
    """

    def __init__(self) -> None:
        self.honest_ids: set[int] = set()
        # Message columns, appended in send order (send times are the
        # simulator clock, so the time column is sorted and bisectable).
        self._message_times = array("d")
        self._message_senders = array("q")
        self._message_recipients = array("q")
        self._message_kind_ids = array("q")
        # Payload-type interning: kind id <-> name (a handful of entries).
        self._kind_names: list[str] = []
        self._kind_ids: dict[str, int] = {}
        # Decision columns, plus the honest-decision index: sorted times of
        # honest-leader decisions and their positions in the full columns.
        self._decision_times = array("d")
        self._decision_views = array("q")
        self._decision_leaders = array("q")
        self._decision_honest = array("b")
        self._honest_decision_times = array("d")
        self._honest_decision_indices = array("q")
        # Commit columns.
        self._commit_times = array("d")
        self._commit_pids = array("q")
        self._commit_views = array("q")
        self._commit_block_ids: list[str] = []
        # Client-request columns: one row per *applied* request, appended at
        # apply time (the apply-time column is sorted and bisectable, like
        # the message and commit columns).  Submission/rejection totals are
        # plain counters — backpressure only needs counts.
        self._request_submit_times = array("d")
        self._request_apply_times = array("d")
        self._request_pids = array("q")
        self.requests_submitted = 0
        self.requests_rejected = 0
        self.view_entries: dict[int, list[tuple[float, int]]] = {}
        self.epoch_syncs: list[tuple[float, int, int]] = []  # (time, pid, epoch)
        self.qc_count = 0
        # Distinct payload contents honest processors put on the wire, from
        # Envelope.payload_digest (networks with a crypto backend attached).
        self._payload_digests: set[str] = set()
        # Injected-fault totals of a chaotic live run (None outside chaos).
        self._fault_counters = None
        # Transports whose frames_dropped counter folds into fault_counts
        # (TCP transports register through attach_transport).
        self._drop_sources: list = []
        # Static fault totals adopted from merged snapshots (multi-process
        # clusters sum their shards' counters into one collector).
        self._extra_fault_counts: dict[str, int] = {}

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def set_honest(self, honest_ids: Iterable[int]) -> None:
        """Declare which processor ids are honest (never corrupted)."""
        self.honest_ids = set(honest_ids)

    def attach_network(self, network) -> None:
        """Subscribe to the network's send events."""
        network.send_listeners.append(self.on_send)

    def attach_transport(self, transport) -> None:
        """Subscribe to a live transport's send events.

        Transports expose the same ``send_listeners`` surface as the
        simulated network, so this simply delegates to
        :meth:`attach_network` — live (wall-clock) runs record through the
        identical hot path, with times being whatever the run's
        :class:`~repro.runtime.base.Clock` reports (monotonic seconds since
        cluster start for live clusters, virtual seconds under replay).

        Transports that can lose frames (``TcpTransport``, directly or
        under a chaos wrapper) are also registered as *drop sources*: their
        ``frames_dropped`` counters fold into :attr:`fault_counts`, so a
        writer that died holding unsent frames always leaves a trace in the
        run's :class:`~repro.metrics.summary.RunMetrics`.
        """
        self.attach_network(transport)
        source = transport
        if not hasattr(source, "frames_dropped"):
            source = getattr(transport, "inner", None)
        if source is not None and hasattr(source, "frames_dropped"):
            self._drop_sources.append(source)

    def attach_fault_counters(self, counters) -> None:
        """Adopt a chaos layer's :class:`~repro.runtime.chaos.FaultCounters`.

        The counters object is shared live state (the transport and the
        downtime trackers keep bumping it); :attr:`fault_counts` snapshots
        it on access.
        """
        self._fault_counters = counters

    def add_fault_counts(self, counts: dict[str, int]) -> None:
        """Fold static fault totals into this collector (merge path).

        Unlike :meth:`attach_fault_counters` — live shared state, snapshotted
        on access — these are fixed numbers: the already-final totals of a
        finished shard, summed in when a multi-process cluster merges its
        children's snapshots.
        """
        for name, count in counts.items():
            self._extra_fault_counts[name] = (
                self._extra_fault_counts.get(name, 0) + count
            )

    @property
    def fault_counts(self) -> dict[str, int]:
        """Injected-fault totals by name (empty outside chaotic/TCP runs).

        The union of the chaos layer's live counters, any statically merged
        totals (:meth:`add_fault_counts`) and the ``frames_dropped``
        counters of attached drop-source transports.
        """
        counts = dict(self._extra_fault_counts)
        if self._fault_counters is not None:
            for name, count in self._fault_counters.as_dict().items():
                counts[name] = counts.get(name, 0) + count
        if self._drop_sources:
            counts["frames_dropped"] = counts.get("frames_dropped", 0) + sum(
                source.frames_dropped for source in self._drop_sources
            )
        return counts

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def on_send(self, envelope: Envelope) -> None:
        """Record a sent message if the sender is honest and it is not a self-message.

        The hot path of the observation layer: a few primitive column
        appends, no record-object allocation.
        """
        sender = envelope.sender
        if sender not in self.honest_ids or sender == envelope.recipient:
            return
        kind = type(envelope.payload).__name__
        kind_id = self._kind_ids.get(kind)
        if kind_id is None:
            kind_id = len(self._kind_names)
            self._kind_ids[kind] = kind_id
            self._kind_names.append(kind)
        self._message_times.append(envelope.send_time)
        self._message_senders.append(sender)
        self._message_recipients.append(envelope.recipient)
        self._message_kind_ids.append(kind_id)
        digest = envelope.payload_digest
        if digest is not None:
            self._payload_digests.add(digest)

    def record_decision(self, time: float, view: int, leader: int) -> None:
        """Record that ``leader`` produced a QC for its own view ``view``."""
        honest = leader in self.honest_ids
        index = len(self._decision_times)
        self._decision_times.append(time)
        self._decision_views.append(view)
        self._decision_leaders.append(leader)
        self._decision_honest.append(honest)
        if honest:
            times = self._honest_decision_times
            if times and time < times[-1]:
                # Out-of-order insertion only happens for hand-fed
                # collectors; simulator-driven decisions arrive in time
                # order and take the append path.
                position = bisect.bisect_right(times, time)
                times.insert(position, time)
                self._honest_decision_indices.insert(position, index)
            else:
                times.append(time)
                self._honest_decision_indices.append(index)

    def record_qc(self) -> None:
        """Count one QC formation (any leader)."""
        self.qc_count += 1

    def record_view_entry(self, pid: int, view: int, time: float) -> None:
        """Record that processor ``pid`` entered ``view`` at ``time``."""
        self.view_entries.setdefault(pid, []).append((time, view))

    def record_commit(self, pid: int, view: int, block_id: str, time: float) -> None:
        """Record a block commit at one replica."""
        self._commit_times.append(time)
        self._commit_pids.append(pid)
        self._commit_views.append(view)
        self._commit_block_ids.append(block_id)

    def record_request_submitted(self, pid: int) -> None:
        """Count one client request accepted by a gateway at ``pid``."""
        self.requests_submitted += 1

    def record_request_rejected(self, pid: int) -> None:
        """Count one client request refused by backpressure at ``pid``."""
        self.requests_rejected += 1

    def record_request_applied(
        self, pid: int, submit_time: float, apply_time: float
    ) -> None:
        """Record the end-to-end completion of one client request.

        ``pid`` is the replica whose gateway owned the request; the latency
        is ``apply_time - submit_time`` — submission at the client to first
        application on the owner's copy of the state machine.
        """
        self._request_submit_times.append(submit_time)
        self._request_apply_times.append(apply_time)
        self._request_pids.append(pid)

    def record_epoch_sync(self, pid: int, epoch: int, time: float) -> None:
        """Record that ``pid`` participated in a heavy (all-to-all) epoch synchronisation."""
        self.epoch_syncs.append((time, pid, epoch))

    # ------------------------------------------------------------------
    # Lazy record materialisation (the pre-columnar public attributes)
    # ------------------------------------------------------------------
    @property
    def messages(self) -> list[MessageRecord]:
        """All honest-sender message records, in send order (fresh list)."""
        kind_names = self._kind_names
        return [
            MessageRecord(time=time, sender=sender, recipient=recipient,
                          kind=kind_names[kind_id])
            for time, sender, recipient, kind_id in zip(
                self._message_times,
                self._message_senders,
                self._message_recipients,
                self._message_kind_ids,
            )
        ]

    def _decision_record(self, index: int) -> DecisionRecord:
        return DecisionRecord(
            time=self._decision_times[index],
            view=self._decision_views[index],
            leader=self._decision_leaders[index],
            leader_honest=bool(self._decision_honest[index]),
        )

    @property
    def decisions(self) -> list[DecisionRecord]:
        """All decision records, in recording order (fresh list)."""
        return [self._decision_record(i) for i in range(len(self._decision_times))]

    @property
    def commits(self) -> list[CommitRecord]:
        """All commit records, in recording order (fresh list)."""
        return [
            CommitRecord(time=time, pid=pid, view=view, block_id=block_id)
            for time, pid, view, block_id in zip(
                self._commit_times,
                self._commit_pids,
                self._commit_views,
                self._commit_block_ids,
            )
        ]

    # ------------------------------------------------------------------
    # Queries: messages
    # ------------------------------------------------------------------
    def messages_between(self, start: float, end: float) -> int:
        """Number of honest messages sent in the half-open interval ``[start, end)``.

        ``end`` may be ``float('inf')``.
        """
        lo = bisect.bisect_left(self._message_times, start)
        hi = bisect.bisect_left(self._message_times, end)
        return hi - lo

    def message_kinds_between(self, start: float, end: float) -> dict[str, int]:
        """Honest message counts per payload type in ``[start, end)``.

        Bisects the sorted send-time column to the interval and counts kind
        tokens only inside it, instead of scanning every record per call.
        """
        lo = bisect.bisect_left(self._message_times, start)
        hi = bisect.bisect_left(self._message_times, end)
        id_counts = [0] * len(self._kind_names)
        for kind_id in self._message_kind_ids[lo:hi]:
            id_counts[kind_id] += 1
        return {
            name: count
            for name, count in zip(self._kind_names, id_counts)
            if count
        }

    @property
    def total_honest_messages(self) -> int:
        """Total messages sent by honest processors during the run."""
        return len(self._message_times)

    @property
    def distinct_payloads_sent(self) -> int:
        """Distinct message contents honest processors sent (0 when the
        network has no crypto backend attached, so no payload digests)."""
        return len(self._payload_digests)

    @property
    def broadcast_amplification(self) -> Optional[float]:
        """Mean envelopes per distinct payload — how much of the message
        count is the same content fanned out (``None`` without digests)."""
        if not self._payload_digests:
            return None
        return len(self._message_times) / len(self._payload_digests)

    # ------------------------------------------------------------------
    # Queries: decisions
    # ------------------------------------------------------------------
    def honest_decisions(self) -> list[DecisionRecord]:
        """QCs produced by honest leaders, in time order."""
        return [self._decision_record(i) for i in self._honest_decision_indices]

    def first_honest_decision_after(self, time: float) -> Optional[DecisionRecord]:
        """The paper's ``t*_T``: the first honest-leader QC strictly after ``time``.

        One bisect on the sorted honest-decision-times column (the
        pre-columnar collector scanned every decision per call).
        """
        position = bisect.bisect_right(self._honest_decision_times, time)
        if position == len(self._honest_decision_times):
            return None
        return self._decision_record(self._honest_decision_indices[position])

    def communication_after(self, time: float) -> Optional[int]:
        """The paper's ``W_T``: honest messages between ``time`` and ``t*_time``.

        Returns ``None`` when no honest-leader decision follows ``time`` in
        the run (``t*_T`` would be infinite).
        """
        position = bisect.bisect_right(self._honest_decision_times, time)
        if position == len(self._honest_decision_times):
            return None
        return self.messages_between(time, self._honest_decision_times[position])

    def latency_after(self, time: float) -> Optional[float]:
        """``t*_T - T``, or ``None`` if no honest-leader decision follows ``time``."""
        position = bisect.bisect_right(self._honest_decision_times, time)
        if position == len(self._honest_decision_times):
            return None
        return self._honest_decision_times[position] - time

    def honest_decision_times_after(self, after: float) -> list[float]:
        """Sorted honest-leader decision times at or after ``after``."""
        position = bisect.bisect_left(self._honest_decision_times, after)
        return list(self._honest_decision_times[position:])

    def decision_gaps(self, after: float = 0.0) -> list[float]:
        """Gaps between consecutive honest-leader decisions occurring after ``after``."""
        times = self.honest_decision_times_after(after)
        return [later - earlier for earlier, later in zip(times, times[1:])]

    def messages_per_gap(self, after: float = 0.0) -> list[int]:
        """Honest message counts between consecutive honest-leader decisions after ``after``.

        One bisect per decision boundary on the sorted send-time column; the
        pre-columnar implementation paid O(decisions × messages).
        """
        times = self.honest_decision_times_after(after)
        message_times = self._message_times
        boundaries = [bisect.bisect_left(message_times, time) for time in times]
        return [later - earlier for earlier, later in zip(boundaries, boundaries[1:])]

    # ------------------------------------------------------------------
    # Queries: client requests
    # ------------------------------------------------------------------
    @property
    def requests_applied(self) -> int:
        """Client requests completed (applied on their owner's replica)."""
        return len(self._request_apply_times)

    def request_latencies(self, after: float = 0.0) -> list[float]:
        """End-to-end latencies of requests applied at or after ``after``.

        Bisects the sorted apply-time column (mirroring
        :meth:`latency_after`'s columnar style), so warm-up exclusion costs
        one bisect, not a scan.
        """
        lo = bisect.bisect_left(self._request_apply_times, after)
        return [
            apply_time - submit_time
            for submit_time, apply_time in zip(
                self._request_submit_times[lo:], self._request_apply_times[lo:]
            )
        ]

    def request_latency_percentile(
        self, quantile: float, after: float = 0.0
    ) -> Optional[float]:
        """The ``quantile``-th request latency (0.5 = p50), or ``None`` if empty."""
        latencies = sorted(self.request_latencies(after))
        if not latencies:
            return None
        index = min(len(latencies) - 1, int(quantile * len(latencies)))
        return latencies[index]

    def requests_applied_between(self, start: float, end: float) -> int:
        """Requests applied in ``[start, end)`` — the throughput numerator."""
        lo = bisect.bisect_left(self._request_apply_times, start)
        hi = bisect.bisect_left(self._request_apply_times, end)
        return hi - lo

    # ------------------------------------------------------------------
    # Queries: views and epochs
    # ------------------------------------------------------------------
    def max_view_entered(self, pid: int) -> int:
        """The highest view ``pid`` has entered (-1 if none recorded)."""
        entries = self.view_entries.get(pid)
        if not entries:
            return -1
        return max(view for _, view in entries)

    def epoch_syncs_after(self, time: float) -> int:
        """Number of distinct epochs for which any honest processor did a heavy sync after ``time``."""
        return len({epoch for t, pid, epoch in self.epoch_syncs if t >= time and pid in self.honest_ids})

    def commits_for(self, pid: int) -> list[CommitRecord]:
        """All commits observed at processor ``pid``."""
        return [
            CommitRecord(
                time=self._commit_times[i],
                pid=pid,
                view=self._commit_views[i],
                block_id=self._commit_block_ids[i],
            )
            for i in range(len(self._commit_times))
            if self._commit_pids[i] == pid
        ]

    # ------------------------------------------------------------------
    # Cross-process snapshot / merge
    # ------------------------------------------------------------------
    def state(self) -> dict:
        """Picklable snapshot of everything this collector recorded.

        The shard half of the multi-process metrics story: each node process
        of a :class:`~repro.runner.process_cluster.ProcessCluster` ships its
        collector's state over the control channel at shutdown, and the
        coordinator rebuilds one cluster-wide collector with
        :func:`merge_metrics_states`.  ``array`` columns pickle natively;
        live references (fault counters, drop-source transports) are
        snapshotted into plain numbers.
        """
        return {
            "honest_ids": sorted(self.honest_ids),
            "message_times": self._message_times,
            "message_senders": self._message_senders,
            "message_recipients": self._message_recipients,
            "message_kind_ids": self._message_kind_ids,
            "kind_names": list(self._kind_names),
            "decision_times": self._decision_times,
            "decision_views": self._decision_views,
            "decision_leaders": self._decision_leaders,
            "commit_times": self._commit_times,
            "commit_pids": self._commit_pids,
            "commit_views": self._commit_views,
            "commit_block_ids": list(self._commit_block_ids),
            "request_submit_times": self._request_submit_times,
            "request_apply_times": self._request_apply_times,
            "request_pids": self._request_pids,
            "requests_submitted": self.requests_submitted,
            "requests_rejected": self.requests_rejected,
            "view_entries": {pid: list(entries) for pid, entries in self.view_entries.items()},
            "epoch_syncs": list(self.epoch_syncs),
            "qc_count": self.qc_count,
            "payload_digests": set(self._payload_digests),
            "fault_counts": self.fault_counts,
        }


def merge_metrics_states(states: Iterable[dict]) -> "MetricsCollector":
    """Rebuild one :class:`MetricsCollector` from shard :meth:`~MetricsCollector.state` snapshots.

    Every time-keyed stream (messages, decisions, commits, epoch syncs) is
    merge-sorted onto one timeline — the shards of a multi-process cluster
    share a monotonic clock origin, so their timestamps are directly
    comparable — and the re-interleaved rows are replayed through the
    ordinary recording methods.  The sorted-column invariants (bisectable
    message times, the honest-decision index) therefore hold on the merged
    collector exactly as they do on a single-process one, and every query
    answers cluster-wide.
    """
    import heapq

    states = list(states)
    merged = MetricsCollector()
    merged.set_honest(set().union(*(set(s["honest_ids"]) for s in states)) if states else set())

    def message_rows(s: dict):
        kind_names = s["kind_names"]
        return (
            (time, sender, recipient, kind_names[kind_id])
            for time, sender, recipient, kind_id in zip(
                s["message_times"], s["message_senders"],
                s["message_recipients"], s["message_kind_ids"],
            )
        )

    for time, sender, recipient, kind in heapq.merge(
        *(message_rows(s) for s in states), key=lambda row: row[0]
    ):
        kind_id = merged._kind_ids.get(kind)
        if kind_id is None:
            kind_id = len(merged._kind_names)
            merged._kind_ids[kind] = kind_id
            merged._kind_names.append(kind)
        merged._message_times.append(time)
        merged._message_senders.append(sender)
        merged._message_recipients.append(recipient)
        merged._message_kind_ids.append(kind_id)

    decisions = sorted(
        (time, view, leader)
        for s in states
        for time, view, leader in zip(
            s["decision_times"], s["decision_views"], s["decision_leaders"]
        )
    )
    for time, view, leader in decisions:
        merged.record_decision(time, view, leader)

    commits = sorted(
        (time, pid, view, block_id)
        for s in states
        for time, pid, view, block_id in zip(
            s["commit_times"], s["commit_pids"], s["commit_views"], s["commit_block_ids"]
        )
    )
    for time, pid, view, block_id in commits:
        merged.record_commit(pid, view, block_id, time)

    # Sorted by apply time so the merged apply-time column stays bisectable
    # (shards share one clock origin, exactly like the commit columns).
    requests = sorted(
        (apply_time, submit_time, pid)
        for s in states
        for submit_time, apply_time, pid in zip(
            s.get("request_submit_times", ()),
            s.get("request_apply_times", ()),
            s.get("request_pids", ()),
        )
    )
    for apply_time, submit_time, pid in requests:
        merged.record_request_applied(pid, submit_time, apply_time)

    for s in states:
        merged.requests_submitted += s.get("requests_submitted", 0)
        merged.requests_rejected += s.get("requests_rejected", 0)
        for pid, entries in s["view_entries"].items():
            merged.view_entries.setdefault(pid, []).extend(entries)
        merged.qc_count += s["qc_count"]
        merged._payload_digests |= s["payload_digests"]
        merged.add_fault_counts(s["fault_counts"])
    for entries in merged.view_entries.values():
        entries.sort()
    merged.epoch_syncs = sorted(
        (time, pid, epoch) for s in states for time, pid, epoch in s["epoch_syncs"]
    )
    return merged
