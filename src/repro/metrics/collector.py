"""Run-time metrics collection.

The collector is attached to the network (to observe sends) and is called by
replicas when QCs form, views are entered, blocks commit, or heavy epoch
synchronisations happen.  It never influences the protocols — it only
observes.

The paper's complexity measures (Section 2):

* ``W_T`` — the number of messages sent by correct processors between time
  ``T >= GST`` and ``t*_T``, the first time after ``T`` at which an honest
  leader produces a QC for its view.
* worst-case communication complexity — ``W_{GST + Delta}``,
* eventual worst-case communication complexity — ``limsup_{T -> inf} W_T``,
* worst-case latency — ``t*_GST - GST``,
* eventual worst-case latency — ``limsup_{T -> inf} (t*_T - T)``.

In a finite run we approximate the limsup by the maximum over all decision
gaps after a configurable warm-up.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.sim.network import Envelope


@dataclass(frozen=True, slots=True)
class DecisionRecord:
    """One QC produced by a leader for its own view."""

    time: float
    view: int
    leader: int
    leader_honest: bool


@dataclass(frozen=True, slots=True)
class MessageRecord:
    """One message sent by an honest processor (self-deliveries excluded)."""

    time: float
    sender: int
    recipient: int
    kind: str


@dataclass(frozen=True, slots=True)
class CommitRecord:
    """One block commit observed at one replica."""

    time: float
    pid: int
    view: int
    block_id: str


class MetricsCollector:
    """Collects message, decision, view-entry, commit and epoch-sync records."""

    def __init__(self) -> None:
        self.honest_ids: set[int] = set()
        self.messages: list[MessageRecord] = []
        self._message_times: list[float] = []
        self.decisions: list[DecisionRecord] = []
        self.commits: list[CommitRecord] = []
        self.view_entries: dict[int, list[tuple[float, int]]] = {}
        self.epoch_syncs: list[tuple[float, int, int]] = []  # (time, pid, epoch)
        self.qc_count = 0
        # Distinct payload contents honest processors put on the wire, from
        # Envelope.payload_digest (networks with a crypto backend attached).
        self._payload_digests: set[str] = set()

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def set_honest(self, honest_ids: Iterable[int]) -> None:
        """Declare which processor ids are honest (never corrupted)."""
        self.honest_ids = set(honest_ids)

    def attach_network(self, network) -> None:
        """Subscribe to the network's send events."""
        network.send_listeners.append(self.on_send)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def on_send(self, envelope: Envelope) -> None:
        """Record a sent message if the sender is honest and it is not a self-message."""
        if envelope.sender not in self.honest_ids:
            return
        if envelope.is_self_message:
            return
        record = MessageRecord(
            time=envelope.send_time,
            sender=envelope.sender,
            recipient=envelope.recipient,
            kind=type(envelope.payload).__name__,
        )
        self.messages.append(record)
        self._message_times.append(envelope.send_time)
        if envelope.payload_digest is not None:
            self._payload_digests.add(envelope.payload_digest)

    def record_decision(self, time: float, view: int, leader: int) -> None:
        """Record that ``leader`` produced a QC for its own view ``view``."""
        self.decisions.append(
            DecisionRecord(
                time=time, view=view, leader=leader, leader_honest=leader in self.honest_ids
            )
        )

    def record_qc(self) -> None:
        """Count one QC formation (any leader)."""
        self.qc_count += 1

    def record_view_entry(self, pid: int, view: int, time: float) -> None:
        """Record that processor ``pid`` entered ``view`` at ``time``."""
        self.view_entries.setdefault(pid, []).append((time, view))

    def record_commit(self, pid: int, view: int, block_id: str, time: float) -> None:
        """Record a block commit at one replica."""
        self.commits.append(CommitRecord(time=time, pid=pid, view=view, block_id=block_id))

    def record_epoch_sync(self, pid: int, epoch: int, time: float) -> None:
        """Record that ``pid`` participated in a heavy (all-to-all) epoch synchronisation."""
        self.epoch_syncs.append((time, pid, epoch))

    # ------------------------------------------------------------------
    # Queries: messages
    # ------------------------------------------------------------------
    def messages_between(self, start: float, end: float) -> int:
        """Number of honest messages sent in the half-open interval ``[start, end)``.

        ``end`` may be ``float('inf')``.
        """
        lo = bisect.bisect_left(self._message_times, start)
        hi = bisect.bisect_left(self._message_times, end)
        return hi - lo

    def message_kinds_between(self, start: float, end: float) -> dict[str, int]:
        """Honest message counts per payload type in ``[start, end)``."""
        counts: dict[str, int] = {}
        for record in self.messages:
            if start <= record.time < end:
                counts[record.kind] = counts.get(record.kind, 0) + 1
        return counts

    @property
    def total_honest_messages(self) -> int:
        """Total messages sent by honest processors during the run."""
        return len(self.messages)

    @property
    def distinct_payloads_sent(self) -> int:
        """Distinct message contents honest processors sent (0 when the
        network has no crypto backend attached, so no payload digests)."""
        return len(self._payload_digests)

    @property
    def broadcast_amplification(self) -> Optional[float]:
        """Mean envelopes per distinct payload — how much of the message
        count is the same content fanned out (``None`` without digests)."""
        if not self._payload_digests:
            return None
        return len(self.messages) / len(self._payload_digests)

    # ------------------------------------------------------------------
    # Queries: decisions
    # ------------------------------------------------------------------
    def honest_decisions(self) -> list[DecisionRecord]:
        """QCs produced by honest leaders, in time order."""
        return [d for d in self.decisions if d.leader_honest]

    def first_honest_decision_after(self, time: float) -> Optional[DecisionRecord]:
        """The paper's ``t*_T``: the first honest-leader QC strictly after ``time``."""
        for decision in self.decisions:
            if decision.leader_honest and decision.time > time:
                return decision
        return None

    def communication_after(self, time: float) -> Optional[int]:
        """The paper's ``W_T``: honest messages between ``time`` and ``t*_time``.

        Returns ``None`` when no honest-leader decision follows ``time`` in
        the run (``t*_T`` would be infinite).
        """
        decision = self.first_honest_decision_after(time)
        if decision is None:
            return None
        return self.messages_between(time, decision.time)

    def latency_after(self, time: float) -> Optional[float]:
        """``t*_T - T``, or ``None`` if no honest-leader decision follows ``time``."""
        decision = self.first_honest_decision_after(time)
        if decision is None:
            return None
        return decision.time - time

    def decision_gaps(self, after: float = 0.0) -> list[float]:
        """Gaps between consecutive honest-leader decisions occurring after ``after``."""
        times = [d.time for d in self.honest_decisions() if d.time >= after]
        return [later - earlier for earlier, later in zip(times, times[1:])]

    def messages_per_gap(self, after: float = 0.0) -> list[int]:
        """Honest message counts between consecutive honest-leader decisions after ``after``."""
        times = [d.time for d in self.honest_decisions() if d.time >= after]
        return [
            self.messages_between(earlier, later) for earlier, later in zip(times, times[1:])
        ]

    # ------------------------------------------------------------------
    # Queries: views and epochs
    # ------------------------------------------------------------------
    def max_view_entered(self, pid: int) -> int:
        """The highest view ``pid`` has entered (-1 if none recorded)."""
        entries = self.view_entries.get(pid)
        if not entries:
            return -1
        return max(view for _, view in entries)

    def epoch_syncs_after(self, time: float) -> int:
        """Number of distinct epochs for which any honest processor did a heavy sync after ``time``."""
        return len({epoch for t, pid, epoch in self.epoch_syncs if t >= time and pid in self.honest_ids})

    def commits_for(self, pid: int) -> list[CommitRecord]:
        """All commits observed at processor ``pid``."""
        return [c for c in self.commits if c.pid == pid]
