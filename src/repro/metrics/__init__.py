"""Measurement of the quantities the paper's Table 1 is stated in.

The collector records, with virtual timestamps, every message sent by an
*honest* processor (the paper's complexity measures only count messages of
correct processors), every QC produced, every view entry, every commit, and
every heavy epoch synchronisation.  The summary helpers then compute the
paper's four measures: worst-case communication / latency after GST, and
their "eventual" (steady-state) counterparts.
"""

from repro.metrics.collector import DecisionRecord, MetricsCollector
from repro.metrics.summary import ComplexitySummary, summarize_run

__all__ = [
    "ComplexitySummary",
    "DecisionRecord",
    "MetricsCollector",
    "summarize_run",
]
