"""Measurement of the quantities the paper's Table 1 is stated in.

The collector records, with virtual timestamps, every message sent by an
*honest* processor (the paper's complexity measures only count messages of
correct processors), every QC produced, every view entry, every commit, and
every heavy epoch synchronisation.  The summary helpers then compute the
paper's four measures: worst-case communication / latency after GST, and
their "eventual" (steady-state) counterparts.
"""

from repro.metrics.collector import DecisionRecord, MetricsCollector
from repro.metrics.summary import (
    ComplexitySummary,
    RunMetrics,
    extract_run_metrics,
    summarize_run,
)

__all__ = [
    "ComplexitySummary",
    "DecisionRecord",
    "MetricsCollector",
    "RunMetrics",
    "extract_run_metrics",
    "summarize_run",
]
