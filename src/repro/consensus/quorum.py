"""Quorum certificates and vote aggregation.

A Quorum Certificate (QC) for a view ``v`` is a threshold signature by
``2f + 1`` distinct processors over ``(view, block_id)``.  Producing a QC is
what the paper calls "the successful completion of a view": the pacemakers
treat QC arrival as the signal to advance or bump clocks, and the complexity
measures are defined in terms of the first post-GST QC produced by an honest
leader.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.crypto.threshold import PartialSignature, ThresholdScheme, ThresholdSignature
from repro.errors import ThresholdError


@dataclass(frozen=True, slots=True)
class QuorumCertificate:
    """Certificate that view ``view`` completed on block ``block_id``."""

    view: int
    block_id: str
    aggregate: ThresholdSignature

    @property
    def signers(self) -> frozenset[int]:
        """Processors whose votes were aggregated."""
        return self.aggregate.signers

    def message(self) -> tuple:
        """The message the aggregate signature covers."""
        return ("qc", self.view, self.block_id)

    def __repr__(self) -> str:
        return f"QC(view={self.view}, block={self.block_id[:8]}…, signers={len(self.signers)})"


class VoteAggregator:
    """Collects votes per ``(view, block_id)`` and forms a QC at quorum.

    Each leader owns one aggregator.  Votes from duplicate signers are
    ignored; the QC is formed at most once per (view, block).
    """

    def __init__(self, scheme: ThresholdScheme, quorum_size: int) -> None:
        self.scheme = scheme
        self.quorum_size = quorum_size
        self._partials: dict[tuple[int, str], dict[int, PartialSignature]] = {}
        self._formed: set[tuple[int, str]] = set()
        # Message digest per (view, block): the leader digests the vote
        # message once per quorum it collects, not once per arriving vote.
        self._message_digests: dict[tuple[int, str], str] = {}

    def add_vote(
        self, view: int, block_id: str, partial: PartialSignature
    ) -> Optional[QuorumCertificate]:
        """Record a vote; return a freshly formed QC if this vote completed a quorum."""
        key = (view, block_id)
        if key in self._formed:
            return None
        message = ("qc", view, block_id)
        message_digest = self._message_digests.get(key)
        if message_digest is None:
            message_digest = self._message_digests[key] = self.scheme.backend.digest(message)
        if not self.scheme.verify_partial(partial, message, message_digest=message_digest):
            return None
        bucket = self._partials.setdefault(key, {})
        bucket[partial.signer] = partial
        if len(bucket) < self.quorum_size:
            return None
        try:
            aggregate = self.scheme.combine(list(bucket.values()), self.quorum_size, message)
        except ThresholdError:
            return None
        self._formed.add(key)
        return QuorumCertificate(view=view, block_id=block_id, aggregate=aggregate)

    def votes_for(self, view: int, block_id: str) -> int:
        """How many distinct votes have been collected for (view, block)."""
        return len(self._partials.get((view, block_id), {}))
