"""Blocks and the block tree.

A block is proposed by the leader of a view and extends a parent block via
the parent's QC.  The block tree tracks every block a replica has seen,
answers ancestry queries, and exposes the chain from genesis to any block —
which is what the 3-chain commit rule and the safety tests need.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Iterable, Optional

from repro.crypto.backend import get_default_backend
from repro.errors import ConsensusError

#: Sentinel id shared by the genesis block and the ``parent_id`` meaning "no
#: parent".  It is a fixed string — never derived from a crypto backend — so
#: the module-level :data:`GENESIS` block stays valid across runs even when
#: scenarios install different backends (a cached backend-minted id could
#: collide with a later run's token space).
GENESIS_ID = "genesis"


@dataclass(frozen=True)
class Block:
    """A proposal for one view.

    Attributes
    ----------
    view:
        The view in which the block was proposed.
    parent_id:
        Hash of the parent block (the block certified by ``justify_view``).
    proposer:
        Processor id of the proposing leader.
    payload:
        Opaque batch of commands (a tuple of command ids from the mempool).
    justify_view:
        View of the QC embedded in the proposal (the parent's QC view).
    """

    view: int
    parent_id: str
    proposer: int
    payload: tuple = ()
    justify_view: int = -1

    @cached_property
    def block_id(self) -> str:
        """Content-derived identifier of the block (digested once, then cached).

        Uses the process-default :class:`~repro.crypto.backend.CryptoBackend`
        (``build_scenario`` installs the run's backend before any block is
        created).  Genesis (``view < 0``) gets the fixed :data:`GENESIS_ID`
        instead, because the module-level :data:`GENESIS` object outlives any
        single run's backend.

        ``cached_property`` needs an instance ``__dict__``, which is why
        ``Block`` is the one protocol dataclass without ``slots=True`` —
        blocks are per-view, not per-message, so they do not dominate
        allocation the way wire messages do.
        """
        if self.view < 0:
            return GENESIS_ID
        return get_default_backend().digest(
            "block", self.view, self.parent_id, self.proposer, self.payload
        )

    def __repr__(self) -> str:
        return (
            f"Block(view={self.view}, id={self.block_id[:8]}…, parent={self.parent_id[:8]}…, "
            f"proposer={self.proposer})"
        )


# The genesis block: view -1, no parent, no proposer.  Its id and parent_id
# are both the GENESIS_ID sentinel; BlockTree.parent special-cases it.
GENESIS = Block(view=-1, parent_id=GENESIS_ID, proposer=-1, payload=(), justify_view=-1)


class BlockTree:
    """Per-replica store of all known blocks, rooted at genesis."""

    def __init__(self) -> None:
        self._blocks: dict[str, Block] = {GENESIS.block_id: GENESIS}

    # ------------------------------------------------------------------
    # Insertion and lookup
    # ------------------------------------------------------------------
    def add(self, block: Block) -> None:
        """Insert a block.  The parent must already be known (or be genesis)."""
        if block.block_id in self._blocks:
            return
        if block.parent_id not in self._blocks and block.parent_id != GENESIS_ID:
            raise ConsensusError(
                f"block {block.block_id[:8]} references unknown parent {block.parent_id[:8]}"
            )
        self._blocks[block.block_id] = block

    def __contains__(self, block_id: str) -> bool:
        return block_id in self._blocks

    def __len__(self) -> int:
        return len(self._blocks)

    def get(self, block_id: str) -> Optional[Block]:
        """The block with the given id, or ``None``."""
        return self._blocks.get(block_id)

    def require(self, block_id: str) -> Block:
        """The block with the given id; raises if unknown."""
        block = self._blocks.get(block_id)
        if block is None:
            raise ConsensusError(f"unknown block {block_id[:8]}")
        return block

    def blocks(self) -> Iterable[Block]:
        """All known blocks (unordered)."""
        return self._blocks.values()

    # ------------------------------------------------------------------
    # Ancestry
    # ------------------------------------------------------------------
    def parent(self, block: Block) -> Optional[Block]:
        """The parent of ``block``, or ``None`` for genesis."""
        if block.block_id == GENESIS.block_id:
            return None
        return self._blocks.get(block.parent_id)

    def chain_to_genesis(self, block: Block) -> list[Block]:
        """The chain ``[block, parent, ..., genesis]``."""
        chain = [block]
        current = block
        while True:
            parent = self.parent(current)
            if parent is None:
                break
            chain.append(parent)
            current = parent
        return chain

    def is_ancestor(self, ancestor_id: str, descendant: Block) -> bool:
        """Whether the block with ``ancestor_id`` is on ``descendant``'s chain.

        Walks upwards with early exit: the walk stops as soon as the ancestor
        is found or the chain drops below the ancestor's view.
        """
        ancestor = self._blocks.get(ancestor_id)
        floor_view = ancestor.view if ancestor is not None else None
        current: Optional[Block] = descendant
        while current is not None:
            if current.block_id == ancestor_id:
                return True
            if floor_view is not None and current.view < floor_view:
                return False
            current = self.parent(current)
        return False

    def extends(self, block: Block, other_id: str) -> bool:
        """Whether ``block`` extends (is a descendant of, or equals) ``other_id``."""
        return self.is_ancestor(other_id, block)
