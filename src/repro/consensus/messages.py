"""Message types exchanged by the consensus substrate.

All consensus messages derive from :class:`ConsensusMessage` so the replica
can route them to its engine (pacemaker messages derive from
``PacemakerMessage`` instead; see :mod:`repro.pacemakers.base`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.consensus.blocks import Block
from repro.consensus.quorum import QuorumCertificate
from repro.crypto.threshold import PartialSignature


@dataclass(frozen=True, slots=True)
class ConsensusMessage:
    """Base class for all messages handled by the consensus engine."""

    view: int


@dataclass(frozen=True, slots=True)
class Proposal(ConsensusMessage):
    """Leader's proposal for a view: a block plus the QC justifying it."""

    block: Block
    justify: Optional[QuorumCertificate]


@dataclass(frozen=True, slots=True)
class Vote(ConsensusMessage):
    """A replica's vote (partial threshold signature) on a proposed block."""

    block_id: str
    partial: PartialSignature


@dataclass(frozen=True, slots=True)
class QCAnnounce(ConsensusMessage):
    """Leader's broadcast of a freshly formed QC for its view.

    Carries the certified block as well so that replicas that missed the
    original proposal can still extend the chain.
    """

    qc: QuorumCertificate
    block: Block


@dataclass(frozen=True, slots=True)
class NewView(ConsensusMessage):
    """Status message carrying a replica's highest QC to the new leader.

    Sent when a replica enters a view; lets the new leader learn the highest
    certified block so its proposal extends it.
    """

    high_qc: Optional[QuorumCertificate]
