"""The replica: one simulated processor running consensus plus a pacemaker.

A :class:`Replica` composes

* the chained-HotStuff engine (:mod:`repro.consensus.engine`),
* a pluggable pacemaker (any :class:`repro.pacemakers.base.Pacemaker`),
* the replica's signing key and the shared threshold scheme,
* a :class:`~repro.adversary.behaviours.Behaviour` describing deviations
  (honest by default), and
* the metrics collector observing the run.

Message routing is type-based — :class:`~repro.consensus.messages.ConsensusMessage`
instances go to the engine,
:class:`~repro.statemachine.messages.ClientMessage` instances to the
client path (mempool ingest), everything else to the pacemaker — and runs
through a per-replica dispatch table keyed on the concrete payload class:
the ``isinstance`` check happens once per *type*, not once per delivery
(the per-delivery form was a measurable share of large-``n`` runs).

A replica is runtime-agnostic: it talks only to the
:class:`~repro.runtime.base.Runtime` its context carries, so the same
object runs under the discrete-event simulator or on an asyncio loop over
a real transport.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.adversary.behaviours import Behaviour, HonestBehaviour
from repro.config import ProtocolConfig
from repro.errors import ConfigurationError
from repro.consensus.blocks import Block, BlockTree
from repro.consensus.engine import ChainedHotStuff, ConsensusEngine
from repro.consensus.ledger import Ledger
from repro.consensus.mempool import Mempool
from repro.consensus.messages import ConsensusMessage
from repro.consensus.quorum import QuorumCertificate
from repro.consensus.safety import SafetyRules
from repro.crypto.signatures import PKI, SigningKey
from repro.crypto.threshold import ThresholdScheme
from repro.metrics.collector import MetricsCollector
from repro.sim.process import Process
from repro.statemachine.messages import ClientMessage, CommandForward


class Replica(Process):
    """One processor: consensus engine + pacemaker + keys + ledger."""

    def __init__(
        self,
        pid: int,
        ctx: Any,
        config: ProtocolConfig,
        pki: PKI,
        signing_key: SigningKey,
        scheme: ThresholdScheme,
        pacemaker_factory: Callable[["Replica"], Any],
        engine_factory: Optional[Callable[["Replica"], ConsensusEngine]] = None,
        metrics: Optional[MetricsCollector] = None,
        behaviour: Optional[Behaviour] = None,
        mempool: Optional[Mempool] = None,
    ) -> None:
        super().__init__(pid, ctx)
        self.config = config
        self.pki = pki
        self.signing_key = signing_key
        self.scheme = scheme
        self.metrics = metrics if metrics is not None else MetricsCollector()
        self.behaviour = behaviour if behaviour is not None else HonestBehaviour()
        self.byzantine = self.behaviour.is_byzantine
        self.tree = BlockTree()
        self.safety = SafetyRules(self.tree)
        self.ledger = Ledger(pid)
        self.mempool = mempool if mempool is not None else Mempool(pid)
        self.engine = (engine_factory or ChainedHotStuff)(self)
        self.pacemaker = pacemaker_factory(self)
        # Client-workload attachments (set by repro.runner.workload when a
        # ScenarioConfig carries a workload; None for pure-consensus runs).
        self.state_machine = None
        self.clients = None
        self.gateway = None
        # Per-payload-type routing table, filled lazily on first sight of
        # each concrete message class (see on_message).
        self._routes: dict[type, Callable[[Any, int], None]] = {}
        self._schedule_downtime()

    @property
    def crypto_backend(self):
        """The :class:`~repro.crypto.backend.CryptoBackend` this replica's
        scheme (and hence all of its signing/verification) digests with."""
        return self.scheme.backend

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start the pacemaker (which will drive the engine into views)."""
        self.pacemaker.start()
        if self.clients is not None:
            self.clients.start()

    def _schedule_downtime(self) -> None:
        """Schedule every crash/recovery window the behaviour declares.

        A window ``(crash_at, recover_at)`` crashes the replica at its start
        and — when ``recover_at`` is not ``None`` — restarts it at its end,
        so churn behaviours can take a replica down and up repeatedly.
        """
        windows = self.behaviour.downtime_windows()
        for crash_at, recover_at in windows:
            if recover_at is not None and recover_at <= crash_at:
                raise ConfigurationError(
                    f"recovery at {recover_at} does not follow crash at {crash_at}"
                )
        for crash_at, recover_at in windows:
            self.runtime.set_timer_at(max(crash_at, self.now), self.crash)
            if recover_at is not None:
                self.runtime.set_timer_at(max(recover_at, self.now), self.recover)

    # ------------------------------------------------------------------
    # Message routing
    # ------------------------------------------------------------------
    def on_message(self, payload: Any, sender: int) -> None:
        """Route by concrete payload type via the cached dispatch table.

        The first delivery of each message class pays one ``isinstance``
        check to decide engine vs pacemaker; every later delivery of that
        class is a single dict lookup.
        """
        handler = self._routes.get(payload.__class__)
        if handler is None:
            if isinstance(payload, ConsensusMessage):
                handler = self.engine.on_message
            elif isinstance(payload, ClientMessage):
                handler = self._on_client_message
            else:
                handler = self.pacemaker.on_message
            self._routes[payload.__class__] = handler
        handler(payload, sender)

    # ------------------------------------------------------------------
    # View bookkeeping
    # ------------------------------------------------------------------
    @property
    def current_view(self) -> int:
        """The view this replica is currently in, as decided by its pacemaker."""
        return self.pacemaker.current_view

    def leader_of(self, view: int) -> int:
        """The leader of ``view`` under the pacemaker's leader schedule."""
        return self.pacemaker.leader_of(view)

    def is_leader(self, view: int) -> bool:
        """Whether this replica leads ``view``."""
        return self.leader_of(view) == self.pid

    def on_view_entered(self, view: int) -> None:
        """Callback from the pacemaker when this replica enters ``view``."""
        self.metrics.record_view_entry(self.pid, view, self.now)
        self.trace("enter_view", view=view, local_clock=round(self.local_time, 3))
        self.engine.on_enter_view(view)

    # ------------------------------------------------------------------
    # QC and commit callbacks (from the engine)
    # ------------------------------------------------------------------
    def on_qc_produced(self, qc: QuorumCertificate) -> None:
        """This replica, as leader, formed a QC for its own view."""
        self.metrics.record_decision(self.now, qc.view, self.pid)
        self.trace("qc_produced", view=qc.view)
        self.pacemaker.on_local_qc(qc)

    def on_qc_observed(self, qc: QuorumCertificate) -> None:
        """This replica learned of a QC (its own or another leader's)."""
        self.metrics.record_qc()
        self.trace("qc_observed", view=qc.view)
        self.pacemaker.on_qc(qc)

    def commit_block(self, block: Block) -> None:
        """A block became committed under the 3-chain rule."""
        self.ledger.commit(block, self.now)
        self.metrics.record_commit(self.pid, block.view, block.block_id, self.now)
        if self.state_machine is not None:
            self.state_machine.catch_up(self.ledger, self.now)
        self.trace("commit", view=block.view, block=block.block_id[:8])

    def _on_client_message(self, payload: ClientMessage, sender: int) -> None:
        """Client-path traffic: forwarded batches feed the mempool.

        A full mempool silently drops the forward — the sending gateway's
        retry timer re-offers outstanding commands, so backpressure needs
        no NACK.
        """
        if isinstance(payload, CommandForward):
            self.mempool.ingest(payload.batch)

    # ------------------------------------------------------------------
    # Epoch-synchronisation accounting (used by epoch-based pacemakers)
    # ------------------------------------------------------------------
    def record_epoch_sync(self, epoch: int) -> None:
        """Record participation in a heavy (all-to-all) epoch synchronisation."""
        self.metrics.record_epoch_sync(self.pid, epoch, self.now)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Replica(pid={self.pid}, view={self.current_view}, "
            f"pacemaker={type(self.pacemaker).__name__}, byzantine={self.byzantine})"
        )
