"""Chained HotStuff: the view-based consensus engine the pacemakers drive.

One view of chained HotStuff, as described in Section 2 of the paper:

1. the leader of view ``v`` proposes a block extending the highest QC it
   knows (broadcast to all, O(n) messages),
2. replicas in view ``v`` vote by sending a partial threshold signature to
   the leader (O(n) messages),
3. the leader aggregates ``2f+1`` votes into a QC for view ``v`` and sends
   it to all processors (O(n) messages).

A view therefore costs O(n) messages and at most three message delays once
the participants are synchronised — satisfying assumption (⋄1) with a small
constant ``x``.  Commit uses the classic 3-chain rule, so every sequence of
three consecutive successful views commits a block.

The engine never reads clocks: *when* to enter a view is entirely the
pacemaker's decision, delivered via :meth:`ConsensusEngine.on_enter_view`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Any, Callable, Optional

from repro.consensus.blocks import Block, GENESIS, GENESIS_ID
from repro.consensus.messages import (
    ConsensusMessage,
    NewView,
    Proposal,
    QCAnnounce,
    Vote,
)
from repro.consensus.quorum import QuorumCertificate, VoteAggregator

if TYPE_CHECKING:  # pragma: no cover - type-checking only
    from repro.consensus.replica import Replica

#: Sentinel distinguishing "type not classified yet" from "classified as
#: ignorable" (which caches ``None``) in the dispatch table.
_UNSEEN: Any = object()


class ConsensusEngine(ABC):
    """Interface between a replica and its consensus logic."""

    def __init__(self, replica: "Replica") -> None:
        self.replica = replica

    @abstractmethod
    def on_enter_view(self, view: int) -> None:
        """The pacemaker moved the replica into ``view``."""

    @abstractmethod
    def on_message(self, msg: ConsensusMessage, sender: int) -> None:
        """Handle a consensus-layer message."""


class ChainedHotStuff(ConsensusEngine):
    """Chained HotStuff with NewView status messages and a 3-chain commit rule."""

    def __init__(self, replica: "Replica") -> None:
        super().__init__(replica)
        self.aggregator = VoteAggregator(replica.scheme, replica.config.quorum_size)
        # Proposals received for views we have not entered yet.
        self._pending_proposals: dict[int, tuple[Proposal, int]] = {}
        # Blocks whose parent we have not seen yet, keyed by the missing parent id.
        self._orphans: dict[str, list[Block]] = {}
        # Highest QCs reported via NewView, per view, per sender.
        self._new_view_qcs: dict[int, dict[int, Optional[QuorumCertificate]]] = {}
        self._proposed_views: set[int] = set()
        self._announced_qcs: set[int] = set()
        self._learned_qcs: set[tuple[int, str]] = set()
        self._voted_views: set[int] = set()
        # Exact-type dispatch table for on_message; subclasses of the four
        # wire messages are resolved (and cached) on first sight.
        self._handlers: dict[type, Optional[Callable[[Any, int], None]]] = {
            NewView: self._handle_new_view,
            Proposal: self._handle_proposal,
            Vote: self._handle_vote,
            QCAnnounce: self._handle_qc_announce,
        }

    # ------------------------------------------------------------------
    # Convenience accessors
    # ------------------------------------------------------------------
    @property
    def config(self):
        return self.replica.config

    @property
    def safety(self):
        return self.replica.safety

    @property
    def tree(self):
        return self.replica.tree

    @property
    def behaviour(self):
        return self.replica.behaviour

    # ------------------------------------------------------------------
    # View entry
    # ------------------------------------------------------------------
    def on_enter_view(self, view: int) -> None:
        leader = self.replica.leader_of(view)
        if not self.behaviour.suppress_view_sync("new_view", view):
            self.replica.send(leader, NewView(view=view, high_qc=self.safety.high_qc))
        self._maybe_propose(view)
        pending = self._pending_proposals.pop(view, None)
        if pending is not None:
            proposal, sender = pending
            self._handle_proposal(proposal, sender)

    # ------------------------------------------------------------------
    # Message dispatch
    # ------------------------------------------------------------------
    def on_message(self, msg: ConsensusMessage, sender: int) -> None:
        """Dispatch on the concrete message class (one dict lookup per delivery).

        The table is seeded with the four wire messages; a subclass (or an
        unknown consensus message, which is ignored) pays the ``isinstance``
        ladder once and is cached from then on.
        """
        handler = self._handlers.get(msg.__class__, _UNSEEN)
        if handler is _UNSEEN:
            handler = self._resolve_handler(msg.__class__)
        if handler is not None:
            handler(msg, sender)

    def _resolve_handler(
        self, message_type: type
    ) -> Optional[Callable[[Any, int], None]]:
        """Slow path: classify a new message type and cache the result."""
        if issubclass(message_type, NewView):
            handler: Optional[Callable[[Any, int], None]] = self._handle_new_view
        elif issubclass(message_type, Proposal):
            handler = self._handle_proposal
        elif issubclass(message_type, Vote):
            handler = self._handle_vote
        elif issubclass(message_type, QCAnnounce):
            handler = self._handle_qc_announce
        else:
            handler = None  # unknown consensus message: ignored, like before
        self._handlers[message_type] = handler
        return handler

    # ------------------------------------------------------------------
    # Leader logic
    # ------------------------------------------------------------------
    def _handle_new_view(self, msg: NewView, sender: int) -> None:
        if self.replica.leader_of(msg.view) != self.replica.pid:
            return
        if msg.high_qc is not None:
            self._learn_qc(msg.high_qc, block=None)
        self._new_view_qcs.setdefault(msg.view, {})[sender] = msg.high_qc
        self._maybe_propose(msg.view)

    def _maybe_propose(self, view: int) -> None:
        """Propose for ``view`` if we lead it and are ready.

        Ready means: we hold a QC for ``view - 1`` (the responsive path), or
        we have NewView messages from a quorum (the recovery path after a
        failed view), or ``view`` is the first view of the execution.
        """
        replica = self.replica
        if view < 0 or replica.leader_of(view) != replica.pid:
            return
        if view in self._proposed_views:
            return
        if replica.current_view != view:
            return
        high_qc = self.safety.high_qc
        quorum_reports = self._new_view_qcs.get(view, {})
        responsive_ready = high_qc is not None and high_qc.view == view - 1
        recovery_ready = len(quorum_reports) >= self.config.quorum_size
        genesis_ready = view == 0
        if not (responsive_ready or recovery_ready or genesis_ready):
            return

        justify = self._best_justify(high_qc, quorum_reports.values())
        parent = self._parent_for(justify)
        if parent is None:
            return
        self._proposed_views.add(view)

        if self.behaviour.suppress_proposal(view):
            self.replica.trace("proposal_suppressed", view=view)
            return

        delay = self.behaviour.proposal_delay(view)
        if self.behaviour.equivocate(view):
            self._propose_equivocating(view, parent, justify, delay)
            return

        block = Block(
            view=view,
            parent_id=parent.block_id,
            proposer=replica.pid,
            payload=replica.mempool.next_batch(),
            justify_view=justify.view if justify is not None else -1,
        )
        proposal = Proposal(view=view, block=block, justify=justify)
        self._send_after(delay, lambda: replica.broadcast(proposal))
        replica.trace("proposal_sent", view=view, block=block.block_id[:8])

    def _propose_equivocating(
        self, view: int, parent: Block, justify: Optional[QuorumCertificate], delay: float
    ) -> None:
        """Byzantine leader: send conflicting proposals to the two halves of the system."""
        replica = self.replica
        block_a = Block(
            view=view,
            parent_id=parent.block_id,
            proposer=replica.pid,
            payload=replica.mempool.next_batch() + ("equivocation-a",),
            justify_view=justify.view if justify is not None else -1,
        )
        block_b = Block(
            view=view,
            parent_id=parent.block_id,
            proposer=replica.pid,
            payload=replica.mempool.next_batch() + ("equivocation-b",),
            justify_view=justify.view if justify is not None else -1,
        )
        all_ids = list(self.replica.runtime.process_ids)
        half = len(all_ids) // 2
        first, second = all_ids[:half], all_ids[half:]

        def send() -> None:
            for pid in first:
                replica.send(pid, Proposal(view=view, block=block_a, justify=justify))
            for pid in second:
                replica.send(pid, Proposal(view=view, block=block_b, justify=justify))

        self._send_after(delay, send)
        replica.trace("equivocation_sent", view=view)

    def _best_justify(
        self,
        high_qc: Optional[QuorumCertificate],
        reported: "Optional[object]",
    ) -> Optional[QuorumCertificate]:
        """The highest-view QC among our own and those reported via NewView."""
        best = high_qc
        for qc in reported or ():
            if qc is None:
                continue
            if best is None or qc.view > best.view:
                best = qc
        return best

    def _parent_for(self, justify: Optional[QuorumCertificate]) -> Optional[Block]:
        if justify is None:
            return GENESIS
        return self.tree.get(justify.block_id)

    # ------------------------------------------------------------------
    # Replica logic
    # ------------------------------------------------------------------
    def _handle_proposal(self, msg: Proposal, sender: int) -> None:
        replica = self.replica
        leader = replica.leader_of(msg.view)
        if sender != leader or msg.block.proposer != leader:
            return
        if msg.justify is not None:
            self._learn_qc(msg.justify, block=None)
        self._store_block(msg.block)
        current = replica.current_view
        if msg.view > current:
            self._pending_proposals[msg.view] = (msg, sender)
            return
        if msg.view < current:
            return
        self._vote_on(msg)

    def _vote_on(self, msg: Proposal) -> None:
        replica = self.replica
        block = msg.block
        if block.parent_id not in self.tree and block.parent_id != GENESIS_ID:
            # Parent unknown: remember the proposal; we may receive the parent
            # via a QCAnnounce shortly.
            self._orphans.setdefault(block.parent_id, []).append(block)
            return
        if msg.view in self._voted_views:
            return
        if not self.safety.safe_to_vote(block, msg.justify):
            return
        if self.behaviour.suppress_vote(msg.view):
            return
        self._voted_views.add(msg.view)
        self.safety.record_vote(block)
        message = ("qc", msg.view, block.block_id)
        partial = replica.scheme.partial_sign(replica.signing_key, message)
        vote = Vote(view=msg.view, block_id=block.block_id, partial=partial)
        replica.send(replica.leader_of(msg.view), vote)

    def _handle_vote(self, msg: Vote, sender: int) -> None:
        replica = self.replica
        if replica.leader_of(msg.view) != replica.pid:
            return
        qc = self.aggregator.add_vote(msg.view, msg.block_id, msg.partial)
        if qc is not None:
            self._on_qc_formed(qc)

    def _on_qc_formed(self, qc: QuorumCertificate) -> None:
        replica = self.replica
        if qc.view in self._announced_qcs:
            return
        if not replica.pacemaker.may_produce_qc(qc.view):
            replica.trace("qc_withheld_past_deadline", view=qc.view)
            return
        self._announced_qcs.add(qc.view)
        block = self.tree.get(qc.block_id)
        replica.on_qc_produced(qc)
        if self.behaviour.suppress_qc_broadcast(qc.view):
            replica.trace("qc_broadcast_suppressed", view=qc.view)
            self._learn_qc(qc, block=block)
            return
        delay = self.behaviour.qc_broadcast_delay(qc.view)
        announce = QCAnnounce(view=qc.view, qc=qc, block=block if block is not None else GENESIS)
        self._send_after(delay, lambda: replica.broadcast(announce))

    def _handle_qc_announce(self, msg: QCAnnounce, sender: int) -> None:
        if msg.block is not None and msg.block.view >= 0:
            self._store_block(msg.block)
        self._learn_qc(msg.qc, block=msg.block)

    # ------------------------------------------------------------------
    # Shared QC / block learning
    # ------------------------------------------------------------------
    def _store_block(self, block: Block) -> None:
        if block.block_id in self.tree:
            return
        if block.parent_id not in self.tree and block.parent_id != GENESIS_ID:
            self._orphans.setdefault(block.parent_id, []).append(block)
            return
        self.tree.add(block)
        self._adopt_orphans(block.block_id)

    def _adopt_orphans(self, parent_id: str) -> None:
        children = self._orphans.pop(parent_id, [])
        for child in children:
            if child.block_id not in self.tree:
                self.tree.add(child)
                self._adopt_orphans(child.block_id)

    def _learn_qc(self, qc: QuorumCertificate, block: Optional[Block]) -> None:
        key = (qc.view, qc.block_id)
        if key in self._learned_qcs:
            return
        if not self.replica.scheme.verify(qc.aggregate, qc.message()):
            return
        self._learned_qcs.add(key)
        if block is not None and block.view >= 0:
            self._store_block(block)
        self.safety.update_high_qc(qc)
        for committed in self.safety.commit_candidate(qc):
            self.replica.commit_block(committed)
        self.replica.on_qc_observed(qc)
        # Observing a QC may unblock our own proposal for the view we lead.
        self._maybe_propose(self.replica.current_view)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _send_after(self, delay: float, action) -> None:
        if delay > 0:
            self.replica.runtime.set_timer(delay, action)
        else:
            action()
