"""A trivial mempool generating synthetic client commands.

The paper's results are independent of the workload content; blocks only
need *some* payload so that the ledger and safety checks are meaningful.
The mempool hands out monotonically numbered command ids in fixed-size
batches.
"""

from __future__ import annotations

import itertools


class Mempool:
    """Produces synthetic command batches for block proposals."""

    def __init__(self, owner: int, batch_size: int = 4) -> None:
        self.owner = owner
        self.batch_size = batch_size
        self._counter = itertools.count()

    def next_batch(self) -> tuple:
        """A fresh batch of command identifiers (owner-tagged, monotonic)."""
        return tuple(f"cmd-{self.owner}-{next(self._counter)}" for _ in range(self.batch_size))
