"""The mempool: client batches queued for proposal, with backpressure.

Two modes, chosen per call by what the mempool holds:

* **Client batches.**  Request gateways submit pre-encoded
  :class:`~repro.statemachine.messages.CommandBatch` blobs via
  :meth:`Mempool.ingest`.  The queue is bounded in *commands* —
  ``max_pending`` — and a full mempool rejects the batch (the gateway's
  retry timer re-offers it later), which is the backpressure signal that
  keeps an overloaded leader from buffering unbounded client state.
  :meth:`Mempool.next_batch` pops whole batches up to ``max_batch``
  commands per proposal **without re-encoding them**: the blobs were
  encoded once at the gateway and travel as opaque bytes through the
  proposal broadcast (the binary codec memcpys them), so proposal cost is
  per-batch, not per-command.

* **Synthetic filler.**  With no client workload attached (every run
  before this package existed, and every pure-consensus benchmark), the
  mempool emits ``(owner, seq)`` int-tuple command ids in fixed-size
  batches — cheap to make, compact under the binary codec, and
  payload-shape compatible with everything that inspects ledgers.

Duplicate suppression here is *queue-level* only: a blob is dropped if an
identical blob is already queued (a gateway retry racing its original
forward), and forgotten once proposed — if that proposal's view fails,
the next retry must be accepted again.  Committed duplicates are the
state machine's job (`ReplicatedKV`'s exactly-once filter), not the
mempool's: a mempool cannot know which in-flight proposals will commit.
"""

from __future__ import annotations

import itertools
from collections import deque

from repro.statemachine.messages import CommandBatch


class Mempool:
    """Bounded queue of client command batches feeding block proposals."""

    def __init__(
        self,
        owner: int,
        batch_size: int = 4,
        max_batch: int = 256,
        max_pending: int = 4096,
    ) -> None:
        self.owner = owner
        #: Commands per *synthetic* batch (client batches keep their size).
        self.batch_size = batch_size
        #: Max commands drained into one proposal.
        self.max_batch = max_batch
        #: Max commands queued before ingest rejects (backpressure bound).
        self.max_pending = max_pending
        self._counter = itertools.count()
        self._queue: deque[CommandBatch] = deque()
        self._queued: set[bytes] = set()
        self._pending_commands = 0
        #: Batches accepted / rejected (backpressure) / dropped as already queued.
        self.accepted = 0
        self.rejected = 0
        self.duplicates = 0

    @property
    def pending_commands(self) -> int:
        """Commands currently queued for proposal."""
        return self._pending_commands

    def ingest(self, batch: CommandBatch) -> bool:
        """Queue a client batch; ``False`` means full — retry later."""
        if batch.data in self._queued:
            self.duplicates += 1
            return True
        if self._pending_commands + batch.count > self.max_pending:
            self.rejected += 1
            return False
        self._queue.append(batch)
        self._queued.add(batch.data)
        self._pending_commands += batch.count
        self.accepted += 1
        return True

    def next_batch(self) -> tuple:
        """The payload for the next proposal.

        Client batches are drained whole (never split, never re-encoded)
        until the next batch would push the proposal past ``max_batch``
        commands; an oversized first batch still goes out alone rather
        than stalling.  An empty queue yields a synthetic filler batch so
        leaders always have something to propose.
        """
        if not self._queue:
            return tuple(
                (self.owner, next(self._counter)) for _ in range(self.batch_size)
            )
        batches: list[CommandBatch] = []
        commands = 0
        while self._queue and (
            not batches or commands + self._queue[0].count <= self.max_batch
        ):
            batch = self._queue.popleft()
            self._queued.discard(batch.data)
            self._pending_commands -= batch.count
            commands += batch.count
            batches.append(batch)
        return tuple(batches)
