"""HotStuff safety rules: voting constraints, locking, and the 3-chain commit rule.

Safety must hold regardless of what the pacemaker does — even a completely
broken view-synchronisation layer can only hurt liveness.  The tests in
``tests/test_safety.py`` exercise exactly that separation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.consensus.blocks import Block, BlockTree, GENESIS
from repro.consensus.quorum import QuorumCertificate


@dataclass
class SafetyState:
    """The persistent safety-critical state of one replica."""

    last_voted_view: int = -1
    locked_qc: Optional[QuorumCertificate] = None
    high_qc: Optional[QuorumCertificate] = None
    last_committed_view: int = -1


class SafetyRules:
    """Implements the chained-HotStuff voting and commit rules.

    * **Voting rule**: vote for a proposal in view ``v`` only if ``v`` is
      greater than the last voted view, and the proposed block extends the
      locked block (or the proposal's justify QC is newer than the lock).
    * **Locking rule**: lock on the grandparent QC of a newly certified
      block (one-chain behind the high QC's parent), i.e. the standard
      "lock on the second newest QC of a 2-chain".
    * **Commit rule (3-chain)**: a block commits once it heads a chain of
      three blocks certified in consecutive views.
    """

    def __init__(self, tree: BlockTree) -> None:
        self.tree = tree
        self.state = SafetyState()

    # ------------------------------------------------------------------
    # High QC tracking
    # ------------------------------------------------------------------
    def update_high_qc(self, qc: Optional[QuorumCertificate]) -> None:
        """Remember the highest-view QC seen so far and update the lock."""
        if qc is None:
            return
        if self.state.high_qc is None or qc.view > self.state.high_qc.view:
            self.state.high_qc = qc
        self._maybe_update_lock(qc)

    def _maybe_update_lock(self, qc: QuorumCertificate) -> None:
        """Lock on the parent QC of the newly certified block (2-chain lock)."""
        block = self.tree.get(qc.block_id)
        if block is None:
            return
        parent = self.tree.parent(block)
        if parent is None or parent.view < 0:
            return
        parent_qc_view = block.justify_view
        if parent_qc_view < 0:
            return
        current = self.state.locked_qc.view if self.state.locked_qc is not None else -1
        if parent_qc_view > current:
            # We lock by view; the QC object for the parent may not have been
            # retained, so synthesise a lightweight lock record from the block.
            self.state.locked_qc = QuorumCertificate(
                view=parent_qc_view, block_id=parent.block_id, aggregate=qc.aggregate
            )

    @property
    def high_qc(self) -> Optional[QuorumCertificate]:
        """The highest-view QC this replica has seen."""
        return self.state.high_qc

    @property
    def high_qc_view(self) -> int:
        """View of the highest QC seen (-1 if none)."""
        return self.state.high_qc.view if self.state.high_qc is not None else -1

    # ------------------------------------------------------------------
    # Voting
    # ------------------------------------------------------------------
    def safe_to_vote(self, block: Block, justify: Optional[QuorumCertificate]) -> bool:
        """Whether it is safe to vote for ``block`` justified by ``justify``."""
        if block.view <= self.state.last_voted_view:
            return False
        locked = self.state.locked_qc
        if locked is None:
            return True
        # Safety clause: the proposal extends the locked block.
        if self.tree.get(block.parent_id) is not None and self.tree.extends(
            block, locked.block_id
        ):
            return True
        # Liveness clause: the justify QC is newer than our lock.
        if justify is not None and justify.view > locked.view:
            return True
        return False

    def record_vote(self, block: Block) -> None:
        """Remember that we voted in ``block.view`` (votes are never repeated)."""
        self.state.last_voted_view = max(self.state.last_voted_view, block.view)

    # ------------------------------------------------------------------
    # Committing
    # ------------------------------------------------------------------
    def commit_candidate(self, qc: QuorumCertificate) -> list[Block]:
        """Blocks newly committed by the 3-chain rule when ``qc`` arrives.

        Let ``b2`` be the block certified by ``qc``, ``b1`` its parent and
        ``b0`` its grandparent.  If their views are consecutive
        (``b2.view == b1.view + 1 == b0.view + 2``) then ``b0`` and all its
        uncommitted ancestors commit.  Returns the newly committed blocks in
        chain order (oldest first); empty if nothing commits.
        """
        b2 = self.tree.get(qc.block_id)
        if b2 is None:
            return []
        b1 = self.tree.parent(b2)
        if b1 is None:
            return []
        b0 = self.tree.parent(b1)
        if b0 is None:
            return []
        if b2.view != b1.view + 1 or b1.view != b0.view + 1:
            return []
        if b0.view <= self.state.last_committed_view:
            return []
        # Walk upwards from b0 only until the already-committed prefix is
        # reached; this keeps the amortised cost per commit constant.
        pending: list[Block] = []
        current: Optional[Block] = b0
        while (
            current is not None
            and current.view >= 0
            and current.view > self.state.last_committed_view
        ):
            pending.append(current)
            current = self.tree.parent(current)
        newly_committed = list(reversed(pending))
        if newly_committed:
            self.state.last_committed_view = b0.view
        return newly_committed
