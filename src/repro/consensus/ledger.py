"""Per-replica ledger of committed blocks.

The ledger is the externally visible output of SMR: an ordered sequence of
committed blocks (and hence commands).  Safety means the ledgers of any two
honest replicas are always prefixes of one another; the integration tests
assert exactly that via :func:`ledgers_consistent`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.consensus.blocks import Block
from repro.errors import SafetyViolation


@dataclass(frozen=True)
class CommittedEntry:
    """One committed block together with the commit (simulation) time."""

    block: Block
    commit_time: float


class Ledger:
    """Append-only committed chain of one replica."""

    def __init__(self, owner: int) -> None:
        self.owner = owner
        self._entries: list[CommittedEntry] = []
        self._committed_ids: set[str] = set()

    def commit(self, block: Block, time: float) -> None:
        """Append a committed block.  Views must strictly increase."""
        if block.block_id in self._committed_ids:
            return
        if self._entries and block.view <= self._entries[-1].block.view:
            raise SafetyViolation(
                f"replica {self.owner} committed view {block.view} after "
                f"view {self._entries[-1].block.view}"
            )
        self._entries.append(CommittedEntry(block=block, commit_time=time))
        self._committed_ids.add(block.block_id)

    @property
    def entries(self) -> Sequence[CommittedEntry]:
        """All committed entries in commit order."""
        return tuple(self._entries)

    @property
    def blocks(self) -> list[Block]:
        """All committed blocks in commit order."""
        return [entry.block for entry in self._entries]

    @property
    def block_ids(self) -> list[str]:
        """Committed block ids in commit order."""
        return [entry.block.block_id for entry in self._entries]

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def commands(self) -> list:
        """Flattened committed command sequence.

        Client batches are expanded into their decoded
        :class:`~repro.statemachine.commands.Command` tuples; synthetic
        filler ids and any other payload items pass through unchanged.
        """
        from repro.statemachine.commands import decode_commands
        from repro.statemachine.messages import CommandBatch

        flat: list = []
        for entry in self._entries:
            for item in entry.block.payload:
                if isinstance(item, CommandBatch):
                    flat.extend(decode_commands(item.data))
                else:
                    flat.append(item)
        return flat


def ledgers_consistent(ledgers: Iterable[Ledger]) -> bool:
    """Whether every pair of ledgers is prefix-consistent (the safety property)."""
    return sequences_consistent(ledger.block_ids for ledger in ledgers)


def sequences_consistent(id_sequences: Iterable[Sequence[str]]) -> bool:
    """Prefix-consistency over bare block-id sequences.

    The ledger-free form of :func:`ledgers_consistent`, for callers that
    hold only the committed id lists — a multi-process cluster's coordinator
    checks safety over the id sequences its node processes shipped back,
    without ever holding the ledgers themselves.
    """
    sequences = [list(seq) for seq in id_sequences]
    for i, seq_a in enumerate(sequences):
        for seq_b in sequences[i + 1 :]:
            shorter, longer = (seq_a, seq_b) if len(seq_a) <= len(seq_b) else (seq_b, seq_a)
            if longer[: len(shorter)] != shorter:
                return False
    return True
