"""The underlying view-based BFT SMR substrate (chained HotStuff).

Lumiere and the baseline pacemakers only *synchronise views*; they need an
underlying protocol that, per view, drives a consensus decision and marks a
view's success by a Quorum Certificate (QC).  This package provides that
substrate: blocks, votes, QCs, a chained-HotStuff engine with a 3-chain
commit rule, a per-replica ledger, and the :class:`Replica` process that
composes the engine with a pluggable pacemaker.
"""

from repro.consensus.blocks import Block, BlockTree, GENESIS
from repro.consensus.engine import ChainedHotStuff, ConsensusEngine
from repro.consensus.ledger import Ledger
from repro.consensus.mempool import Mempool
from repro.consensus.messages import ConsensusMessage, NewView, Proposal, QCAnnounce, Vote
from repro.consensus.quorum import QuorumCertificate, VoteAggregator
from repro.consensus.replica import Replica
from repro.consensus.safety import SafetyRules

__all__ = [
    "Block",
    "BlockTree",
    "ChainedHotStuff",
    "ConsensusEngine",
    "ConsensusMessage",
    "GENESIS",
    "Ledger",
    "Mempool",
    "NewView",
    "Proposal",
    "QCAnnounce",
    "QuorumCertificate",
    "Replica",
    "SafetyRules",
    "Vote",
    "VoteAggregator",
]
