"""Setuptools shim.

The environment this reproduction targets may not have the ``wheel`` package
available (offline installs), in which case PEP-660 editable installs fail
with ``invalid command 'bdist_wheel'``.  Keeping a ``setup.py`` allows
``pip install -e . --no-build-isolation --no-use-pep517`` (and plain
``python setup.py develop``) to work everywhere; all metadata lives in
``pyproject.toml``, which single-sources the version from
``src/repro/version.py``.
"""

from setuptools import setup

setup()
