"""Unit tests for Lumiere's building blocks: config, leader schedule,
success criterion and certificate collectors."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import ProtocolConfig
from repro.consensus.quorum import QuorumCertificate
from repro.core.certificates import CertificateCollector, EpochMessageCollector
from repro.core.config import LumiereConfig
from repro.core.leader_schedule import LeaderSchedule
from repro.core.messages import epoch_view_message_payload, view_message_payload
from repro.core.success import SuccessTracker
from repro.crypto.signatures import PKI
from repro.crypto.threshold import ThresholdScheme
from repro.errors import ConfigurationError


# ----------------------------------------------------------------------
# LumiereConfig
# ----------------------------------------------------------------------
def test_default_gamma_matches_paper(protocol_config):
    cfg = LumiereConfig(protocol=protocol_config)
    assert cfg.gamma == pytest.approx(2 * (protocol_config.x + 2) * protocol_config.delta)


def test_epoch_length_is_ten_n_by_default(protocol_config):
    cfg = LumiereConfig(protocol=protocol_config)
    assert cfg.epoch_length == 10 * protocol_config.n
    assert cfg.views_per_leader_per_epoch == 10
    assert cfg.success_qcs_per_leader == 10
    assert cfg.success_leaders_required == protocol_config.quorum_size


def test_view_arithmetic(protocol_config):
    cfg = LumiereConfig(protocol=protocol_config, epoch_rounds=1)
    assert cfg.epoch_length == 2 * protocol_config.n
    assert cfg.is_initial(0) and not cfg.is_initial(3)
    assert cfg.is_epoch_view(0) and cfg.is_epoch_view(cfg.epoch_length)
    assert not cfg.is_epoch_view(2)
    assert cfg.epoch_of(cfg.epoch_length + 1) == 1
    assert cfg.first_view_of_epoch(3) == 3 * cfg.epoch_length
    assert cfg.clock_time(5) == pytest.approx(5 * cfg.gamma)


def test_qc_deadline_is_positive_for_default_parameters(protocol_config):
    cfg = LumiereConfig(protocol=protocol_config)
    assert cfg.qc_deadline == pytest.approx(cfg.gamma / 2 - 2 * protocol_config.delta)
    assert cfg.qc_deadline >= protocol_config.x * protocol_config.delta


def test_config_validation(protocol_config):
    with pytest.raises(ConfigurationError):
        LumiereConfig(protocol=protocol_config, epoch_rounds=0)
    with pytest.raises(ConfigurationError):
        LumiereConfig(protocol=protocol_config, gamma_override=-1.0)


# ----------------------------------------------------------------------
# Leader schedule
# ----------------------------------------------------------------------
def test_each_leader_gets_two_consecutive_views():
    schedule = LeaderSchedule(n=5, views_per_round=10, rounds_per_epoch=3, seed=1)
    for view in range(0, 200, 2):
        assert schedule.leader_of(view) == schedule.leader_of(view + 1)


def test_every_processor_leads_once_per_round():
    n = 7
    schedule = LeaderSchedule(n=n, views_per_round=2 * n, rounds_per_epoch=5, seed=3)
    for round_start in range(0, 6 * 2 * n, 2 * n):
        leaders = {schedule.leader_of(round_start + 2 * i) for i in range(n)}
        assert leaders == set(range(n))


def test_epoch_boundary_shares_leader():
    """The last leader of each epoch is the first leader of the next (footnote 2)."""
    n = 5
    rounds = 5
    epoch_length = 2 * n * rounds
    schedule = LeaderSchedule(n=n, views_per_round=2 * n, rounds_per_epoch=rounds, seed=11)
    for epoch in range(6):
        assert schedule.last_leader_of_epoch(epoch, epoch_length) == schedule.first_leader_of_epoch(
            epoch + 1, epoch_length
        )


def test_schedule_is_deterministic_across_instances():
    a = LeaderSchedule(n=4, views_per_round=8, rounds_per_epoch=5, seed=9)
    b = LeaderSchedule(n=4, views_per_round=8, rounds_per_epoch=5, seed=9)
    assert [a.leader_of(v) for v in range(300)] == [b.leader_of(v) for v in range(300)]


def test_schedule_rejects_bad_parameters():
    with pytest.raises(ConfigurationError):
        LeaderSchedule(n=4, views_per_round=7, rounds_per_epoch=5)
    with pytest.raises(ConfigurationError):
        LeaderSchedule(n=0, views_per_round=0, rounds_per_epoch=1)


def test_views_led_by_counts_match_quota():
    n = 4
    rounds = 5
    epoch_length = 2 * n * rounds
    schedule = LeaderSchedule(n=n, views_per_round=2 * n, rounds_per_epoch=rounds, seed=2)
    for pid in range(n):
        assert len(schedule.views_led_by(pid, epoch=0, epoch_length=epoch_length)) == 2 * rounds


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=1000), n=st.integers(min_value=2, max_value=9))
def test_leader_is_always_a_valid_processor(seed, n):
    schedule = LeaderSchedule(n=n, views_per_round=2 * n, rounds_per_epoch=5, seed=seed)
    assert all(0 <= schedule.leader_of(v) < n for v in range(0, 40 * n, 3))


# ----------------------------------------------------------------------
# Success tracker
# ----------------------------------------------------------------------
def _qc_for(scheme, keys, view):
    message = ("qc", view, f"block-{view}")
    partials = [scheme.partial_sign(keys[i], message) for i in range(3)]
    aggregate = scheme.combine(partials, 3, message)
    return QuorumCertificate(view=view, block_id=f"block-{view}", aggregate=aggregate)


def test_success_requires_enough_leaders_with_full_quota(protocol_config, pki_and_keys, scheme):
    _, keys = pki_and_keys
    cfg = LumiereConfig(protocol=protocol_config, epoch_rounds=1)  # 8 views, 2 per leader
    schedule = LeaderSchedule(protocol_config.n, 2 * protocol_config.n, 1, seed=0)
    tracker = SuccessTracker(cfg, schedule.leader_of)
    assert cfg.success_qcs_per_leader == 2
    assert cfg.success_leaders_required == 3
    # QCs from two leaders only: not satisfied.
    newly = False
    for view in (0, 1, 2, 3):
        newly = tracker.observe_qc(_qc_for(scheme, keys, view)) or newly
    assert not tracker.satisfied(0)
    # Third leader completes its two views: satisfied exactly once.
    assert tracker.observe_qc(_qc_for(scheme, keys, 4)) is False
    assert tracker.observe_qc(_qc_for(scheme, keys, 5)) is True
    assert tracker.satisfied(0)
    # Further QCs never "re-satisfy".
    assert tracker.observe_qc(_qc_for(scheme, keys, 6)) is False


def test_success_disabled_never_satisfies(protocol_config, pki_and_keys, scheme):
    _, keys = pki_and_keys
    cfg = LumiereConfig(protocol=protocol_config, epoch_rounds=1, use_success_criterion=False)
    schedule = LeaderSchedule(protocol_config.n, 2 * protocol_config.n, 1, seed=0)
    tracker = SuccessTracker(cfg, schedule.leader_of)
    for view in range(cfg.epoch_length):
        tracker.observe_qc(_qc_for(scheme, keys, view))
    assert not tracker.satisfied(0)


def test_success_is_per_epoch(protocol_config, pki_and_keys, scheme):
    _, keys = pki_and_keys
    cfg = LumiereConfig(protocol=protocol_config, epoch_rounds=1)
    schedule = LeaderSchedule(protocol_config.n, 2 * protocol_config.n, 1, seed=0)
    tracker = SuccessTracker(cfg, schedule.leader_of)
    for view in range(cfg.epoch_length):
        tracker.observe_qc(_qc_for(scheme, keys, view))
    assert tracker.satisfied(0)
    assert not tracker.satisfied(1)
    assert not tracker.satisfied(-1)


# ----------------------------------------------------------------------
# Certificate collectors
# ----------------------------------------------------------------------
def test_vc_collector_forms_once_at_threshold(pki_and_keys, scheme):
    _, keys = pki_and_keys
    collector = CertificateCollector(scheme, threshold=2, payload_fn=view_message_payload)
    p0 = scheme.partial_sign(keys[0], view_message_payload(4))
    p1 = scheme.partial_sign(keys[1], view_message_payload(4))
    assert collector.add(4, 0, p0) is None
    aggregate = collector.add(4, 1, p1)
    assert aggregate is not None and aggregate.size == 2
    assert collector.formed(4)
    # A third share does not form a second certificate.
    p2 = scheme.partial_sign(keys[2], view_message_payload(4))
    assert collector.add(4, 2, p2) is None


def test_vc_collector_rejects_mismatched_sender(pki_and_keys, scheme):
    _, keys = pki_and_keys
    collector = CertificateCollector(scheme, threshold=1, payload_fn=view_message_payload)
    partial = scheme.partial_sign(keys[0], view_message_payload(4))
    assert collector.add(4, 1, partial) is None  # claimed sender != signer
    assert collector.count(4) == 0


def test_epoch_collector_reports_tc_then_ec(pki_and_keys, scheme):
    _, keys = pki_and_keys
    collector = EpochMessageCollector(
        scheme, tc_threshold=2, ec_threshold=3, payload_fn=epoch_view_message_payload
    )
    view = 80
    results = []
    for i in range(4):
        partial = scheme.partial_sign(keys[i], epoch_view_message_payload(view))
        results.append(collector.add(view, i, partial))
    assert results[0] == (False, False)
    assert results[1] == (True, False)
    assert results[2] == (False, True)
    assert results[3] == (False, False)
    assert collector.has_tc(view) and collector.has_ec(view)
    assert collector.count(view) == 4


def test_epoch_collector_counts_distinct_signers_only(pki_and_keys, scheme):
    _, keys = pki_and_keys
    collector = EpochMessageCollector(
        scheme, tc_threshold=2, ec_threshold=3, payload_fn=epoch_view_message_payload
    )
    partial = scheme.partial_sign(keys[0], epoch_view_message_payload(0))
    for _ in range(5):
        assert collector.add(0, 0, partial) == (False, False)
    assert collector.count(0) == 1
