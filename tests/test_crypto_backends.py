"""Tests for the pluggable crypto backends and their threading through the stack.

Covers the backend registry and semantics, the once-per-send digest hoisting
in ``Network.broadcast`` (regression-tested via the backends' call counters),
threshold-signature misuse under **each** backend, and the end-to-end claim
that backends only change digest representation, never protocol outcomes.
"""

from __future__ import annotations

import pytest

from repro.config import ProtocolConfig
from repro.crypto.backend import (
    CountingBackend,
    HashingBackend,
    MemoisingBackend,
    available_backends,
    blake_digest,
    get_default_backend,
    make_backend,
    use_backend,
)
from repro.crypto.signatures import PKI, SigningKey
from repro.crypto.threshold import PartialSignature, ThresholdScheme
from repro.errors import ConfigurationError, ThresholdError
from repro.experiments.scenario import ScenarioConfig, run_scenario
from repro.runner.campaign import spec_key
from repro.sim.events import Simulator
from repro.sim.network import FixedDelay, Network, NetworkConfig

ALL_BACKENDS = ("hashing", "counting", "interned")


@pytest.fixture(params=ALL_BACKENDS)
def backend(request):
    """One fresh instance of every registered backend."""
    return make_backend(request.param)


# ----------------------------------------------------------------------
# Registry and default-backend management
# ----------------------------------------------------------------------
def test_registry_names_and_unknown_backend():
    assert set(ALL_BACKENDS) <= set(available_backends())
    with pytest.raises(ConfigurationError, match="unknown crypto backend"):
        make_backend("sha3-but-wrong")


def test_make_backend_returns_fresh_instances():
    assert make_backend("counting") is not make_backend("counting")


def test_use_backend_installs_and_restores():
    before = get_default_backend()
    counting = CountingBackend()
    with use_backend(counting):
        assert get_default_backend() is counting
    assert get_default_backend() is before


def test_protocol_config_rejects_unknown_backend():
    with pytest.raises(ConfigurationError, match="unknown crypto backend"):
        ProtocolConfig(n=4, crypto_backend="nope")


# ----------------------------------------------------------------------
# Digest semantics shared by every backend
# ----------------------------------------------------------------------
def test_equal_payloads_get_equal_digests(backend):
    assert backend.digest("a", 1, (2, 3)) == backend.digest("a", 1, (2, 3))


def test_distinct_payloads_get_distinct_digests(backend):
    seen = {
        backend.digest("a", 1),
        backend.digest("a", 2),
        backend.digest(("a", "b")),
        backend.digest(("ab",)),
    }
    assert len(seen) == 4


def test_sets_and_dicts_are_order_insensitive(backend):
    assert backend.digest({3, 1, 2}) == backend.digest({2, 3, 1})
    assert backend.digest({"k": 1, "j": 2}) == backend.digest({"j": 2, "k": 1})


def test_unhashable_parts_are_supported(backend):
    """Sorted signer lists (the threshold proof payload shape) digest fine."""
    first = backend.digest("threshold", "d", 3, [0, 1, 2])
    again = backend.digest("threshold", "d", 3, [0, 1, 2])
    other = backend.digest("threshold", "d", 3, [0, 1, 3])
    assert first == again
    assert first != other


def test_lists_and_tuples_are_interchangeable(backend):
    """canonical_bytes treats lists and tuples identically; so must every backend."""
    assert backend.digest([1, 2]) == backend.digest((1, 2))


def test_unhashable_dataclass_payloads_are_supported(backend):
    """A dataclass with a list-valued field must digest under every backend."""
    from dataclasses import dataclass

    @dataclass(frozen=True)
    class ListyMessage:
        view: int
        ids: list

    first = backend.digest(ListyMessage(view=1, ids=[3, 4]))
    again = backend.digest(ListyMessage(view=1, ids=[3, 4]))
    other = backend.digest(ListyMessage(view=1, ids=[3, 5]))
    assert first == again
    assert first != other


# ----------------------------------------------------------------------
# Backend-specific behaviour
# ----------------------------------------------------------------------
def test_hashing_backend_matches_pure_function():
    backend = HashingBackend()
    assert backend.digest("x", 1) == blake_digest("x", 1)


def test_counting_backend_mints_compact_tokens():
    backend = CountingBackend()
    token = backend.digest("block", 3, "parent", 0, ())
    assert token.startswith("~")
    assert backend.distinct_payloads == 1
    assert backend.digest("block", 3, "parent", 0, ()) == token
    assert backend.distinct_payloads == 1  # served from the intern table


def test_counting_tokens_never_collide_across_instances():
    """Tokens leaked across runs must fail comparisons, never silently match."""
    first = CountingBackend()
    second = CountingBackend()
    assert first.digest("payload-a") != second.digest("payload-b")
    # Equal payloads still agree within one instance, not across instances.
    assert first.digest("payload-a") == first.digest("payload-a")


def test_counting_backend_counts_calls_and_computes():
    backend = CountingBackend()
    backend.digest("a")
    backend.digest("a")
    backend.digest("b")
    assert backend.digest_calls == 3
    assert backend.digest_computes == 2


def test_memoising_backend_computes_each_payload_once():
    backend = MemoisingBackend(HashingBackend())
    value = backend.digest("qc", 7, "block")
    assert value == blake_digest("qc", 7, "block")  # bit-identical to hashing
    for _ in range(5):
        assert backend.digest("qc", 7, "block") == value
    assert backend.digest_computes == 1
    assert backend.hits == 5
    assert backend.inner.digest_calls == 1


def test_memoising_backend_memoises_unhashable_payloads():
    backend = MemoisingBackend(HashingBackend())
    backend.digest("threshold", "d", 3, [0, 1, 2])
    backend.digest("threshold", "d", 3, [0, 1, 2])
    assert backend.digest_computes == 1
    assert backend.hits == 1


def test_reset_counters(backend):
    backend.digest("something")
    backend.reset_counters()
    assert backend.digest_calls == 0
    assert backend.digest_computes == 0


# ----------------------------------------------------------------------
# Broadcast hoists the payload digest out of the per-recipient loop
# ----------------------------------------------------------------------
class _Sink:
    def __init__(self, pid):
        self.pid = pid
        self.received = []

    def deliver(self, payload, sender):
        self.received.append((payload, sender))


def _network_with_backend(n, backend):
    sim = Simulator(seed=0)
    net = Network(
        sim,
        NetworkConfig(delta=1.0, actual_delay=0.1),
        FixedDelay(0.1),
        crypto_backend=backend,
    )
    for pid in range(n):
        net.register(_Sink(pid))
    return sim, net


@pytest.mark.parametrize("backend_name", ALL_BACKENDS)
def test_broadcast_digests_payload_once_not_once_per_recipient(backend_name):
    backend = make_backend(backend_name)
    sim, net = _network_with_backend(7, backend)
    backend.reset_counters()
    envelopes = net.broadcast(0, "the-proposal")
    assert len(envelopes) == 7
    assert backend.digest_calls == 1  # hoisted: one call for seven recipients
    digests = {envelope.payload_digest for envelope in envelopes}
    assert len(digests) == 1 and None not in digests


def test_multicast_digests_payload_once():
    backend = CountingBackend()
    sim, net = _network_with_backend(5, backend)
    backend.reset_counters()
    net.multicast(0, [1, 2, 3], "batch")
    assert backend.digest_calls == 1


def test_send_attaches_payload_digest():
    backend = CountingBackend()
    sim, net = _network_with_backend(2, backend)
    envelope = net.send(0, 1, "hello")
    assert envelope.payload_digest == backend.digest("hello")


def test_network_without_backend_attaches_no_digest():
    sim = Simulator(seed=0)
    net = Network(sim, NetworkConfig(), FixedDelay(0.1))
    net.register(_Sink(0))
    net.register(_Sink(1))
    envelope = net.send(0, 1, "hello")
    assert envelope.payload_digest is None


# ----------------------------------------------------------------------
# Threshold-signature misuse under each backend (satellite)
# ----------------------------------------------------------------------
def _scheme_with_keys(backend, n=4):
    pki, keys = PKI.setup(range(n), backend=backend)
    return ThresholdScheme(pki), keys


def test_duplicate_signers_rejected(backend):
    scheme, keys = _scheme_with_keys(backend)
    message = ("qc", 1, "h")
    partials = [scheme.partial_sign(keys[0], message)] * 5
    with pytest.raises(ThresholdError, match="distinct valid shares"):
        scheme.combine(partials, threshold=2, message=message)


def test_below_threshold_aggregation_raises(backend):
    scheme, keys = _scheme_with_keys(backend)
    message = ("qc", 5, "h")
    partials = [scheme.partial_sign(keys[i], message) for i in range(2)]
    with pytest.raises(ThresholdError):
        scheme.combine(partials, threshold=3, message=message)


def test_forged_partial_from_non_owner_key_fails_verification(backend):
    """An attacker signing with its *own* key cannot impersonate a victim."""
    scheme, keys = _scheme_with_keys(backend)
    message = ("qc", 9, "victim-block")
    attacker_key = SigningKey(owner=3, backend=backend)  # a fresh secret, not the PKI's
    honest = scheme.partial_sign(keys[3], message)
    forged = PartialSignature(
        signer=3,
        message_digest=honest.message_digest,
        signature=attacker_key.sign(message),
    )
    assert scheme.verify_partial(honest, message)
    assert not scheme.verify_partial(forged, message)
    good = [scheme.partial_sign(keys[i], message) for i in range(2)]
    with pytest.raises(ThresholdError):
        scheme.combine(good + [forged], threshold=3, message=message)


def test_roundtrip_and_verify_under_each_backend(backend):
    scheme, keys = _scheme_with_keys(backend)
    message = ("qc", 5, "blockhash")
    partials = [scheme.partial_sign(keys[i], message) for i in range(3)]
    aggregate = scheme.combine(partials, threshold=3, message=message)
    assert scheme.verify(aggregate, message)
    assert not scheme.verify(aggregate, ("qc", 6, "blockhash"))


# ----------------------------------------------------------------------
# End to end: backends change digest representation, not protocol outcomes
# ----------------------------------------------------------------------
def _run(backend_name):
    return run_scenario(
        ScenarioConfig(
            n=4,
            pacemaker="lumiere",
            delta=1.0,
            actual_delay=0.1,
            gst=0.0,
            duration=40.0,
            seed=0,
            record_trace=False,
            crypto_backend=backend_name,
        )
    )


def test_lumiere_config_rejects_degenerate_success_overrides():
    from repro.core.config import LumiereConfig

    protocol = ProtocolConfig(n=4)
    with pytest.raises(ConfigurationError, match="success_qcs_override"):
        LumiereConfig(protocol=protocol, success_qcs_override=0)
    with pytest.raises(ConfigurationError, match="success_leaders_override"):
        LumiereConfig(protocol=protocol, success_leaders_override=0)


def test_scenario_metrics_expose_payload_identity():
    """Envelope payload digests roll up into distinct-payload accounting."""
    result = _run("counting")
    metrics = result.metrics
    assert metrics.distinct_payloads_sent > 0
    assert metrics.distinct_payloads_sent < metrics.total_honest_messages
    # Broadcast fan-out means each distinct payload averages > 1 envelope.
    assert metrics.broadcast_amplification > 1.0


def test_backends_produce_identical_decisions_and_stay_safe():
    results = {name: _run(name) for name in ALL_BACKENDS}
    decision_counts = {name: r.honest_decisions() for name, r in results.items()}
    assert len(set(decision_counts.values())) == 1, decision_counts
    for result in results.values():
        assert result.ledgers_are_consistent()
        assert result.committed_blocks() > 0
    # Counting genuinely avoids recomputation; hashing computes every
    # request.  A verify_batch counts as ONE call however many shares it
    # hashes, so hashing's computes exceed its calls by exactly the
    # per-share dispatches that batched combine amortised away.
    counting = results["counting"].crypto_backend
    hashing = results["hashing"].crypto_backend
    assert counting.digest_computes < counting.digest_calls
    saved = hashing.batched_shares - hashing.batch_verifies
    assert hashing.batch_verifies > 0  # QCs formed, so combine batched
    assert hashing.digest_computes == hashing.digest_calls + saved


def test_spec_key_distinguishes_backends():
    base = ScenarioConfig(n=4, seed=0, duration=40.0)
    counting = ScenarioConfig(n=4, seed=0, duration=40.0, crypto_backend="counting")
    assert spec_key(base) != spec_key(counting)
    assert spec_key(base) == spec_key(ScenarioConfig(n=4, seed=0, duration=40.0))
