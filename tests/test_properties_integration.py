"""Property-based integration tests.

Hypothesis drives randomised fault assignments, network delays and system
sizes through short end-to-end runs, and asserts the two properties that
must hold in *every* execution: safety (prefix-consistent honest ledgers)
and honest view monotonicity.  Liveness is only asserted when the scenario
is one in which the paper guarantees it (GST well before the end of the
run).
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.adversary.behaviours import (
    CrashBehaviour,
    EquivocatingBehaviour,
    MuteViewSyncBehaviour,
    SilentLeaderBehaviour,
    SlowLeaderBehaviour,
)
from repro.adversary.corruption import CorruptionPlan
from repro.experiments.scenario import ScenarioConfig, run_scenario
from repro.sim.network import FixedDelay, PreGSTChaos, UniformDelay


_BEHAVIOURS = [
    SilentLeaderBehaviour,
    EquivocatingBehaviour,
    MuteViewSyncBehaviour,
    lambda: SlowLeaderBehaviour(delay=5.0),
    lambda: CrashBehaviour(at_time=20.0),
]

_slow_settings = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def _build_plan(config, corrupted_id, behaviour_index):
    behaviour_factory = _BEHAVIOURS[behaviour_index % len(_BEHAVIOURS)]
    return CorruptionPlan.uniform(config, [corrupted_id], behaviour_factory)


@_slow_settings
@given(
    pacemaker=st.sampled_from(["lumiere", "lp22", "fever"]),
    corrupted_id=st.integers(min_value=0, max_value=3),
    behaviour_index=st.integers(min_value=0, max_value=len(_BEHAVIOURS) - 1),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_safety_and_monotonicity_under_random_single_fault(
    pacemaker, corrupted_id, behaviour_index, seed
):
    config = ScenarioConfig(
        n=4,
        pacemaker=pacemaker,
        delta=1.0,
        actual_delay=0.1,
        gst=0.0,
        duration=120.0,
        seed=seed,
        record_trace=False,
    )
    config.corruption = _build_plan(config.protocol_config(), corrupted_id, behaviour_index)
    result = run_scenario(config)
    assert result.ledgers_are_consistent()
    for pid in result.corruption.honest_ids:
        views = [view for _, view in result.metrics.view_entries.get(pid, [])]
        assert views == sorted(views)


@_slow_settings
@given(
    pacemaker=st.sampled_from(["lumiere", "fever", "cogsworth", "backoff"]),
    low=st.floats(min_value=0.01, max_value=0.3),
    spread=st.floats(min_value=0.0, max_value=0.5),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_liveness_under_random_symmetric_delays(pacemaker, low, spread, seed):
    """With no faults and GST=0, every protocol keeps deciding under any
    delay distribution bounded by Delta."""
    high = min(low + spread, 1.0)
    config = ScenarioConfig(
        n=4,
        pacemaker=pacemaker,
        delta=1.0,
        actual_delay=high,
        gst=0.0,
        duration=150.0,
        seed=seed,
        record_trace=False,
        delay_model=UniformDelay(low, high),
    )
    result = run_scenario(config)
    assert result.honest_decisions() > 5
    assert result.ledgers_are_consistent()


@_slow_settings
@given(
    gst=st.floats(min_value=5.0, max_value=40.0),
    pre_max=st.floats(min_value=5.0, max_value=60.0),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_lumiere_recovers_after_random_gst(gst, pre_max, seed):
    config = ScenarioConfig(
        n=4,
        pacemaker="lumiere",
        delta=1.0,
        actual_delay=0.1,
        gst=gst,
        duration=gst + 250.0,
        seed=seed,
        record_trace=False,
        delay_model=PreGSTChaos(FixedDelay(0.1), pre_gst_max_delay=pre_max),
    )
    result = run_scenario(config)
    post_gst = [d for d in result.metrics.honest_decisions() if d.time > gst]
    assert len(post_gst) > 3
    assert result.ledgers_are_consistent()


@_slow_settings
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_lumiere_honest_clocks_end_close_together(seed):
    """After a long synchronous fault-free run, the (f+1)-st honest clock gap
    is below Gamma (the steady-state synchronisation Lemma 5.9 maintains)."""
    config = ScenarioConfig(
        n=4,
        pacemaker="lumiere",
        delta=1.0,
        actual_delay=0.1,
        gst=0.0,
        duration=100.0,
        seed=seed,
        record_trace=False,
    )
    result = run_scenario(config)
    gamma = 2 * (result.protocol_config.x + 2) * result.config.delta
    clocks = sorted((r.clock.read() for r in result.honest_replicas), reverse=True)
    f = result.protocol_config.f
    assert clocks[0] - clocks[f] <= gamma + 1e-6
