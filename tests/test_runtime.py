"""Unit tests for the runtime seam: SimRuntime, AsyncioRuntime, codec, dispatch."""

from __future__ import annotations

import asyncio
from dataclasses import dataclass

import pytest

from repro.consensus.messages import ConsensusMessage, NewView, Proposal, Vote
from repro.core.messages import ViewMessage
from repro.crypto.backend import make_backend, set_default_backend
from repro.errors import ConfigurationError, SimulationError
from repro.experiments.scenario import ScenarioConfig, build_scenario
from repro.runtime import (
    AsyncioRuntime,
    LocalTransport,
    MonotonicClock,
    RuntimeContext,
    SimRuntime,
    VirtualClock,
    WireCodecError,
    default_codec,
)
from repro.runtime.codec import WireCodec
from repro.sim.clock import LocalClock
from repro.sim.events import Simulator
from repro.sim.network import Envelope, FixedDelay, Network, NetworkConfig


# ----------------------------------------------------------------------
# SimRuntime: thin adapter over Simulator + Network
# ----------------------------------------------------------------------
class _Sink:
    def __init__(self, pid):
        self.pid = pid
        self.received = []

    def deliver(self, payload, sender):
        self.received.append((payload, sender))


def _sim_runtime():
    sim = Simulator(seed=0)
    network = Network(sim, NetworkConfig(delta=1.0), delay_model=FixedDelay(0.1))
    return sim, network, SimRuntime(sim, network)


def test_sim_runtime_timers_and_messaging():
    sim, network, runtime = _sim_runtime()
    a, b = _Sink(0), _Sink(1)
    runtime.register(a)
    runtime.register(b)
    assert list(runtime.process_ids) == [0, 1]

    fired = []
    handle = runtime.set_timer(0.5, lambda: fired.append("t"))
    assert handle.pending
    runtime.call_after(0.2, lambda: fired.append("f"))
    runtime.send(0, 1, "hello")
    runtime.broadcast(1, "all")
    sim.run(until=2.0)
    assert fired == ["f", "t"]
    assert ("hello", 0) in b.received
    assert ("all", 1) in a.received and ("all", 1) in b.received
    assert runtime.now == sim.now == 2.0


def test_sim_runtime_timer_cancellation():
    sim, _, runtime = _sim_runtime()
    fired = []
    handle = runtime.set_timer_at(1.0, lambda: fired.append("x"))
    handle.cancel()
    assert not handle.pending
    sim.run(until=2.0)
    assert fired == []


def test_sim_context_runtime_is_cached():
    from repro.sim.process import SimContext

    sim = Simulator(seed=0)
    network = Network(sim, NetworkConfig(delta=1.0))
    ctx = SimContext(sim=sim, network=network)
    assert ctx.runtime is ctx.runtime
    assert ctx.runtime.sim is sim
    assert ctx.runtime.network is network


# ----------------------------------------------------------------------
# AsyncioRuntime, virtual clock
# ----------------------------------------------------------------------
def _virtual_runtime(**transport_kwargs):
    transport = LocalTransport(**transport_kwargs)
    return AsyncioRuntime(transport, clock=VirtualClock()), transport


def test_virtual_runtime_orders_timers_like_the_simulator():
    runtime, _ = _virtual_runtime()
    fired = []
    runtime.set_timer(1.0, lambda: fired.append("b"))
    runtime.set_timer(0.5, lambda: fired.append("a"))
    runtime.set_timer(1.0, lambda: fired.append("c"))  # same time: insertion order
    runtime.run_sync(until=2.0)
    assert fired == ["a", "b", "c"]
    assert runtime.now == 2.0
    assert runtime.events_processed == 3


def test_virtual_runtime_cancellation_and_validation():
    runtime, _ = _virtual_runtime()
    fired = []
    handle = runtime.set_timer(0.5, lambda: fired.append("x"))
    handle.cancel()
    assert not handle.pending
    with pytest.raises(SimulationError):
        runtime.set_timer(-1.0, lambda: None)
    runtime.run_sync(until=1.0)
    with pytest.raises(SimulationError):
        runtime.set_timer_at(0.25, lambda: None)  # before now
    assert fired == []


def test_virtual_runtime_delivers_through_local_transport():
    runtime, transport = _virtual_runtime(delay=0.1)
    a, b = _Sink(0), _Sink(1)
    runtime.register(a)
    runtime.register(b)
    runtime.broadcast(0, "ping")
    runtime.run_sync(until=1.0)
    # Self-copy immediate, peer copy after the transport delay.
    assert a.received == [("ping", 0)]
    assert b.received == [("ping", 0)]
    assert transport.messages_sent == 2
    assert transport.messages_delivered == 2


def test_virtual_runtime_zero_delay_chain_trips_budget():
    runtime, _ = _virtual_runtime()

    def rearm():
        runtime.call_after(0.0, rearm)

    runtime.call_after(0.0, rearm)
    with pytest.raises(SimulationError):
        runtime.run_sync(until=1.0)


def test_local_clock_runs_on_asyncio_runtime():
    runtime, _ = _virtual_runtime()
    clock = LocalClock(runtime)
    fired = []
    clock.schedule_at_local(2.0, lambda: fired.append(clock.read()))
    clock.pause()
    runtime.run_sync(until=1.0)
    assert fired == []  # paused: local time frozen below the target
    clock.unpause()
    clock.bump_to(2.0)
    runtime.run_sync(until=1.5)
    assert len(fired) == 1 and fired[0] >= 2.0


def test_wall_clock_runtime_requires_loop_for_timers():
    transport = LocalTransport()
    runtime = AsyncioRuntime(transport, clock=MonotonicClock())
    with pytest.raises(RuntimeError):
        runtime.set_timer(0.1, lambda: None)  # no running loop
    with pytest.raises(ConfigurationError):
        runtime.run_sync(until=0.1)  # run_sync is virtual-only


def test_wall_clock_set_timer_at_clamps_past_times():
    # The monotonic clock keeps moving between a caller computing
    # max(target, now) and the scheduling call; a hair-in-the-past target
    # must fire immediately instead of raising (unlike virtual mode, where
    # time cannot advance in between and a past target is a real bug).
    async def scenario():
        runtime = AsyncioRuntime(LocalTransport(), clock=MonotonicClock())
        fired = []
        runtime.set_timer_at(runtime.now - 1.0, lambda: fired.append("past"))
        await runtime.run(until=0.1)
        return fired

    assert asyncio.run(scenario()) == ["past"]


def test_wall_clock_run_rejects_max_events():
    async def scenario():
        runtime = AsyncioRuntime(LocalTransport(), clock=MonotonicClock())
        with pytest.raises(ConfigurationError):
            await runtime.run(until=0.05, max_events=10)

    asyncio.run(scenario())


def test_wall_clock_runtime_fires_timers_and_delivers():
    async def scenario():
        transport = LocalTransport(delay=0.01)
        runtime = AsyncioRuntime(transport, clock=MonotonicClock())
        sink = _Sink(0)
        runtime.register(sink)
        fired = []
        runtime.set_timer(0.02, lambda: fired.append("t"))
        cancelled = runtime.set_timer(0.02, lambda: fired.append("never"))
        cancelled.cancel()
        runtime.send(0, 0, "self")
        await runtime.run(until=0.2)
        return fired, sink.received

    fired, received = asyncio.run(scenario())
    assert fired == ["t"]
    assert received == [("self", 0)]


# ----------------------------------------------------------------------
# Wire codec
# ----------------------------------------------------------------------
def test_codec_roundtrips_a_full_proposal():
    set_default_backend(make_backend("hashing"))
    result = build_scenario(
        ScenarioConfig(n=4, pacemaker="lumiere", duration=20.0, record_trace=False)
    )
    for replica in result.replicas.values():
        replica.start()
    result.simulator.run(until=20.0)

    codec = default_codec()
    replica = result.replicas[0]
    qc = replica.safety.high_qc
    assert qc is not None, "scenario produced no QC to round-trip"
    block = replica.tree.get(qc.block_id)
    proposal = Proposal(view=qc.view + 1, block=block, justify=qc)

    frame = codec.encode_frame(0, proposal)
    sender, decoded = codec.decode_body(frame[4:])
    assert sender == 0
    assert decoded == proposal
    assert decoded.justify.signers == qc.signers
    assert isinstance(decoded.justify.signers, frozenset)
    assert isinstance(decoded.block.payload, tuple)
    # The recomputed block id matches: content-derived under the same backend.
    assert decoded.block.block_id == block.block_id


def test_codec_roundtrips_pacemaker_messages():
    set_default_backend(make_backend("hashing"))
    from repro.crypto.signatures import PKI
    from repro.crypto.threshold import ThresholdScheme

    pki, keys = PKI.setup(range(4))
    scheme = ThresholdScheme(pki)
    partial = scheme.partial_sign(keys[2], ("lumiere-view", 7))
    message = ViewMessage(view=7, partial=partial)
    codec = default_codec()
    frame = codec.encode_frame(2, message)
    sender, decoded = codec.decode_body(frame[4:])
    assert sender == 2 and decoded == message
    # The share still verifies after crossing the wire.
    assert scheme.verify_partial(decoded.partial, ("lumiere-view", 7))


def test_codec_knows_every_library_message_type():
    names = set(default_codec().registered_names)
    assert {
        "NewView", "Proposal", "Vote", "QCAnnounce",
        "ViewMessage", "ViewCertificate", "EpochViewMessage",
        "FeverViewMessage", "LP22EpochViewMessage", "WishMessage",
        "ViewChangeMessage", "Block", "QuorumCertificate",
        "PartialSignature", "ThresholdSignature", "Signature",
    } <= names


def test_codec_rejects_unregistered_and_malformed():
    codec = WireCodec()

    @dataclass(frozen=True)
    class Unregistered:
        x: int

    with pytest.raises(WireCodecError):
        codec.pack(Unregistered(1))
    with pytest.raises(WireCodecError):
        codec.pack(object())
    with pytest.raises(WireCodecError):
        codec.unpack({"__class__": "Nope", "f": {}})
    with pytest.raises(WireCodecError):
        codec.decode_body(b"not json")

    codec.register(Unregistered)
    assert codec.unpack(codec.pack(Unregistered(5))) == Unregistered(5)
    with pytest.raises(WireCodecError):
        codec.register(type("Unregistered", (), {}))  # name collision, not a dataclass


# ----------------------------------------------------------------------
# Dispatch tables (replica routing + engine handlers)
# ----------------------------------------------------------------------
def _fresh_replica():
    result = build_scenario(
        ScenarioConfig(n=4, pacemaker="lumiere", duration=10.0, record_trace=False)
    )
    return result.replicas[0]


def test_replica_routes_by_concrete_type_and_caches():
    replica = _fresh_replica()
    seen = []
    replica.engine.on_message = lambda m, s: seen.append(("engine", m))
    replica.pacemaker.on_message = lambda m, s: seen.append(("pacemaker", m))

    nv = NewView(view=0, high_qc=None)
    replica.on_message(nv, 1)
    vm = ViewMessage(view=0, partial=None)
    replica.on_message(vm, 2)
    assert [kind for kind, _ in seen] == ["engine", "pacemaker"]
    assert set(replica._routes) == {NewView, ViewMessage}
    # Second delivery of a known type goes straight through the cache.
    replica.on_message(NewView(view=1, high_qc=None), 3)
    assert [kind for kind, _ in seen] == ["engine", "pacemaker", "engine"]


def test_engine_dispatch_handles_subclasses_and_unknowns():
    replica = _fresh_replica()
    engine = replica.engine

    @dataclass(frozen=True)
    class FancyVote(Vote):
        pass

    @dataclass(frozen=True)
    class Mystery(ConsensusMessage):
        pass

    calls = []
    engine._handle_vote = lambda m, s: calls.append(m)
    engine._handlers[Vote] = engine._handle_vote  # rebind after monkeypatch

    engine.on_message(FancyVote(view=0, block_id="b", partial=None), 1)
    assert calls and isinstance(calls[0], FancyVote)
    assert engine._handlers[FancyVote] is engine._handle_vote

    engine.on_message(Mystery(view=0), 1)  # ignored, cached as None
    assert engine._handlers[Mystery] is None
    engine.on_message(Mystery(view=1), 2)  # still ignored via cache
    assert len(calls) == 1


# ----------------------------------------------------------------------
# Tuple-backed Envelope
# ----------------------------------------------------------------------
def test_envelope_is_tuple_backed_and_keyword_compatible():
    positional = Envelope(1, 0, 1, "p", 0.0, 0.5, None)
    keyword = Envelope(
        msg_id=1, sender=0, recipient=1, payload="p",
        send_time=0.0, deliver_time=0.5, payload_digest=None,
    )
    assert positional == keyword
    assert isinstance(positional, tuple)
    assert positional.payload == "p" and positional.deliver_time == 0.5
    assert not positional.is_self_message
    assert Envelope(2, 3, 3, "x", 0.0, 0.0).is_self_message
