"""Unit tests for the partial-synchrony network model."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.sim.events import Simulator
from repro.sim.network import (
    AdversarialDelay,
    Envelope,
    FixedDelay,
    Network,
    NetworkConfig,
    PreGSTChaos,
    TargetedDelay,
    UniformDelay,
)


class Sink:
    """Minimal process: records (payload, sender, time) deliveries."""

    def __init__(self, pid: int, sim: Simulator) -> None:
        self.pid = pid
        self.sim = sim
        self.received: list[tuple[object, int, float]] = []

    def deliver(self, payload, sender):
        self.received.append((payload, sender, self.sim.now))


def build(n=3, gst=0.0, delta=1.0, actual=0.1, model=None):
    sim = Simulator(seed=1)
    net = Network(sim, NetworkConfig(delta=delta, gst=gst, actual_delay=actual), model)
    sinks = [Sink(i, sim) for i in range(n)]
    for sink in sinks:
        net.register(sink)
    return sim, net, sinks


# ----------------------------------------------------------------------
# Configuration validation
# ----------------------------------------------------------------------
def test_config_rejects_nonpositive_delta():
    with pytest.raises(ConfigurationError):
        NetworkConfig(delta=0.0)


def test_config_rejects_actual_delay_above_delta():
    with pytest.raises(ConfigurationError):
        NetworkConfig(delta=1.0, actual_delay=2.0)


def test_config_rejects_negative_gst():
    with pytest.raises(ConfigurationError):
        NetworkConfig(delta=1.0, gst=-1.0)


def test_fixed_delay_rejects_negative():
    with pytest.raises(ConfigurationError):
        FixedDelay(-0.5)


def test_uniform_delay_rejects_bad_range():
    with pytest.raises(ConfigurationError):
        UniformDelay(2.0, 1.0)


def test_targeted_delay_rejects_bad_direction():
    with pytest.raises(ConfigurationError):
        TargetedDelay(FixedDelay(0.1), targets=[0], target_delay=1.0, direction="sideways")


# ----------------------------------------------------------------------
# Delivery semantics
# ----------------------------------------------------------------------
def test_point_to_point_delivery_with_fixed_delay():
    sim, net, sinks = build(model=FixedDelay(0.25))
    net.send(0, 1, "hello")
    sim.run()
    assert sinks[1].received == [("hello", 0, pytest.approx(0.25))]


def test_self_message_delivered_immediately():
    sim, net, sinks = build(model=FixedDelay(0.9))
    net.send(2, 2, "note-to-self")
    sim.run()
    assert sinks[2].received[0][2] == pytest.approx(0.0)


def test_broadcast_reaches_everyone_including_sender():
    sim, net, sinks = build(n=4)
    net.broadcast(1, "ping")
    sim.run()
    for sink in sinks:
        assert [payload for payload, _, _ in sink.received] == ["ping"]


def test_broadcast_can_exclude_sender():
    sim, net, sinks = build(n=3)
    net.broadcast(0, "ping", include_self=False)
    sim.run()
    assert sinks[0].received == []
    assert len(sinks[1].received) == 1


def test_multicast_targets_only_listed_recipients():
    sim, net, sinks = build(n=4)
    net.multicast(0, [1, 3], "sel")
    sim.run()
    assert len(sinks[1].received) == 1
    assert len(sinks[3].received) == 1
    assert sinks[2].received == []


def test_unknown_recipient_rejected():
    sim, net, sinks = build()
    with pytest.raises(SimulationError):
        net.send(0, 99, "nobody")


def test_duplicate_registration_rejected():
    sim, net, sinks = build()
    with pytest.raises(SimulationError):
        net.register(sinks[0])


# ----------------------------------------------------------------------
# The partial synchrony guarantee
# ----------------------------------------------------------------------
def test_post_gst_messages_respect_delta_bound():
    slow = AdversarialDelay(lambda info, sim: 100.0, name="always-slow")
    sim, net, sinks = build(gst=0.0, delta=1.0, model=slow)
    net.send(0, 1, "bounded")
    sim.run()
    assert sinks[1].received[0][2] == pytest.approx(1.0)


def test_pre_gst_messages_delivered_by_gst_plus_delta():
    slow = AdversarialDelay(lambda info, sim: 1000.0, name="always-slow")
    sim, net, sinks = build(gst=50.0, delta=2.0, model=slow)
    net.send(0, 1, "eventually")
    sim.run()
    assert sinks[1].received[0][2] == pytest.approx(52.0)


def test_pre_gst_chaos_uses_post_model_after_gst():
    model = PreGSTChaos(FixedDelay(0.1), pre_gst_max_delay=40.0)
    sim, net, sinks = build(gst=10.0, delta=1.0, model=model)
    sim.run(until=10.0)
    net.send(0, 1, "after-gst")
    sim.run()
    assert sinks[1].received[0][2] == pytest.approx(10.1)


def test_targeted_delay_slows_only_targets():
    model = TargetedDelay(FixedDelay(0.1), targets=[2], target_delay=0.9, direction="to")
    sim, net, sinks = build(n=3, model=model)
    net.send(0, 1, "fast")
    net.send(0, 2, "slow")
    sim.run()
    assert sinks[1].received[0][2] == pytest.approx(0.1)
    assert sinks[2].received[0][2] == pytest.approx(0.9)


def test_uniform_delay_stays_within_range():
    sim, net, sinks = build(n=2, model=UniformDelay(0.2, 0.4), delta=1.0)
    for _ in range(20):
        net.send(0, 1, "x")
    sim.run()
    for _, _, arrival in sinks[1].received:
        assert 0.2 - 1e-9 <= arrival <= 0.4 + 1e-9


# ----------------------------------------------------------------------
# The min_delay floor (zero-delay livelock guard)
# ----------------------------------------------------------------------
def test_config_rejects_negative_min_delay():
    with pytest.raises(ConfigurationError):
        NetworkConfig(min_delay=-0.1)


def test_config_rejects_min_delay_above_delta():
    with pytest.raises(ConfigurationError):
        NetworkConfig(delta=1.0, actual_delay=1.0, min_delay=2.0)


def test_config_rejects_min_delay_above_actual_delay():
    """A floor above the actual post-GST bound is a contradiction, not a tweak."""
    with pytest.raises(ConfigurationError, match="actual_delay"):
        NetworkConfig(delta=1.0, actual_delay=0.1, min_delay=0.5)


def test_config_accepts_min_delay_equal_to_actual_delay():
    config = NetworkConfig(delta=1.0, actual_delay=0.1, min_delay=0.1)
    assert config.min_delay == pytest.approx(0.1)


def test_min_delay_floors_a_zero_delay_model():
    sim = Simulator(seed=1)
    net = Network(
        sim,
        NetworkConfig(delta=1.0, actual_delay=0.1, min_delay=0.05),
        FixedDelay(0.0),
    )
    sinks = [Sink(i, sim) for i in range(2)]
    for sink in sinks:
        net.register(sink)
    net.send(0, 1, "floored")
    sim.run()
    assert sinks[1].received[0][2] == pytest.approx(0.05)


def test_min_delay_does_not_slow_self_messages():
    sim = Simulator(seed=1)
    net = Network(sim, NetworkConfig(actual_delay=0.5, min_delay=0.5), FixedDelay(0.0))
    sink = Sink(0, sim)
    net.register(sink)
    net.send(0, 0, "to-self")
    sim.run()
    assert sink.received[0][2] == pytest.approx(0.0)


class PingPong(Sink):
    """Replies to every delivery, creating an unbounded message chain."""

    def __init__(self, pid: int, sim: Simulator, net: Network) -> None:
        super().__init__(pid, sim)
        self.net = net

    def deliver(self, payload, sender):
        super().deliver(payload, sender)
        self.net.send(self.pid, sender, payload)


def test_zero_delay_model_without_floor_raises_instead_of_hanging():
    sim = Simulator(seed=1)
    sim.MAX_EVENTS_PER_TIMESTAMP = 100
    net = Network(sim, NetworkConfig(delta=1.0, actual_delay=0.1), FixedDelay(0.0))
    players = [PingPong(i, sim, net) for i in range(2)]
    for player in players:
        net.register(player)
    net.send(0, 1, "ball")
    with pytest.raises(SimulationError, match="timestamp"):
        sim.run(until=5.0)


def test_zero_delay_model_with_floor_terminates():
    sim = Simulator(seed=1)
    net = Network(
        sim,
        NetworkConfig(delta=1.0, actual_delay=0.1, min_delay=0.01),
        FixedDelay(0.0),
    )
    players = [PingPong(i, sim, net) for i in range(2)]
    for player in players:
        net.register(player)
    net.send(0, 1, "ball")
    sim.run(until=5.0)
    assert sim.now == 5.0  # virtual time advances; run(until=...) returns


# ----------------------------------------------------------------------
# Observation hooks
# ----------------------------------------------------------------------
def test_send_and_deliver_listeners_fire():
    sim, net, sinks = build()
    sent: list[Envelope] = []
    delivered: list[Envelope] = []
    net.send_listeners.append(sent.append)
    net.deliver_listeners.append(delivered.append)
    net.send(0, 1, "observed")
    sim.run()
    assert len(sent) == 1 and len(delivered) == 1
    assert sent[0].payload == "observed"
    assert net.messages_sent == 1
    assert net.messages_delivered == 1


def test_envelope_identifies_self_messages():
    sim, net, sinks = build()
    envelope = net.send(1, 1, "me")
    assert envelope.is_self_message
    envelope = net.send(1, 2, "you")
    assert not envelope.is_self_message
