"""Unit and property tests for the local clock (pause / bump semantics)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.clock import LocalClock
from repro.sim.events import Simulator


def make_clock(initial: float = 0.0) -> tuple[Simulator, LocalClock]:
    sim = Simulator()
    return sim, LocalClock(sim, initial=initial)


def test_clock_advances_with_simulation_time():
    sim, clock = make_clock()
    sim.schedule(5.0, lambda: None)
    sim.run()
    assert clock.read() == pytest.approx(5.0)


def test_pause_freezes_value():
    sim, clock = make_clock()
    sim.schedule(2.0, clock.pause)
    sim.schedule(10.0, lambda: None)
    sim.run()
    assert clock.read() == pytest.approx(2.0)
    assert clock.paused


def test_unpause_resumes_from_frozen_value():
    sim, clock = make_clock()
    sim.schedule(2.0, clock.pause)
    sim.schedule(5.0, clock.unpause)
    sim.schedule(8.0, lambda: None)
    sim.run()
    # 2 units before the pause + 3 units after the unpause.
    assert clock.read() == pytest.approx(5.0)


def test_pause_and_unpause_are_idempotent():
    sim, clock = make_clock()
    clock.pause()
    clock.pause()
    clock.unpause()
    clock.unpause()
    assert not clock.paused


def test_bump_moves_clock_forward():
    sim, clock = make_clock()
    assert clock.bump_to(10.0) is True
    assert clock.read() == pytest.approx(10.0)


def test_bump_never_moves_clock_backwards():
    sim, clock = make_clock()
    clock.bump_to(10.0)
    assert clock.bump_to(5.0) is False
    assert clock.read() == pytest.approx(10.0)


def test_bump_does_not_unpause():
    sim, clock = make_clock()
    clock.pause()
    clock.bump_to(4.0)
    assert clock.paused
    assert clock.read() == pytest.approx(4.0)


def test_local_timer_fires_at_target():
    sim, clock = make_clock()
    fired = []
    clock.schedule_at_local(3.0, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [pytest.approx(3.0)]


def test_local_timer_fires_immediately_if_target_already_passed():
    sim, clock = make_clock()
    clock.bump_to(5.0)
    fired = []
    clock.schedule_at_local(3.0, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [pytest.approx(0.0)]


def test_local_timer_delayed_by_pause():
    sim, clock = make_clock()
    fired = []
    clock.schedule_at_local(3.0, lambda: fired.append(sim.now))
    sim.schedule(1.0, clock.pause)
    sim.schedule(6.0, clock.unpause)
    sim.schedule(20.0, lambda: None)
    sim.run()
    # 1 unit elapsed before the pause; the remaining 2 local units elapse
    # after the unpause at t=6, so the timer fires at t=8.
    assert fired == [pytest.approx(8.0)]


def test_local_timer_fires_when_bump_crosses_target():
    sim, clock = make_clock()
    fired = []
    clock.schedule_at_local(10.0, lambda: fired.append(sim.now))
    sim.schedule(1.0, lambda: clock.bump_to(12.0))
    sim.run()
    assert fired == [pytest.approx(1.0)]


def test_cancelled_timer_never_fires():
    sim, clock = make_clock()
    fired = []
    timer = clock.schedule_at_local(3.0, lambda: fired.append(1))
    timer.cancel()
    sim.run()
    assert fired == []


def test_timer_not_fired_while_paused_even_if_simulation_advances():
    sim, clock = make_clock()
    fired = []
    clock.pause()
    clock.schedule_at_local(1.0, lambda: fired.append(1))
    sim.schedule(50.0, lambda: None)
    sim.run()
    assert fired == []


def test_bump_counts_are_tracked():
    sim, clock = make_clock()
    clock.bump_to(1.0)
    clock.bump_to(2.0)
    clock.bump_to(1.5)  # no-op
    assert clock.bump_count == 2


# ----------------------------------------------------------------------
# Property-based tests
# ----------------------------------------------------------------------
_operations = st.lists(
    st.one_of(
        st.tuples(st.just("advance"), st.floats(min_value=0.0, max_value=10.0)),
        st.tuples(st.just("bump"), st.floats(min_value=0.0, max_value=50.0)),
        st.tuples(st.just("pause"), st.just(0.0)),
        st.tuples(st.just("unpause"), st.just(0.0)),
    ),
    min_size=1,
    max_size=30,
)


@settings(max_examples=60, deadline=None)
@given(ops=_operations)
def test_clock_is_monotonic_under_any_operation_sequence(ops):
    """lc(p, t2) >= lc(p, t1) for t2 >= t1 (Lemma 5.2's clock part)."""
    sim = Simulator()
    clock = LocalClock(sim)
    readings = [clock.read()]
    for kind, value in ops:
        if kind == "advance":
            sim.run(until=sim.now + value)
        elif kind == "bump":
            clock.bump_to(value)
        elif kind == "pause":
            clock.pause()
        elif kind == "unpause":
            clock.unpause()
        readings.append(clock.read())
    assert all(b >= a - 1e-9 for a, b in zip(readings, readings[1:]))


@settings(max_examples=60, deadline=None)
@given(ops=_operations, target=st.floats(min_value=0.1, max_value=60.0))
def test_timer_fires_only_once_clock_reaches_target(ops, target):
    """A local timer never fires while the clock is below its target."""
    sim = Simulator()
    clock = LocalClock(sim)
    fired_at_clock_value = []
    clock.schedule_at_local(target, lambda: fired_at_clock_value.append(clock.read()))
    for kind, value in ops:
        if kind == "advance":
            sim.run(until=sim.now + value)
        elif kind == "bump":
            clock.bump_to(value)
        elif kind == "pause":
            clock.pause()
        elif kind == "unpause":
            clock.unpause()
    sim.run()
    for reading in fired_at_clock_value:
        assert reading >= target - 1e-6
    assert len(fired_at_clock_value) <= 1
