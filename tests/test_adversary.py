"""Unit tests for corruption plans, behaviours and attack helpers."""

from __future__ import annotations

import pytest

from repro.adversary.attacks import (
    epoch_tail_corruption,
    lp22_tail_attack_plan,
    spread_corruption,
    worst_case_clock_dispersion_model,
)
from repro.adversary.behaviours import (
    Behaviour,
    CrashBehaviour,
    EquivocatingBehaviour,
    HonestBehaviour,
    MuteViewSyncBehaviour,
    SilentLeaderBehaviour,
    SlowLeaderBehaviour,
    WithholdQCBehaviour,
)
from repro.adversary.corruption import CorruptionPlan
from repro.config import ProtocolConfig
from repro.errors import ConfigurationError
from repro.sim.network import PreGSTChaos


def test_honest_behaviour_never_deviates():
    behaviour = HonestBehaviour()
    assert not behaviour.is_byzantine
    assert not behaviour.suppress_proposal(1)
    assert not behaviour.suppress_vote(1)
    assert not behaviour.suppress_qc_broadcast(1)
    assert not behaviour.suppress_view_sync("view", 1)
    assert behaviour.proposal_delay(1) == 0.0
    assert behaviour.crash_time() is None


def test_silent_leader_suppresses_proposals_and_qcs():
    behaviour = SilentLeaderBehaviour()
    assert behaviour.is_byzantine
    assert behaviour.suppress_proposal(3)
    assert behaviour.suppress_qc_broadcast(3)
    assert not behaviour.suppress_vote(3)


def test_slow_leader_delays_by_configured_amount():
    behaviour = SlowLeaderBehaviour(delay=2.5)
    assert behaviour.proposal_delay(0) == 2.5
    assert behaviour.qc_broadcast_delay(0) == 2.5


def test_crash_behaviour_reports_crash_time():
    behaviour = CrashBehaviour(at_time=12.0)
    assert behaviour.crash_time() == 12.0
    assert behaviour.is_byzantine


def test_other_behaviour_flags():
    assert EquivocatingBehaviour().equivocate(1)
    assert MuteViewSyncBehaviour().suppress_view_sync("epoch_view", 5)
    assert WithholdQCBehaviour().suppress_qc_broadcast(2)


def test_corruption_plan_respects_resilience_bound():
    config = ProtocolConfig(n=4)
    with pytest.raises(ConfigurationError):
        CorruptionPlan.uniform(config, [0, 1], SilentLeaderBehaviour)


def test_corruption_plan_rejects_unknown_ids():
    config = ProtocolConfig(n=4)
    with pytest.raises(ConfigurationError):
        CorruptionPlan(config=config, behaviours={9: SilentLeaderBehaviour()})


def test_corruption_plan_queries():
    config = ProtocolConfig(n=7)
    plan = CorruptionPlan.uniform(config, [1, 4], SilentLeaderBehaviour)
    assert plan.f_actual == 2
    assert plan.corrupted_ids == {1, 4}
    assert plan.honest_ids == {0, 2, 3, 5, 6}
    assert isinstance(plan.behaviour_for(1), SilentLeaderBehaviour)
    assert isinstance(plan.behaviour_for(0), HonestBehaviour)
    assert plan.describe() == {1: "SilentLeaderBehaviour", 4: "SilentLeaderBehaviour"}


def test_none_plan_has_no_faults():
    config = ProtocolConfig(n=4)
    plan = CorruptionPlan.none(config)
    assert plan.f_actual == 0
    assert plan.honest_ids == set(range(4))


def test_spread_corruption_respects_f_actual_and_avoid():
    config = ProtocolConfig(n=13)
    plan = spread_corruption(config, 3, SilentLeaderBehaviour, avoid={0})
    assert plan.f_actual == 3
    assert 0 not in plan.corrupted_ids
    assert len(plan.corrupted_ids) == 3


def test_spread_corruption_zero_faults():
    config = ProtocolConfig(n=7)
    assert spread_corruption(config, 0).f_actual == 0


def test_spread_corruption_caps_at_f():
    config = ProtocolConfig(n=7)
    with pytest.raises(ConfigurationError):
        spread_corruption(config, 5)


def test_epoch_tail_corruption_targets_last_view_leader():
    config = ProtocolConfig(n=7)
    epoch_length = config.f + 1
    plan = epoch_tail_corruption(config, epoch_length=epoch_length, epoch_index=1)
    expected = (2 * epoch_length - 1) % config.n
    assert plan.corrupted_ids == {expected}


def test_lp22_tail_attack_uses_single_fault():
    config = ProtocolConfig(n=13)
    plan = lp22_tail_attack_plan(config)
    assert plan.f_actual == 1


def test_worst_case_dispersion_model_is_chaotic_before_gst():
    config = ProtocolConfig(n=4)
    model = worst_case_clock_dispersion_model(config, actual_delay=0.1)
    assert isinstance(model, PreGSTChaos)
    assert model.pre_gst_max_delay > config.delta


def test_custom_behaviour_subclass_hooks_are_picked_up():
    class OnlyViewFive(Behaviour):
        is_byzantine = True

        def suppress_vote(self, view: int) -> bool:
            return view == 5

    behaviour = OnlyViewFive()
    assert behaviour.suppress_vote(5)
    assert not behaviour.suppress_vote(6)
