"""Tests for the fault-injection subsystem: schedules, churn, and the library."""

from __future__ import annotations

from dataclasses import dataclass

import pytest

from repro.adversary.behaviours import Behaviour, ChurnBehaviour, CrashBehaviour
from repro.consensus.messages import ConsensusMessage
from repro.errors import ConfigurationError
from repro.experiments.gauntlet import build_gauntlet_config
from repro.experiments.scenario import ScenarioConfig, run_scenario
from repro.faults import (
    IntermittentSynchrony,
    MessageClassDelay,
    PartitionSchedule,
    RotatingLeaderDelay,
    available_scenarios,
    get_scenario,
    scenario_catalogue,
)
from repro.pacemakers.base import PacemakerMessage
from repro.runner import Campaign, Sweep, spec_key
from repro.sim.events import Simulator
from repro.sim.network import FixedDelay, Network, NetworkConfig


class Sink:
    """Minimal process recording (payload, sender, arrival_time) deliveries."""

    def __init__(self, pid: int, sim: Simulator) -> None:
        self.pid = pid
        self.sim = sim
        self.received: list[tuple[object, int, float]] = []

    def deliver(self, payload, sender):
        self.received.append((payload, sender, self.sim.now))


def build_network(n=4, gst=0.0, delta=1.0, actual=0.1, model=None):
    sim = Simulator(seed=1)
    net = Network(sim, NetworkConfig(delta=delta, gst=gst, actual_delay=actual), model)
    sinks = [Sink(i, sim) for i in range(n)]
    for sink in sinks:
        net.register(sink)
    return sim, net, sinks


# ----------------------------------------------------------------------
# PartitionSchedule: the partial-synchrony delivery window
# ----------------------------------------------------------------------
def partition_model(split=0.0, heal=25.0, flush=0.0, actual=0.1):
    return PartitionSchedule(
        FixedDelay(actual),
        groups=((0, 1), (2, 3)),
        split_at=split,
        heal_at=heal,
        flush_delay=flush,
    )


def test_cross_partition_messages_wait_for_the_heal():
    gst, delta, heal = 30.0, 2.0, 25.0
    sim, net, sinks = build_network(gst=gst, delta=delta, model=partition_model(heal=heal))
    send_times = (0.0, 5.0, 12.5, 24.9)
    for send_time in send_times:
        sim.run(until=send_time)
        net.send(0, 2, f"cross@{send_time}")
    sim.run()
    assert len(sinks[2].received) == len(send_times)
    for _, _, arrival in sinks[2].received:
        # Never delivered before the heal...
        assert arrival >= heal - 1e-9
        # ...and always by max(GST, heal) + Delta, per the model envelope.
        assert arrival <= max(gst, heal) + delta + 1e-9


def test_cross_partition_flush_is_clamped_to_the_envelope():
    # A huge flush delay cannot push delivery past max(GST, send) + Delta.
    gst, delta = 30.0, 2.0
    sim, net, sinks = build_network(
        gst=gst, delta=delta, model=partition_model(heal=25.0, flush=1000.0)
    )
    net.send(0, 2, "flushed")
    sim.run()
    assert sinks[2].received[0][2] == pytest.approx(gst + delta)


def test_same_group_traffic_ignores_the_partition():
    sim, net, sinks = build_network(gst=30.0, model=partition_model(heal=25.0))
    net.send(0, 1, "local")
    sim.run(until=5.0)
    assert sinks[1].received[0][2] == pytest.approx(0.1)


def test_cross_partition_traffic_after_the_heal_is_normal():
    sim, net, sinks = build_network(gst=30.0, model=partition_model(heal=25.0))
    sim.run(until=26.0)
    net.send(0, 2, "healed")
    sim.run()
    assert sinks[2].received[0][2] == pytest.approx(26.1)


def test_unassigned_processors_cross_the_split_freely():
    model = PartitionSchedule(
        FixedDelay(0.1), groups=((0,), (1,)), split_at=0.0, heal_at=50.0
    )
    sim, net, sinks = build_network(n=3, gst=60.0, model=model)
    net.send(2, 0, "observer")  # pid 2 is in no group
    sim.run(until=1.0)
    assert sinks[0].received[0][2] == pytest.approx(0.1)


def test_partition_rejects_overlapping_groups():
    with pytest.raises(ConfigurationError):
        PartitionSchedule(FixedDelay(0.1), groups=((0, 1), (1, 2)), split_at=0.0, heal_at=1.0)


def test_partition_rejects_heal_before_split():
    with pytest.raises(ConfigurationError):
        PartitionSchedule(FixedDelay(0.1), groups=((0,), (1,)), split_at=5.0, heal_at=5.0)


def test_partition_rejects_a_single_group():
    with pytest.raises(ConfigurationError):
        PartitionSchedule(FixedDelay(0.1), groups=((0, 1),), split_at=0.0, heal_at=1.0)


# ----------------------------------------------------------------------
# IntermittentSynchrony
# ----------------------------------------------------------------------
def test_intermittent_synchrony_switches_models_by_window():
    model = IntermittentSynchrony(
        calm=FixedDelay(0.1), chaotic=FixedDelay(0.8), calm_duration=10.0, chaos_duration=5.0
    )
    assert not model.in_chaos(0.0)
    assert not model.in_chaos(9.9)
    assert model.in_chaos(10.0)
    assert model.in_chaos(14.9)
    assert not model.in_chaos(15.0)  # next cycle's calm window
    assert model.in_chaos(25.0)


def test_intermittent_synchrony_is_calm_before_start():
    model = IntermittentSynchrony(
        calm=FixedDelay(0.1),
        chaotic=FixedDelay(0.8),
        calm_duration=1.0,
        chaos_duration=100.0,
        start=50.0,
    )
    assert not model.in_chaos(10.0)
    assert model.in_chaos(52.0)


def test_intermittent_synchrony_delivery():
    model = IntermittentSynchrony(
        calm=FixedDelay(0.1), chaotic=FixedDelay(0.8), calm_duration=10.0, chaos_duration=5.0
    )
    sim, net, sinks = build_network(model=model)
    net.send(0, 1, "calm")
    sim.run(until=11.0)
    net.send(0, 1, "chaos")
    sim.run()
    arrivals = [arrival for _, _, arrival in sinks[1].received]
    assert arrivals[0] == pytest.approx(0.1)
    assert arrivals[1] == pytest.approx(11.8)


def test_intermittent_synchrony_rejects_empty_windows():
    with pytest.raises(ConfigurationError):
        IntermittentSynchrony(FixedDelay(0.1), FixedDelay(0.8), 0.0, 5.0)


# ----------------------------------------------------------------------
# RotatingLeaderDelay
# ----------------------------------------------------------------------
def test_rotating_leader_delay_tracks_the_round_robin():
    model = RotatingLeaderDelay(FixedDelay(0.1), n=4, view_duration=2.0, target_delay=0.9)
    assert model.victim_at(0.0) == 0
    assert model.victim_at(1.9) == 0
    assert model.victim_at(2.0) == 1
    assert model.victim_at(9.0) == 0  # wraps around after n views


def test_rotating_leader_delay_slows_only_the_current_victim():
    model = RotatingLeaderDelay(FixedDelay(0.1), n=4, view_duration=10.0, target_delay=0.9)
    sim, net, sinks = build_network(model=model)
    net.send(1, 0, "to-victim")  # victim at t=0 is pid 0
    net.send(1, 2, "to-bystander")
    sim.run()
    assert sinks[0].received[0][2] == pytest.approx(0.9)
    assert sinks[2].received[0][2] == pytest.approx(0.1)


def test_rotating_leader_delay_supports_custom_schedules():
    model = RotatingLeaderDelay(
        FixedDelay(0.1),
        n=4,
        view_duration=1.0,
        target_delay=0.9,
        leader_fn=lambda view: (view * 2) % 4,
        name="double-stride",
    )
    assert model.victim_at(3.5) == 2
    assert "double-stride" in model.describe()


def test_rotating_leader_delay_requires_a_name_for_custom_schedules():
    with pytest.raises(ConfigurationError):
        RotatingLeaderDelay(
            FixedDelay(0.1), n=4, view_duration=1.0, target_delay=0.9, leader_fn=lambda v: 0
        )


# ----------------------------------------------------------------------
# MessageClassDelay
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FakeSyncMessage(PacemakerMessage):
    view: int = 0


@dataclass(frozen=True)
class FakeConsensusMessage(ConsensusMessage):
    pass


def test_message_class_delay_throttles_only_view_sync_traffic():
    model = MessageClassDelay(FixedDelay(0.1), match="view-sync", delay=0.9)
    sim, net, sinks = build_network(model=model)
    net.send(0, 1, FakeSyncMessage(view=3))
    net.send(0, 1, FakeConsensusMessage(view=3))
    net.send(0, 1, "plain-payload")
    sim.run()
    arrivals = sorted(arrival for _, _, arrival in sinks[1].received)
    assert arrivals == [pytest.approx(0.1), pytest.approx(0.1), pytest.approx(0.9)]


def test_message_class_delay_throttles_only_consensus_traffic():
    model = MessageClassDelay(FixedDelay(0.1), match="consensus", delay=0.9)
    sim, net, sinks = build_network(model=model)
    net.send(0, 1, FakeSyncMessage(view=3))
    net.send(0, 1, FakeConsensusMessage(view=3))
    sim.run()
    by_payload = {type(p).__name__: arrival for p, _, arrival in sinks[1].received}
    assert by_payload["FakeSyncMessage"] == pytest.approx(0.1)
    assert by_payload["FakeConsensusMessage"] == pytest.approx(0.9)


def test_message_class_delay_rejects_unknown_classes():
    with pytest.raises(ConfigurationError):
        MessageClassDelay(FixedDelay(0.1), match="gossip", delay=0.5)


# ----------------------------------------------------------------------
# Crash/recovery churn
# ----------------------------------------------------------------------
def test_default_behaviour_has_no_downtime():
    assert Behaviour().downtime_windows() == []


def test_crash_behaviour_windows_derive_from_crash_and_recover_times():
    assert CrashBehaviour(at_time=5.0).downtime_windows() == [(5.0, None)]
    assert CrashBehaviour(at_time=5.0, recover_at=9.0).downtime_windows() == [(5.0, 9.0)]


def test_churn_behaviour_generates_staggered_windows():
    churn = ChurnBehaviour(first_crash=2.0, downtime=1.0, period=10.0, cycles=3)
    assert churn.downtime_windows() == [(2.0, 3.0), (12.0, 13.0), (22.0, 23.0)]


def test_churn_behaviour_validates_windows():
    with pytest.raises(ValueError):
        ChurnBehaviour(downtime=5.0, period=5.0)
    with pytest.raises(ValueError):
        ChurnBehaviour(downtime=1.0, period=2.0, cycles=0)


def test_replica_recovers_after_a_crash_window():
    result = run_scenario(
        ScenarioConfig(n=4, duration=80.0, record_trace=False, scenario="crash_churn",
                       scenario_params={"downtime": 5.0, "period": 20.0, "cycles": 2})
    )
    # Every churned replica's last window has closed by t=80: nobody ends down.
    assert all(not replica.crashed for replica in result.replicas.values())
    assert result.ledgers_are_consistent()
    assert result.honest_decisions() > 0


# ----------------------------------------------------------------------
# The scenario library
# ----------------------------------------------------------------------
def test_library_has_at_least_ten_scenarios():
    assert len(available_scenarios()) >= 10


def test_every_scenario_is_documented():
    for entry in scenario_catalogue():
        assert entry.intent
        assert entry.claim
        for parameter in entry.parameters:
            assert parameter.doc


def test_unknown_scenario_rejected():
    with pytest.raises(ConfigurationError, match="unknown scenario"):
        get_scenario("no-such-scenario")


def test_unknown_scenario_parameter_rejected():
    config = ScenarioConfig(n=4, gst=10.0, scenario="silent_spread",
                            scenario_params={"bogus": 1})
    with pytest.raises(ConfigurationError, match="bogus"):
        run_scenario(config)


def test_scenario_excludes_explicit_delay_model():
    config = ScenarioConfig(n=4, gst=10.0, scenario="silent_spread",
                            delay_model=FixedDelay(0.1))
    with pytest.raises(ConfigurationError, match="determines the adversary"):
        run_scenario(config)


def test_partition_scenarios_require_positive_gst():
    with pytest.raises(ConfigurationError, match="gst"):
        run_scenario(ScenarioConfig(n=4, gst=0.0, scenario="split_brain_at_gst"))


def test_every_scenario_builds_a_cache_stable_effect():
    for entry in scenario_catalogue():
        config = ScenarioConfig(n=4, gst=20.0, duration=60.0, scenario=entry.name)
        delay_model, corruption = entry.build(config)
        if delay_model is not None:
            # Must survive the campaign's stable-description validation.
            description = delay_model.describe()
            assert "0x" not in description and "<lambda>" not in description
        if corruption is not None:
            assert corruption.f_actual <= config.protocol_config().f


def test_scenario_name_and_params_change_the_spec_key():
    base = ScenarioConfig(n=4, gst=20.0, scenario="silent_spread")
    other = ScenarioConfig(n=4, gst=20.0, scenario="rotating_leader_dos")
    tuned = ScenarioConfig(n=4, gst=20.0, scenario="silent_spread",
                           scenario_params={"faults": 1})
    keys = {spec_key(base), spec_key(other), spec_key(tuned)}
    assert len(keys) == 3


# ----------------------------------------------------------------------
# Campaigns sweep the scenario axis
# ----------------------------------------------------------------------
def test_campaign_sweeps_eight_named_scenarios():
    scenarios = (
        "calm_chaos_waves",
        "crash_churn",
        "equivocator_mix",
        "flaky_half",
        "proposal_throttle",
        "rotating_leader_dos",
        "silent_spread",
        "view_sync_throttle",
    )
    campaign = Campaign(
        name="scenario-axis",
        build=build_gauntlet_config,
        sweeps=(Sweep("scenario", scenarios),),
        fixed={
            "protocol": "lumiere",
            "n": 4,
            "delta": 1.0,
            "actual_delay": 0.1,
            "gst": 10.0,
            "duration": 70.0,
            "seed": 0,
        },
    )
    assert len(campaign) == 8
    result = campaign.run(backend="serial")
    assert len(result) == 8
    assert {record.params["scenario"] for record in result} == set(scenarios)
    assert all(record.ledgers_consistent for record in result)
    assert all(record.decisions > 0 for record in result)
    # Run ids carry the scenario name, so reports and caches line up.
    assert any("scenario=silent_spread" in record.run_id for record in result)


# ----------------------------------------------------------------------
# Live-adapter registry coverage (the chaos layer's drift guard)
# ----------------------------------------------------------------------
def _library_delay_model_classes():
    """Every concrete DelayModel class the library itself defines."""
    from repro.sim.network import DelayModel

    seen = set()

    def walk(cls):
        for sub in cls.__subclasses__():
            if sub not in seen:
                seen.add(sub)
                walk(sub)

    walk(DelayModel)
    # Tests may define their own throwaway subclasses; the guard is about
    # what ships in repro.* (mirrors the wire-codec zoo guard).
    return {cls for cls in seen if cls.__module__.startswith("repro.")}


def test_every_library_delay_model_has_a_live_adapter():
    # A new schedule class without a registered live adapter fails here:
    # either register one (repro.runtime.chaos.register_live_adapter) or
    # add it to the explicit exemption set with a reason.
    from repro.runtime.chaos import live_adaptable_classes
    from repro.sim.network import AdversarialDelay

    library = _library_delay_model_classes()
    adaptable = set(live_adaptable_classes())
    # AdversarialDelay wraps arbitrary callables that may close over
    # simulator state no live runtime can provide; it is sim-only by design.
    exempt = {AdversarialDelay}
    missing = sorted(cls.__name__ for cls in library - adaptable - exempt)
    assert not missing, (
        f"DelayModel classes with no live runtime adapter: {missing}; "
        "register one with repro.runtime.chaos.register_live_adapter"
    )
    stale = sorted(cls.__name__ for cls in adaptable - library)
    assert not stale, f"live adapters registered for unknown classes: {stale}"
    assert not (exempt & adaptable)


def test_every_named_scenario_adapts_for_live_runs():
    # Every registry entry must run under Campaign.run(backend="live"):
    # its built delay model (when it has one) must adapt cleanly, keeping
    # the model's own parameter-faithful description.
    from repro.runtime.chaos import adapt_schedule

    config = ScenarioConfig(n=4, delta=1.0, actual_delay=0.1, gst=10.0, duration=60.0)
    adapted = 0
    for name in available_scenarios():
        delay_model, _ = get_scenario(name).build(config, {})
        if delay_model is None:
            continue  # corruption-only: runs live on a plain transport
        adapter = adapt_schedule(delay_model)
        assert adapter.describe() == delay_model.describe()
        adapted += 1
    assert adapted >= 8  # the delay-model scenarios shipped today
