"""Multi-process cluster tests: placement equivalence, crash teardown, merge.

The wall-clock, real-socket tests are ``tcp``-marked (CI's tier-1 matrix
deselects them; the live-smoke job runs them).  The placement-equivalence
test is the headline: the same ``ScenarioConfig`` and seed reach the same
decisions and the same committed chain whether the nodes share one process
or get one OS process each — placement is an execution detail, not a
protocol input.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.experiments.scenario import ScenarioConfig
from repro.metrics.collector import MetricsCollector, merge_metrics_states
from repro.runner import ProcessCluster, TcpCluster, make_live_cluster
from repro.runtime import default_binary_codec


def _config(**overrides) -> ScenarioConfig:
    defaults = dict(
        n=4, pacemaker="lumiere", delta=0.5, duration=30.0,
        seed=3, record_trace=False,
    )
    defaults.update(overrides)
    return ScenarioConfig(**defaults)


# ----------------------------------------------------------------------
# Placement equivalence: inline vs one-process-per-node
# ----------------------------------------------------------------------
@pytest.mark.tcp
def test_inline_and_process_placements_agree():
    """Same config + seed ⇒ same decisions and committed chain, either placement.

    Wall-clock runs stop at slightly different points, so the comparison is
    over the common prefix — which must be non-trivial (≥ the commit
    target) and *equal*, not merely consistent: block ids bind the views,
    proposers and payloads of the whole chain, so prefix equality means the
    two placements executed the same protocol history.
    """
    target = 6
    config = _config()

    async def run(placement: str):
        cluster = make_live_cluster(config, placement=placement)
        try:
            commits = await asyncio.wait_for(
                cluster.run_until_commits(target, timeout=30.0), timeout=40.0
            )
        finally:
            await cluster.stop()
        if placement == "process":
            ledgers = {pid: list(ids) for pid, ids in cluster.ledger_ids.items()}
        else:
            ledgers = {
                pid: node.replica.ledger.block_ids
                for pid, node in cluster.nodes.items()
            }
        decisions = [(d.view, d.leader) for d in cluster.metrics.honest_decisions()]
        assert cluster.ledgers_are_consistent()
        assert not cluster.teardown_errors, cluster.teardown_errors
        return commits, ledgers, decisions

    inline_commits, inline_ledgers, inline_decisions = asyncio.run(run("inline"))
    process_commits, process_ledgers, process_decisions = asyncio.run(run("process"))

    assert inline_commits >= target
    assert process_commits >= target
    # The canonical chain of each run: the longest ledger (all are prefixes
    # of it — asserted by ledgers_are_consistent above).
    inline_chain = max(inline_ledgers.values(), key=len)
    process_chain = max(process_ledgers.values(), key=len)
    common = min(len(inline_chain), len(process_chain))
    assert common >= target
    assert inline_chain[:common] == process_chain[:common]

    shared = min(len(inline_decisions), len(process_decisions))
    assert shared >= target
    assert inline_decisions[:shared] == process_decisions[:shared]


# ----------------------------------------------------------------------
# Crash tolerance: killing a node's process must not hang the coordinator
# ----------------------------------------------------------------------
@pytest.mark.tcp
def test_process_cluster_survives_worker_crash():
    """SIGKILL one node's process mid-run: teardown completes, errors surface."""
    config = _config(n=4, delta=0.3)

    async def run():
        cluster = ProcessCluster(config, teardown_timeout=10.0)
        try:
            await asyncio.wait_for(
                cluster.run_until_commits(3, timeout=30.0), timeout=40.0
            )
            victim = cluster._workers[0]
            victim.process.kill()
            # Keep running briefly so the coordinator notices the death path.
            await asyncio.wait_for(cluster.run(1.0), timeout=10.0)
        finally:
            await asyncio.wait_for(cluster.stop(), timeout=30.0)
        return cluster

    cluster = asyncio.run(run())
    assert cluster.teardown_errors, "a killed worker must leave a trace"
    assert any("worker 0" in error for error in cluster.teardown_errors)
    # The surviving shards' results still merged: their nodes' ledgers
    # arrived and are mutually consistent.
    survivors = set(range(1, 4))
    assert survivors <= set(cluster.ledger_ids)
    assert cluster.ledgers_are_consistent()


# ----------------------------------------------------------------------
# Validation (fast, no sockets, runs in the tier-1 lane)
# ----------------------------------------------------------------------
def test_counting_backend_is_rejected():
    with pytest.raises(ConfigurationError, match="counting"):
        ProcessCluster(_config(crypto_backend="counting"))


def test_codec_instances_are_rejected():
    with pytest.raises(ConfigurationError, match="codec"):
        ProcessCluster(_config(), codec=default_binary_codec())


def test_invalid_process_counts_are_rejected():
    with pytest.raises(ConfigurationError, match="processes"):
        ProcessCluster(_config(), processes=0)


def test_inline_placement_rejects_processes_knob():
    with pytest.raises(ConfigurationError, match="process-placement"):
        make_live_cluster(_config(), placement="inline", processes=2)


def test_unknown_placement_is_rejected():
    with pytest.raises(ConfigurationError, match="placement"):
        make_live_cluster(_config(), placement="threads")


def test_result_requires_stop_first():
    cluster = ProcessCluster(_config())
    with pytest.raises(SimulationError):
        cluster.result()
    with pytest.raises(SimulationError):
        cluster.ledgers_are_consistent()


def test_shard_partition_is_contiguous_and_exact():
    assert ProcessCluster._partition(list(range(7)), 3) == [[0, 1, 2], [3, 4], [5, 6]]
    assert ProcessCluster._partition(list(range(4)), 4) == [[0], [1], [2], [3]]
    assert ProcessCluster._partition(list(range(5)), 1) == [[0, 1, 2, 3, 4]]


# ----------------------------------------------------------------------
# Metrics merge (pure: the shard-snapshot half of the process story)
# ----------------------------------------------------------------------
def _snapshot(honest, messages=(), decisions=(), commits=()):
    collector = MetricsCollector()
    collector.set_honest(honest)
    for time, sender, recipient, kind in messages:
        kind_id = collector._kind_ids.setdefault(kind, len(collector._kind_names))
        if kind_id == len(collector._kind_names):
            collector._kind_names.append(kind)
        collector._message_times.append(time)
        collector._message_senders.append(sender)
        collector._message_recipients.append(recipient)
        collector._message_kind_ids.append(kind_id)
    for time, view, leader in decisions:
        collector.record_decision(time, view, leader)
    for time, pid, view, block_id in commits:
        collector.record_commit(pid, view, block_id, time)
    return collector.state()


def test_merge_metrics_states_interleaves_onto_one_timeline():
    shard_a = _snapshot(
        honest={0, 1},
        messages=[(0.1, 0, 1, "Vote"), (0.5, 1, 0, "Proposal")],
        decisions=[(0.2, 0, 0), (0.9, 2, 0)],
        commits=[(0.3, 0, 0, "b0"), (1.0, 0, 2, "b1")],
    )
    shard_b = _snapshot(
        honest={2, 3},
        messages=[(0.05, 2, 0, "Vote"), (0.7, 3, 1, "Vote")],
        decisions=[(0.6, 1, 2)],
        commits=[(0.65, 2, 1, "b0")],
    )
    merged = merge_metrics_states([shard_a, shard_b])

    assert merged.honest_ids == {0, 1, 2, 3}
    # Message times re-sorted onto one timeline (the bisect invariant).
    times = list(merged._message_times)
    assert times == sorted(times) == [0.05, 0.1, 0.5, 0.7]
    assert merged.messages_between(0.0, 0.6) == 3
    assert merged.message_kinds_between(0.0, 2.0) == {"Vote": 3, "Proposal": 1}
    # Honest decisions replayed in time order across shards.
    assert [(d.time, d.view) for d in merged.honest_decisions()] == [
        (0.2, 0), (0.6, 1), (0.9, 2),
    ]
    assert merged.first_honest_decision_after(0.3).view == 1
    # Commits interleaved; per-pid queries answer cluster-wide.
    assert [c.pid for c in merged.commits] == [0, 2, 0]
    assert [c.block_id for c in merged.commits_for(0)] == ["b0", "b1"]


def test_merge_metrics_states_sums_fault_counts():
    collector = MetricsCollector()
    collector.add_fault_counts({"frames_dropped": 2, "messages_dropped": 1})
    state_a = collector.state()
    other = MetricsCollector()
    other.add_fault_counts({"frames_dropped": 3})
    state_b = other.state()
    merged = merge_metrics_states([state_a, state_b])
    assert merged.fault_counts == {"frames_dropped": 5, "messages_dropped": 1}
