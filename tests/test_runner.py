"""Tests for the campaign runner: grid expansion, executors, and the cache.

The builders live at module level so the process-pool backend can pickle
them by reference — the same constraint real campaign code is under.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.adversary.behaviours import SilentLeaderBehaviour
from repro.adversary.corruption import CorruptionPlan
from repro.errors import ConfigurationError
from repro.experiments.scenario import ScenarioConfig
from repro.runner import (
    Campaign,
    ResultCache,
    RunRecord,
    Sweep,
    config_fingerprint,
    execute_cell,
    run_campaign,
    spec_key,
)


def build_plain(params: dict) -> ScenarioConfig:
    """A minimal fault-free cell: tiny run, seeded from the grid point."""
    return ScenarioConfig(
        n=params["n"],
        pacemaker=params["pacemaker"],
        duration=params["duration"],
        seed=params["seed"],
        record_trace=False,
    )


def build_with_faults(params: dict) -> ScenarioConfig:
    """A cell with a corruption plan, exercising nested-object fingerprints."""
    config = build_plain(params)
    config.corruption = CorruptionPlan.uniform(
        config.protocol_config(), [1], SilentLeaderBehaviour
    )
    return config


def small_campaign(**overrides) -> Campaign:
    settings = dict(
        name="test-campaign",
        build=build_plain,
        sweeps=(Sweep("pacemaker", ("lumiere", "lp22")), Sweep("seed", (0, 1))),
        fixed={"n": 4, "duration": 40.0},
    )
    settings.update(overrides)
    return Campaign(**settings)


# ----------------------------------------------------------------------
# Grid expansion
# ----------------------------------------------------------------------
def test_expansion_is_deterministic_and_ordered_like_nested_loops():
    campaign = small_campaign()
    first = campaign.expand()
    second = campaign.expand()
    assert [spec.run_id for spec in first] == [spec.run_id for spec in second]
    assert [spec.key for spec in first] == [spec.key for spec in second]
    # Last sweep axis varies fastest, like nested for-loops.
    assert [spec.run_id for spec in first] == [
        "test-campaign[pacemaker=lumiere,seed=0]",
        "test-campaign[pacemaker=lumiere,seed=1]",
        "test-campaign[pacemaker=lp22,seed=0]",
        "test-campaign[pacemaker=lp22,seed=1]",
    ]
    assert len(campaign) == 4


def test_expansion_with_no_sweeps_is_a_single_cell_named_after_the_campaign():
    campaign = Campaign(
        name="solo", build=build_plain,
        fixed={"n": 4, "duration": 30.0, "pacemaker": "lumiere", "seed": 0},
    )
    specs = campaign.expand()
    assert len(specs) == 1
    assert specs[0].run_id == "solo"


def test_duplicate_parameter_declaration_rejected():
    with pytest.raises(ConfigurationError):
        Campaign(
            name="dup", build=build_plain,
            sweeps=(Sweep("n", (4, 7)),), fixed={"n": 4},
        )
    with pytest.raises(ConfigurationError):
        Campaign(
            name="dup", build=build_plain,
            sweeps=(Sweep("n", (4,)), Sweep("n", (7,))),
        )


def test_empty_sweep_rejected():
    with pytest.raises(ConfigurationError):
        Sweep("n", ())


# ----------------------------------------------------------------------
# Content keys
# ----------------------------------------------------------------------
def test_spec_key_changes_with_any_config_field():
    base = ScenarioConfig(n=4, seed=0, duration=40.0)
    assert spec_key(base) == spec_key(ScenarioConfig(n=4, seed=0, duration=40.0))
    assert spec_key(base) != spec_key(ScenarioConfig(n=4, seed=1, duration=40.0))
    assert spec_key(base) != spec_key(ScenarioConfig(n=7, seed=0, duration=40.0))
    assert spec_key(base) != spec_key(base, max_events=100)


def test_fingerprint_covers_corruption_and_delay_model():
    plain = config_fingerprint(build_plain({"n": 4, "pacemaker": "lumiere",
                                            "duration": 40.0, "seed": 0}))
    faulty = config_fingerprint(build_with_faults({"n": 4, "pacemaker": "lumiere",
                                                   "duration": 40.0, "seed": 0}))
    assert plain["corruption"] is None
    assert faulty["corruption"] == {"1": "SilentLeaderBehaviour"}
    # The fingerprint must be JSON-serializable (it is hashed canonically).
    json.dumps(plain), json.dumps(faulty)


# ----------------------------------------------------------------------
# Executors
# ----------------------------------------------------------------------
def test_serial_and_process_backends_produce_identical_records():
    campaign = small_campaign()
    serial = run_campaign(campaign, backend="serial")
    parallel = run_campaign(campaign, backend="process", workers=2)
    assert len(serial) == len(parallel) == 4
    for left, right in zip(serial, parallel):
        assert left.run_id == right.run_id
        assert left.key == right.key
        # Byte-identical modulo wall time: the summary, the derived metrics
        # and every accounting scalar must match across backends.
        left_doc = dataclasses.replace(left, wall_time=0.0).to_json_dict()
        right_doc = dataclasses.replace(right, wall_time=0.0).to_json_dict()
        assert left_doc == right_doc


def test_records_carry_run_results():
    record = run_campaign(small_campaign()).one(pacemaker="lumiere", seed=0)
    assert record.decisions > 0
    assert record.ledgers_consistent
    assert record.events_processed > 0
    assert record.summary.protocol == "lumiere"
    assert record.metrics.decision_times == tuple(sorted(record.metrics.decision_times))
    assert len(record.metrics.gap_message_counts) == record.decisions - 1


def test_unknown_backend_rejected():
    with pytest.raises(ConfigurationError):
        run_campaign(small_campaign(), backend="threads")


def test_select_and_one():
    result = run_campaign(small_campaign())
    assert len(result.select(pacemaker="lumiere")) == 2
    assert result.one(pacemaker="lp22", seed=1).params["seed"] == 1
    with pytest.raises(KeyError):
        result.one(pacemaker="lumiere")  # two matches
    with pytest.raises(KeyError):
        result.one(pacemaker="no-such")  # zero matches


# ----------------------------------------------------------------------
# Cache behaviour
# ----------------------------------------------------------------------
def test_cache_miss_then_hit_and_rebinding(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    campaign = small_campaign()

    first = run_campaign(campaign, cache=cache)
    assert (first.cache_hits, first.cache_misses) == (0, 4)
    assert len(cache) == 4

    second = run_campaign(campaign, cache=cache)
    assert (second.cache_hits, second.cache_misses) == (4, 0)
    for fresh, cached in zip(first, second):
        assert cached.cached and not fresh.cached
        assert cached.run_id == fresh.run_id
        assert cached.summary == fresh.summary
        assert cached.metrics == fresh.metrics


def test_cache_only_executes_missing_cells(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    run_campaign(small_campaign(), cache=cache)

    grown = small_campaign(sweeps=(Sweep("pacemaker", ("lumiere", "lp22", "fever")),
                                   Sweep("seed", (0, 1))))
    result = run_campaign(grown, cache=cache)
    assert (result.cache_hits, result.cache_misses) == (4, 2)
    assert {r.params["pacemaker"] for r in result if not r.cached} == {"fever"}


def test_torn_cache_entry_counts_as_miss(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    campaign = small_campaign()
    run_campaign(campaign, cache=cache)
    victim = campaign.expand()[0]
    cache.path_for(victim.key).write_text("{not json", encoding="utf-8")

    result = run_campaign(campaign, cache=cache)
    assert (result.cache_hits, result.cache_misses) == (3, 1)


def test_cache_accepts_directory_path_and_clear(tmp_path):
    root = tmp_path / "by-path"
    result = run_campaign(small_campaign(), cache=str(root))
    assert result.cache_misses == 4
    cache = ResultCache(root)
    assert len(cache) == 4
    assert cache.clear() == 4
    assert len(cache) == 0


# ----------------------------------------------------------------------
# RunRecord round trip
# ----------------------------------------------------------------------
def test_run_record_json_round_trip():
    spec = small_campaign().expand()[0]
    record = execute_cell(build_plain, spec.params, spec.run_id, spec.key)
    rebuilt = RunRecord.from_json_dict(json.loads(json.dumps(record.to_json_dict())))
    assert rebuilt.cached
    assert dataclasses.replace(rebuilt, cached=False) == record


def build_failing(params: dict) -> ScenarioConfig:
    """Builder whose second cell blows up inside ``run_scenario`` (a
    corruption plan built for the wrong system size), simulating a campaign
    dying partway through execution."""
    config = build_plain(params)
    if params["seed"] == 1:
        config.corruption = CorruptionPlan.none(
            ScenarioConfig(n=7).protocol_config()
        )
    return config


def test_completed_cells_are_cached_even_if_a_later_cell_fails(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    campaign = Campaign(
        name="partial", build=build_failing,
        sweeps=(Sweep("seed", (0, 1)),),
        fixed={"n": 4, "duration": 30.0, "pacemaker": "lumiere"},
    )
    with pytest.raises(ConfigurationError):
        run_campaign(campaign, cache=cache)
    # The first cell finished before the crash and must be recoverable.
    assert len(cache) == 1
    ok = Campaign(
        name="partial", build=build_plain,
        sweeps=(Sweep("seed", (0,)),),
        fixed={"n": 4, "duration": 30.0, "pacemaker": "lumiere"},
    )
    resumed = run_campaign(ok, cache=cache)
    assert (resumed.cache_hits, resumed.cache_misses) == (1, 0)


def test_fingerprint_distinguishes_behaviour_parameters():
    """Cache keys must separate same-class behaviours with different params."""
    from repro.adversary.behaviours import SlowLeaderBehaviour

    def with_delay(delay: float) -> ScenarioConfig:
        config = build_plain({"n": 4, "pacemaker": "lumiere", "duration": 40.0, "seed": 0})
        config.corruption = CorruptionPlan.uniform(
            config.protocol_config(), [1], lambda: SlowLeaderBehaviour(delay=delay)
        )
        return config

    assert spec_key(with_delay(0.5)) != spec_key(with_delay(5.0))
    assert spec_key(with_delay(0.5)) == spec_key(with_delay(0.5))


def test_fingerprint_rejects_address_bearing_pacemaker_config_repr():
    class Opaque:  # no __repr__: repr() embeds a memory address
        pass

    config = build_plain({"n": 4, "pacemaker": "lumiere", "duration": 40.0, "seed": 0})
    config.pacemaker_config = Opaque()
    with pytest.raises(ConfigurationError, match="stable description"):
        spec_key(config)


def test_cache_put_leaves_no_tmp_files_and_overwrites_cleanly(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    spec = small_campaign().expand()[0]
    record = execute_cell(build_plain, spec.params, spec.run_id, spec.key)
    cache.put(record)
    cache.put(record)  # same key twice: last write wins, no tmp residue
    assert len(cache) == 1
    assert not list((tmp_path / "cache").glob("*.tmp"))
    assert cache.get(spec.key) is not None


def test_unreadable_cache_bytes_and_bad_shapes_count_as_misses(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    campaign = small_campaign()
    run_campaign(campaign, cache=cache)
    specs = campaign.expand()
    # Non-UTF-8 bytes in one entry, valid JSON with a wrong-arity field in another.
    cache.path_for(specs[0].key).write_bytes(b"\xff\xfe\x00garbage")
    good = json.loads(cache.path_for(specs[1].key).read_text(encoding="utf-8"))
    good["metrics"]["epoch_sync_events"] = [[1.0]]  # wrong arity
    cache.path_for(specs[1].key).write_text(json.dumps(good), encoding="utf-8")

    result = run_campaign(campaign, cache=cache)
    assert (result.cache_hits, result.cache_misses) == (2, 2)


def test_process_backend_caches_completed_cells_when_one_fails(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    campaign = Campaign(
        name="partial-pool", build=build_failing,
        sweeps=(Sweep("seed", (0, 2, 1)),),  # seed 1 fails inside run_scenario
        fixed={"n": 4, "duration": 30.0, "pacemaker": "lumiere"},
    )
    with pytest.raises(ConfigurationError):
        run_campaign(campaign, backend="process", workers=2, cache=cache)
    # Both good cells completed (the pool drains before the error propagates)
    # and must be recoverable from the cache.
    assert len(cache) == 2


def _delay_schedule_a(pending, sim):
    return 0.1


def _delay_schedule_b(pending, sim):
    return 0.2


def test_fingerprint_distinguishes_adversarial_delay_callables():
    """Two different schedules with the default name must not share a key."""
    from repro.sim.network import AdversarialDelay

    def with_model(fn) -> ScenarioConfig:
        config = build_plain({"n": 4, "pacemaker": "lumiere", "duration": 40.0, "seed": 0})
        config.delay_model = AdversarialDelay(fn)
        return config

    assert spec_key(with_model(_delay_schedule_a)) != spec_key(with_model(_delay_schedule_b))
    assert spec_key(with_model(_delay_schedule_a)) == spec_key(with_model(_delay_schedule_a))


def test_process_backend_runs_even_a_single_cell_on_the_pool():
    """No silent serial fallback: an unpicklable builder must fail on the
    process backend even when only one cell needs executing."""
    campaign = Campaign(
        name="one-cell", build=lambda params: build_plain(params),  # unpicklable
        fixed={"n": 4, "duration": 30.0, "pacemaker": "lumiere", "seed": 0},
    )
    with pytest.raises(Exception):  # pickling error surfaces immediately
        run_campaign(campaign, backend="process", workers=2)
    # The same campaign still works serially.
    assert len(run_campaign(campaign, backend="serial")) == 1


def test_clear_sweeps_tmp_debris(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    run_campaign(small_campaign(), cache=cache)
    (cache.root / "deadbeef.tmp").write_text("half-written", encoding="utf-8")
    assert cache.clear() == 4
    assert not list(cache.root.iterdir())


def test_fingerprint_rejects_closure_derived_delay_descriptions():
    """Closures from the same factory share a qualname; require a name."""
    from repro.sim.network import AdversarialDelay

    def make(delay):
        return AdversarialDelay(lambda p, s: delay)

    config = build_plain({"n": 4, "pacemaker": "lumiere", "duration": 40.0, "seed": 0})
    config.delay_model = make(0.1)
    with pytest.raises(ConfigurationError, match="stable description"):
        spec_key(config)
    # An explicit parameter-faithful name makes the same closure acceptable.
    config.delay_model = AdversarialDelay(lambda p, s: 0.1, name="const-0.1")
    keyed = spec_key(config)
    config.delay_model = AdversarialDelay(lambda p, s: 5.0, name="const-5.0")
    assert spec_key(config) != keyed


def test_expand_rejects_non_json_params_before_running():
    campaign = Campaign(
        name="bad-params", build=build_plain,
        sweeps=(Sweep("seed", ({"a"},)),),  # a set is not JSON-serializable
        fixed={"n": 4, "duration": 30.0, "pacemaker": "lumiere"},
    )
    with pytest.raises(ConfigurationError, match="JSON-serializable"):
        campaign.expand()
