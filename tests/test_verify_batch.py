"""Batched certificate verification: semantics, misuse, and accounting.

The batched path (``CryptoBackend.verify_batch`` driven by
``ThresholdScheme.combine``) is an amortisation, not a semantic change: for
every input — including adversarial ones (duplicate shares, shares over the
wrong message or epoch, forged proofs, unknown signers, sub-threshold sets)
— a batching scheme and a per-share scheme over the same PKI must produce
the same aggregate or raise the same error.  This module checks that
equivalence across all three backends, plus the backend-level counter
contract (one ``digest_calls`` per batch, real work still counted in
``digest_computes``) and the verified-cache seeding at combine.
"""

from __future__ import annotations

import pytest

from repro.crypto.backend import available_backends, make_backend
from repro.crypto.signatures import PKI, Signature
from repro.crypto.threshold import (
    PartialSignature,
    ThresholdScheme,
    set_batch_verify_default,
)
from repro.errors import ThresholdError

N = 7
THRESHOLD = 5  # 2f+1 for n=7
MESSAGE = ("qc", 3, "block-3-feed")


@pytest.fixture(params=available_backends())
def backend_name(request):
    return request.param


def build_schemes(backend_name):
    """One PKI, two schemes over it: batched and per-share reference."""
    backend = make_backend(backend_name)
    pki, keys = PKI.setup(range(N), backend=backend)
    batched = ThresholdScheme(pki, cache_verified=False, batch_verify=True)
    reference = ThresholdScheme(pki, cache_verified=False, batch_verify=False)
    return pki, keys, batched, reference


def combine_outcome(scheme, partials, threshold=THRESHOLD, message=MESSAGE):
    """``("ok", aggregate)`` or ``("error", message)`` — comparable across schemes."""
    try:
        return ("ok", scheme.combine(partials, threshold, message))
    except ThresholdError as exc:
        return ("error", str(exc))


class TestBackendVerifyBatch:
    def test_valid_batch_accepts_and_counts(self, backend_name):
        backend = make_backend(backend_name)
        items = [
            ((("share", i), "payload"), backend.digest(("share", i), "payload"))
            for i in range(5)
        ]
        backend.reset_counters()
        assert backend.verify_batch(items)
        assert backend.digest_calls == 1  # the whole batch is one call
        assert backend.batch_verifies == 1
        assert backend.batched_shares == 5

    def test_one_bad_item_rejects_whole_batch(self, backend_name):
        backend = make_backend(backend_name)
        items = [
            ((("share", i), "payload"), backend.digest(("share", i), "payload"))
            for i in range(5)
        ]
        items[3] = (items[3][0], "not-the-digest")
        assert not backend.verify_batch(items)

    def test_batched_matches_per_item_digest_loop(self, backend_name):
        batched = make_backend(backend_name)
        looped = make_backend(backend_name)
        parts_list = [("sig", i, 1000 + i, "md") for i in range(6)]
        # Expected values minted through each backend's own digest stream so
        # counting tokens line up instance-locally.
        batched_items = [(parts, batched.digest(*parts)) for parts in parts_list]
        looped_items = [(parts, looped.digest(*parts)) for parts in parts_list]
        assert batched.verify_batch(batched_items)
        assert all(looped.digest(*parts) == expected for parts, expected in looped_items)

    def test_empty_batch_is_vacuously_valid(self, backend_name):
        backend = make_backend(backend_name)
        assert backend.verify_batch([])
        assert backend.batched_shares == 0

    def test_reset_counters_clears_batch_accounting(self, backend_name):
        backend = make_backend(backend_name)
        backend.verify_batch([((1, 2), backend.digest(1, 2))])
        backend.reset_counters()
        assert backend.digest_calls == 0
        assert backend.batch_verifies == 0
        assert backend.batched_shares == 0


class TestCombineEquivalence:
    """Batched and per-share combine agree on every input, all backends."""

    def test_valid_quorum(self, backend_name):
        _, keys, batched, reference = build_schemes(backend_name)
        partials = [batched.partial_sign(keys[i], MESSAGE) for i in range(THRESHOLD)]
        status_b, agg_b = combine_outcome(batched, partials)
        status_r, agg_r = combine_outcome(reference, partials)
        assert status_b == status_r == "ok"
        assert agg_b == agg_r
        assert agg_b.signers == frozenset(range(THRESHOLD))
        assert batched.batched_combines == 1
        assert batched.combine_fallbacks == 0
        assert reference.batched_combines == 0

    def test_duplicate_shares_do_not_inflate_the_signer_count(self, backend_name):
        _, keys, batched, reference = build_schemes(backend_name)
        partials = [batched.partial_sign(keys[i], MESSAGE) for i in range(THRESHOLD - 1)]
        partials += [partials[0]] * 3  # 4 distinct signers padded to 7 shares
        for scheme in (batched, reference):
            status, detail = combine_outcome(scheme, partials)
            assert status == "error"
            assert "distinct valid shares" in detail

    def test_duplicate_shares_with_enough_distinct_signers(self, backend_name):
        _, keys, batched, reference = build_schemes(backend_name)
        partials = [batched.partial_sign(keys[i], MESSAGE) for i in range(THRESHOLD)]
        partials += partials[:2]
        status_b, agg_b = combine_outcome(batched, partials)
        status_r, agg_r = combine_outcome(reference, partials)
        assert status_b == status_r == "ok"
        assert agg_b == agg_r

    def test_shares_over_the_wrong_message_are_excluded(self, backend_name):
        _, keys, batched, reference = build_schemes(backend_name)
        wrong = ("qc", 3, "block-3-d00d")  # same view, different block
        partials = [batched.partial_sign(keys[i], MESSAGE) for i in range(THRESHOLD - 1)]
        partials.append(batched.partial_sign(keys[6], wrong))
        for scheme in (batched, reference):
            status, detail = combine_outcome(scheme, partials)
            assert status == "error"
            assert "distinct valid shares" in detail

    def test_shares_over_the_wrong_epoch_are_excluded(self, backend_name):
        _, keys, batched, reference = build_schemes(backend_name)
        other_epoch = ("qc", 4, "block-3-feed")
        partials = [batched.partial_sign(keys[i], other_epoch) for i in range(N)]
        for scheme in (batched, reference):
            status, _ = combine_outcome(scheme, partials)
            assert status == "error"
        # No shares match the digest, so the batch path never even engages.
        assert batched.batched_combines == 0
        assert batched.combine_fallbacks == 0

    def test_mismatched_inner_digest_forces_identical_fallback(self, backend_name):
        # A partial whose *outer* digest matches but whose wrapped signature
        # was minted over a different message: the batch pre-check refuses
        # to build items, and the per-share loop rejects the same signer.
        _, keys, batched, reference = build_schemes(backend_name)
        good = [batched.partial_sign(keys[i], MESSAGE) for i in range(THRESHOLD)]
        other = batched.partial_sign(keys[6], ("qc", 99, "elsewhere"))
        frankenstein = PartialSignature(
            signer=6,
            message_digest=good[0].message_digest,
            signature=other.signature,
        )
        partials = good + [frankenstein]
        status_b, agg_b = combine_outcome(batched, partials)
        status_r, agg_r = combine_outcome(reference, partials)
        assert status_b == status_r == "ok"
        assert agg_b == agg_r
        assert 6 not in agg_b.signers
        assert batched.combine_fallbacks == 1
        assert batched.batched_combines == 0

    def test_forged_proof_forces_identical_fallback(self, backend_name):
        _, keys, batched, reference = build_schemes(backend_name)
        good = [batched.partial_sign(keys[i], MESSAGE) for i in range(THRESHOLD)]
        digest = good[0].message_digest
        forged = PartialSignature(
            signer=6,
            message_digest=digest,
            signature=Signature(signer=6, message_digest=digest, proof="forged"),
        )
        partials = good + [forged]
        status_b, agg_b = combine_outcome(batched, partials)
        status_r, agg_r = combine_outcome(reference, partials)
        assert status_b == status_r == "ok"
        assert agg_b == agg_r
        assert 6 not in agg_b.signers
        assert batched.combine_fallbacks == 1

    def test_unknown_signer_forces_identical_fallback(self, backend_name):
        _, keys, batched, reference = build_schemes(backend_name)
        good = [batched.partial_sign(keys[i], MESSAGE) for i in range(THRESHOLD)]
        digest = good[0].message_digest
        stranger = PartialSignature(
            signer=99,  # no key registered
            message_digest=digest,
            signature=Signature(signer=99, message_digest=digest, proof="whatever"),
        )
        partials = good + [stranger]
        status_b, agg_b = combine_outcome(batched, partials)
        status_r, agg_r = combine_outcome(reference, partials)
        assert status_b == status_r == "ok"
        assert agg_b == agg_r
        assert 99 not in agg_b.signers
        assert batched.combine_fallbacks == 1

    def test_sub_threshold_quorum_rejected_identically(self, backend_name):
        _, keys, batched, reference = build_schemes(backend_name)
        partials = [batched.partial_sign(keys[i], MESSAGE) for i in range(THRESHOLD - 1)]
        outcome_b = combine_outcome(batched, partials)
        outcome_r = combine_outcome(reference, partials)
        assert outcome_b == outcome_r
        assert outcome_b[0] == "error"
        # A batch of all-valid shares still batches — the threshold shortfall
        # is discovered after verification, identically on both paths.
        assert batched.batched_combines == 1

    def test_aggregates_verify_identically_across_paths(self, backend_name):
        _, keys, batched, reference = build_schemes(backend_name)
        partials = [batched.partial_sign(keys[i], MESSAGE) for i in range(N)]
        agg_b = batched.combine(partials, THRESHOLD, MESSAGE)
        agg_r = reference.combine(partials, THRESHOLD, MESSAGE)
        assert agg_b == agg_r
        assert batched.verify(agg_r, MESSAGE)
        assert reference.verify(agg_b, MESSAGE)
        assert not batched.verify(agg_b, ("qc", 3, "other-block"))


class TestVerifiedCacheSeeding:
    def test_combine_seeds_the_verified_cache(self, backend_name):
        backend = make_backend(backend_name)
        pki, keys = PKI.setup(range(N), backend=backend)
        scheme = ThresholdScheme(pki)  # cache on, batching per default
        partials = [scheme.partial_sign(keys[i], MESSAGE) for i in range(THRESHOLD)]
        aggregate = scheme.combine(partials, THRESHOLD, MESSAGE)
        assert scheme.verify_cache_hits == 0
        # Every recipient's *first* verify is already a cache hit: the mint
        # at combine seeded the shared scheme's cache.
        assert scheme.verify(aggregate, MESSAGE)
        assert scheme.verify_cache_hits == 1

    def test_cache_disabled_scheme_still_verifies(self, backend_name):
        backend = make_backend(backend_name)
        pki, keys = PKI.setup(range(N), backend=backend)
        scheme = ThresholdScheme(pki, cache_verified=False)
        partials = [scheme.partial_sign(keys[i], MESSAGE) for i in range(THRESHOLD)]
        aggregate = scheme.combine(partials, THRESHOLD, MESSAGE)
        assert scheme.verify(aggregate, MESSAGE)
        assert scheme.verify_cache_hits == 0


class TestProcessWideDefault:
    def test_set_batch_verify_default_governs_new_schemes(self):
        backend = make_backend("hashing")
        pki, _ = PKI.setup(range(3), backend=backend)
        previous = set_batch_verify_default(False)
        try:
            assert previous is True  # repo default: batching on
            assert ThresholdScheme(pki).batch_verify is False
            # Explicit constructor argument wins over the process default.
            assert ThresholdScheme(pki, batch_verify=True).batch_verify is True
        finally:
            set_batch_verify_default(previous)
        assert ThresholdScheme(pki).batch_verify is True
