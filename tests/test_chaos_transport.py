"""Unit tests for the chaos layer: injectors, adapters, kill/restart.

Each injector is exercised on its own — seeded determinism for drop,
delay, duplicate and partition shaping; timer-driven kill/restart
lifecycle — plus the transparency property: a fully-disabled
:class:`~repro.runtime.chaos.FaultyTransport` is byte-for-byte invisible
over a :class:`~repro.runtime.transports.LocalTransport` (identical
envelope streams, wire-encoded payloads included).  Whole-scenario
sim-vs-live conformance lives in ``tests/test_live_faults.py``.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.experiments.scenario import ScenarioConfig
from repro.runner.live import build_live_scenario, run_live_scenario
from repro.runtime import (
    AsyncioRuntime,
    ChaosConfig,
    FaultCounters,
    FaultyTransport,
    LocalTransport,
    adapt_schedule,
    register_live_adapter,
    schedule_downtime,
)
from repro.runtime.chaos import BASE_FAULT_COUNTS, ScheduleAdapter
from repro.runtime.codec import default_binary_codec
from repro.faults.schedules import PartitionSchedule
from repro.sim.network import AdversarialDelay, DelayModel, FixedDelay, UniformDelay


def _scenario(seed: int = 0, **overrides) -> ScenarioConfig:
    defaults = dict(
        n=4,
        pacemaker="lumiere",
        delta=1.0,
        actual_delay=0.1,
        gst=0.0,
        duration=20.0,
        seed=seed,
        record_trace=False,
    )
    defaults.update(overrides)
    return ScenarioConfig(**defaults)


def _run_built(config, transport=None):
    """Build, record every envelope's metadata, run to duration.

    Payload bytes are excluded here (each build generates fresh signing
    keys, so two runs' wire bytes legitimately differ); the byte-for-byte
    comparison happens in the lockstep transport-level test below, where
    the payloads are under test control.
    """
    result = build_live_scenario(config, transport=transport)

    def recorder(log):
        def listener(env):
            log.append(
                (
                    env.msg_id,
                    env.sender,
                    env.recipient,
                    env.send_time,
                    env.deliver_time,
                    type(env.payload).__name__,
                )
            )

        return listener

    sent: list = []
    delivered: list = []
    result.transport.send_listeners.append(recorder(sent))
    result.transport.deliver_listeners.append(recorder(delivered))
    for pid in sorted(result.replicas):
        result.replicas[pid].start()
    result.runtime.run_sync(until=config.duration)
    return result, sent, delivered


def _signature(result):
    return (
        [(d.view, d.leader, d.time) for d in result.metrics.decisions],
        {pid: r.ledger.block_ids for pid, r in result.replicas.items()},
    )


# ----------------------------------------------------------------------
# Transparency: disabled chaos is byte-for-byte invisible
# ----------------------------------------------------------------------
class _Sink:
    """A registered endpoint that logs exactly what it receives, when."""

    def __init__(self, pid, runtime, log):
        self.pid = pid
        self._runtime = runtime
        self._log = log

    def deliver(self, payload, sender):
        self._log.append((self._runtime.now, self.pid, sender, payload))


def _drive_script(transport):
    """Run a fixed send script on ``transport``; return all observables.

    The payloads are caller-controlled bytes, so the comparison between a
    bare and a wrapped transport is literally byte-for-byte: same envelope
    stream (ids, timings, payload bytes), same deliveries, same wire frames
    under the binary codec.
    """
    runtime = AsyncioRuntime(transport, seed=0)
    codec = default_binary_codec()
    received: list = []
    sent: list = []
    delivered: list = []
    for pid in range(4):
        transport.register(_Sink(pid, runtime, received))

    def record(log):
        return lambda env: log.append(
            (
                env.msg_id,
                env.sender,
                env.recipient,
                env.send_time,
                env.deliver_time,
                env.payload,
                codec.encode_frame(env.sender, env.payload),
            )
        )

    transport.send_listeners.append(record(sent))
    transport.deliver_listeners.append(record(delivered))

    def script():
        transport.send(0, 1, b"unicast")
        transport.send(2, 2, b"self-message")
        transport.broadcast(3, b"fanout")

    runtime.set_timer_at(0.5, script)
    runtime.set_timer_at(2.0, transport.send, 1, 0, b"late reply")
    runtime.run_sync(until=5.0)
    return sent, delivered, received


def test_disabled_faulty_transport_is_byte_for_byte_transparent():
    bare = _drive_script(LocalTransport(delay=0.1, jitter=0.3, seed=5))
    wrapper = FaultyTransport(LocalTransport(delay=0.1, jitter=0.3, seed=5))
    assert wrapper.transparent
    wrapped = _drive_script(wrapper)
    # Identical envelope streams — payload bytes and wire frames included —
    # identical deliveries at identical times, even through the seeded
    # jitter draws of the inner transport.
    assert wrapped == bare
    assert bare[0]  # the script really sent something


def test_disabled_faulty_transport_is_transparent_in_a_full_run():
    config = _scenario(0)
    bare, bare_sent, bare_delivered = _run_built(config)
    wrapped_transport = FaultyTransport(
        LocalTransport(delay=config.actual_delay, jitter=0.0, seed=config.seed)
    )
    assert wrapped_transport.transparent
    wrapped, wrapped_sent, wrapped_delivered = _run_built(
        config, transport=wrapped_transport
    )

    assert bare_sent and bare_delivered
    assert wrapped_sent == bare_sent
    assert wrapped_delivered == bare_delivered
    assert _signature(wrapped) == _signature(bare)
    assert wrapped.transport.messages_sent == bare.transport.messages_sent
    assert wrapped.transport.messages_delivered == bare.transport.messages_delivered
    # No fault ever fired (build attaches no counters to a transparent run).
    assert wrapped.fault_counts == {}


def test_transparent_with_jitter_preserves_the_jitter_stream():
    # The wrapper delegates verbatim, so even the seeded jitter draws of the
    # inner transport land identically.
    config = _scenario(1, duration=10.0)
    bare = run_live_scenario(config, jitter=0.25)
    wrapped_transport = FaultyTransport(
        LocalTransport(delay=config.actual_delay, jitter=0.25, seed=config.seed)
    )
    wrapped, _, _ = _run_built(config, transport=wrapped_transport)
    assert _signature(wrapped) == _signature(bare)


# ----------------------------------------------------------------------
# Drop / duplicate injectors: seeded determinism
# ----------------------------------------------------------------------
def test_drop_injector_is_deterministic_and_counted():
    config = _scenario(0)
    chaos = ChaosConfig(drop_rate=0.1, seed=7)
    first = run_live_scenario(config, chaos=chaos)
    second = run_live_scenario(config, chaos=chaos)

    assert first.fault_counts["drops"] > 0
    assert first.fault_counts == second.fault_counts
    assert _signature(first) == _signature(second)
    # Dropped messages are minted but never delivered: honest accounting.
    gap = first.transport.messages_sent - first.transport.messages_delivered
    assert gap >= first.fault_counts["drops"]
    assert first.ledgers_are_consistent() and second.ledgers_are_consistent()

    clean = run_live_scenario(config)
    assert _signature(first) != _signature(clean)


def test_duplicate_injector_is_deterministic_and_counted():
    config = _scenario(0)
    chaos = ChaosConfig(duplicate_rate=0.15, seed=3)
    first = run_live_scenario(config, chaos=chaos)
    second = run_live_scenario(config, chaos=chaos)

    assert first.fault_counts["duplicates"] > 0
    assert first.fault_counts == second.fault_counts
    assert _signature(first) == _signature(second)
    # Consensus shrugs duplicates off: safety holds, progress continues.
    assert first.committed_blocks() > 0
    assert first.ledgers_are_consistent()


def test_distinct_injector_seeds_give_distinct_fault_patterns():
    config = _scenario(0)
    a = run_live_scenario(config, chaos=ChaosConfig(drop_rate=0.1, seed=1))
    b = run_live_scenario(config, chaos=ChaosConfig(drop_rate=0.1, seed=2))
    # Same rate, different streams: overwhelmingly different drop sets.
    assert a.fault_counts != b.fault_counts or _signature(a) != _signature(b)


def test_chaos_config_validates_rates():
    with pytest.raises(ConfigurationError):
        ChaosConfig(drop_rate=1.0)
    with pytest.raises(ConfigurationError):
        ChaosConfig(duplicate_rate=-0.1)
    assert not ChaosConfig().active
    assert ChaosConfig(drop_rate=0.5).active


# ----------------------------------------------------------------------
# Delay schedules: seeded determinism under the envelope
# ----------------------------------------------------------------------
def test_scheduled_delay_is_deterministic_per_seed():
    model = UniformDelay(0.05, 0.4)
    base = _scenario(0, gst=2.0, duration=15.0)
    base.delay_model = model
    first = run_live_scenario(base)

    again = _scenario(0, gst=2.0, duration=15.0)
    again.delay_model = UniformDelay(0.05, 0.4)
    second = run_live_scenario(again)
    assert _signature(first) == _signature(second)

    other = _scenario(1, gst=2.0, duration=15.0)
    other.delay_model = UniformDelay(0.05, 0.4)
    third = run_live_scenario(other)
    assert _signature(first) != _signature(third)


def test_partition_schedule_is_deterministic_and_counts_epochs():
    def config_for(seed):
        cfg = _scenario(seed, gst=5.0, duration=20.0)
        cfg.delay_model = PartitionSchedule(
            base=FixedDelay(0.1),
            groups=[(0, 1), (2, 3)],
            split_at=1.0,
            heal_at=5.0,
        )
        return cfg

    first = run_live_scenario(config_for(0))
    second = run_live_scenario(config_for(0))
    assert _signature(first) == _signature(second)
    assert first.fault_counts["partition_epochs"] == 1
    assert first.fault_counts["partitioned_messages"] > 0
    assert first.fault_counts == second.fault_counts
    assert first.ledgers_are_consistent()
    assert first.committed_blocks() > 0


# ----------------------------------------------------------------------
# Kill / restart lifecycle
# ----------------------------------------------------------------------
class _FakeProcess:
    def __init__(self):
        self.crashed = False
        self.transitions: list[tuple[str, float]] = []
        self.clock = None

    def crash(self):
        self.crashed = True
        self.transitions.append(("crash", self.clock()))

    def recover(self):
        self.crashed = False
        self.transitions.append(("recover", self.clock()))


def test_schedule_downtime_kills_and_restarts_on_schedule():
    transport = LocalTransport()
    runtime = AsyncioRuntime(transport, seed=0)
    process = _FakeProcess()
    process.clock = lambda: runtime.now
    counters = FaultCounters()
    schedule_downtime(
        runtime, process, [(2.0, 5.0), (8.0, None)], counters=counters
    )
    runtime.run_sync(until=10.0)

    assert process.transitions == [("crash", 2.0), ("recover", 5.0), ("crash", 8.0)]
    assert process.crashed  # the second window never recovers
    assert counters.as_dict()["kills"] == 2
    assert counters.as_dict()["restarts"] == 1


def test_schedule_downtime_rejects_inverted_windows():
    transport = LocalTransport()
    runtime = AsyncioRuntime(transport, seed=0)
    with pytest.raises(ConfigurationError):
        schedule_downtime(runtime, _FakeProcess(), [(5.0, 2.0)])


# ----------------------------------------------------------------------
# Construction and adapter validation
# ----------------------------------------------------------------------
def test_faulty_transport_rejects_raw_delay_models_and_missing_network():
    inner = LocalTransport()
    with pytest.raises(ConfigurationError):
        FaultyTransport(inner, schedule=FixedDelay(0.1), network=None)
    with pytest.raises(ConfigurationError):
        FaultyTransport(inner, schedule=adapt_schedule(FixedDelay(0.1)))


def test_adversarial_delay_has_no_live_adapter():
    model = AdversarialDelay(lambda pending, sim: 0.1, name="custom")
    with pytest.raises(ConfigurationError, match="AdversarialDelay"):
        adapt_schedule(model)


def test_adapt_schedule_validates_whole_trees():
    nested = PartitionSchedule(
        base=AdversarialDelay(lambda pending, sim: 0.1),
        groups=[(0, 1), (2, 3)],
        split_at=1.0,
        heal_at=2.0,
    )
    with pytest.raises(ConfigurationError, match="AdversarialDelay"):
        adapt_schedule(nested)


def test_register_live_adapter_rejects_double_registration():
    with pytest.raises(ConfigurationError, match="already has a live adapter"):
        register_live_adapter(FixedDelay, ScheduleAdapter)


def test_explicit_transport_with_delay_model_is_rejected():
    config = _scenario(0)
    config.delay_model = FixedDelay(0.1)
    with pytest.raises(ConfigurationError):
        build_live_scenario(config, transport=LocalTransport())


def test_fault_counters_base_names_and_epoch_idempotence():
    counters = FaultCounters()
    assert set(BASE_FAULT_COUNTS) <= set(counters.as_dict())
    counters.note_epoch("partition_epochs", ("a",))
    counters.note_epoch("partition_epochs", ("a",))
    counters.note_epoch("partition_epochs", ("b",))
    assert counters.as_dict()["partition_epochs"] == 2
