"""Codec equivalence suite: every registered message, both wire formats.

``tests/test_runtime.py`` covers the JSON codec's behaviour on a handful of
representative messages; this module is the systematic counterpart added
with the binary codec:

* a message *zoo* with one instance of **every** registered wire class —
  with a guard test that fails when a new message type is registered without
  being added to the zoo — round-tripped through both codecs;
* cross-codec agreement (both formats decode to equal values);
* frame-size comparison (binary frames are strictly smaller than JSON
  frames for every zoo message);
* edge values (negative/huge ints, unicode, empty containers, bytes) and
  the binary format's error paths (unknown class id, unknown tag, trailing
  bytes, truncated values).
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.consensus.blocks import Block
from repro.consensus.messages import (
    ConsensusMessage,
    NewView,
    Proposal,
    QCAnnounce,
    Vote,
)
from repro.consensus.quorum import QuorumCertificate
from repro.core.messages import EpochViewMessage, ViewCertificate, ViewMessage
from repro.crypto.signatures import Signature
from repro.crypto.threshold import PartialSignature, ThresholdSignature
from repro.pacemakers.backoff import ViewChangeMessage
from repro.pacemakers.base import PacemakerMessage
from repro.pacemakers.cogsworth import RelayCertificate, WishMessage
from repro.pacemakers.fever import FeverViewCertificate, FeverViewMessage
from repro.pacemakers.lp22 import LP22EpochCertificate, LP22EpochViewMessage
from repro.statemachine.commands import Command, encode_commands
from repro.statemachine.messages import ClientMessage, CommandBatch, CommandForward
from repro.runtime.codec import (
    BinaryWireCodec,
    WireCodec,
    WireCodecError,
    _register_library_messages,
    available_codecs,
    default_binary_codec,
    default_codec,
    make_codec,
)


def message_zoo() -> list:
    """One instance of every registered wire class (nested where natural)."""
    signature = Signature(signer=3, message_digest="md-vote-7", proof="proof-3")
    partial = PartialSignature(signer=3, message_digest="md-vote-7", signature=signature)
    aggregate = ThresholdSignature(
        message_digest="md-vote-7",
        threshold=3,
        signers=frozenset({1, 3, 5, 9}),
        proof="agg-proof",
    )
    block = Block(
        view=7,
        parent_id="block-6-beef",
        proposer=2,
        payload=("payload", 7, "tx"),
        justify_view=6,
    )
    qc = QuorumCertificate(view=6, block_id="block-6-beef", aggregate=aggregate)
    batch = CommandBatch(
        count=2,
        data=encode_commands(
            [
                Command(1, 0, 0, "c1:0", "v1:0"),
                Command(1, 1, 1, "c1:1", ""),
            ]
        ),
    )
    return [
        signature,
        partial,
        aggregate,
        block,
        qc,
        ConsensusMessage(view=4),
        PacemakerMessage(),
        NewView(view=8, high_qc=qc),
        Proposal(view=7, block=block, justify=qc),
        QCAnnounce(view=7, qc=qc, block=block),
        Vote(view=7, block_id="block-7-cafe", partial=partial),
        EpochViewMessage(view=9, partial=partial),
        ViewMessage(view=9, partial=partial),
        ViewCertificate(view=9, aggregate=aggregate),
        ViewChangeMessage(view=10, partial=partial),
        WishMessage(view=11, partial=partial),
        RelayCertificate(view=11, aggregate=aggregate),
        FeverViewMessage(view=12, partial=partial),
        FeverViewCertificate(view=12, aggregate=aggregate),
        LP22EpochViewMessage(view=13, partial=partial),
        LP22EpochCertificate(view=13, aggregate=aggregate),
        ClientMessage(),
        batch,
        CommandForward(batch=batch),
    ]


EDGE_VALUES = [
    None,
    True,
    False,
    0,
    -1,
    127,
    128,
    -300,
    2**40,
    -(2**40),
    0.0,
    -2.5,
    1e300,
    "",
    "plain",
    "unicode: ✓ λ ∀ 🛰",
    (),
    (1, ("nested", -2), None),
    [],
    [1, "two", 3.0],
    frozenset(),
    frozenset({-5, 0, 7}),
    frozenset({"b", "a"}),
    {},
    {"k": 1, "nested": {"x": (1, 2)}},
    {3: "int-key", (1, 2): "tuple-key"},
]


@pytest.fixture(params=available_codecs())
def codec(request):
    return make_codec(request.param)


def roundtrip(codec, sender, payload):
    frame = codec.encode_frame(sender, payload)
    body = frame[4:]
    assert len(body) == int.from_bytes(frame[:4], "big")
    return codec.decode_body(body)


class TestMessageZoo:
    def test_zoo_covers_every_registered_class(self):
        # The comparison set is the registry filtered to classes the library
        # itself defines: other tests legitimately register their own fake
        # message types (from tests.* modules) on the shared codecs, and a
        # fresh registration sweep would pick those subclasses up too.
        zoo_names = {type(message).__name__ for message in message_zoo()}
        for codec in (
            _register_library_messages(WireCodec()),
            default_codec(),
            default_binary_codec(),
        ):
            library_names = {
                name
                for name in codec.registered_names
                if codec._by_name[name].__module__.startswith("repro.")
            }
            assert zoo_names == library_names

    def test_every_message_roundtrips(self, codec):
        for message in message_zoo():
            sender, decoded = roundtrip(codec, 5, message)
            assert sender == 5
            assert decoded == message
            assert type(decoded) is type(message)

    def test_nested_field_types_survive(self, codec):
        proposal = next(m for m in message_zoo() if isinstance(m, Proposal))
        _, decoded = roundtrip(codec, 0, proposal)
        assert type(decoded.block.payload) is tuple
        assert type(decoded.justify.aggregate.signers) is frozenset
        assert decoded.justify.aggregate.signers == frozenset({1, 3, 5, 9})

    def test_codecs_agree_on_decoded_value(self):
        json_codec = make_codec("json")
        binary_codec = make_codec("binary")
        for message in message_zoo():
            _, from_json = json_codec.decode_body(
                json_codec.encode_frame(2, message)[4:]
            )
            _, from_binary = binary_codec.decode_body(
                binary_codec.encode_frame(2, message)[4:]
            )
            assert from_json == from_binary == message

    def test_binary_frames_strictly_smaller_for_every_message(self):
        json_codec = make_codec("json")
        binary_codec = make_codec("binary")
        for message in message_zoo():
            json_size = len(json_codec.encode_frame(7, message))
            binary_size = len(binary_codec.encode_frame(7, message))
            assert binary_size < json_size, (
                f"{type(message).__name__}: binary {binary_size} >= json {json_size}"
            )

    def test_binary_shrinks_qc_carrying_messages_substantially(self):
        json_codec = make_codec("json")
        binary_codec = make_codec("binary")
        for message in message_zoo():
            if not isinstance(message, (Vote, Proposal, QCAnnounce)):
                continue
            json_size = len(json_codec.encode_frame(7, message))
            binary_size = len(binary_codec.encode_frame(7, message))
            assert binary_size < json_size // 2


class TestEdgeValues:
    def test_edge_values_roundtrip(self, codec):
        for value in EDGE_VALUES:
            sender, decoded = roundtrip(codec, 1, value)
            assert decoded == value
            assert type(decoded) is type(value)

    def test_bytes_roundtrip_binary_only(self):
        binary_codec = make_codec("binary")
        for blob in (b"", b"\x00\xff" * 40):
            _, decoded = roundtrip(binary_codec, 1, blob)
            assert decoded == blob
            assert type(decoded) is bytes

    def test_extreme_senders_roundtrip(self, codec):
        for sender in (0, 1, -1, 2**31, -(2**31)):
            got_sender, decoded = roundtrip(codec, sender, "ping")
            assert got_sender == sender
            assert decoded == "ping"


class TestErrorPaths:
    def test_make_codec_rejects_unknown_name(self):
        with pytest.raises(WireCodecError, match="unknown wire codec"):
            make_codec("msgpack")

    def test_make_codec_returns_shared_instances(self):
        assert make_codec("json") is default_codec()
        assert make_codec("binary") is default_binary_codec()
        assert isinstance(make_codec("binary"), BinaryWireCodec)

    def test_unregistered_dataclass_rejected(self, codec):
        @dataclasses.dataclass(frozen=True)
        class Rogue:
            x: int

        with pytest.raises(WireCodecError, match="not registered"):
            codec.encode_frame(0, Rogue(x=1))

    def test_unencodable_value_rejected(self, codec):
        with pytest.raises(WireCodecError, match="cannot encode"):
            codec.encode_frame(0, object())

    def test_binary_rejects_unknown_class_id(self):
        binary_codec = make_codec("binary")
        bogus_id = len(binary_codec._by_id) + 5
        body = bytes([0, 0x0B]) + bytes([bogus_id])  # sender 0, CLASS tag
        with pytest.raises(WireCodecError, match="unknown wire class id"):
            binary_codec.decode_body(body)

    def test_binary_rejects_unknown_tag(self):
        with pytest.raises(WireCodecError, match="unknown tag"):
            make_codec("binary").decode_body(bytes([0, 0xFF]))

    def test_binary_rejects_trailing_bytes(self):
        binary_codec = make_codec("binary")
        body = binary_codec.encode_frame(1, "ok")[4:] + b"\x00"
        with pytest.raises(WireCodecError, match="trailing bytes"):
            binary_codec.decode_body(body)

    def test_binary_rejects_truncated_values(self):
        binary_codec = make_codec("binary")
        for payload in ("a long enough string", 3.14, b"some bytes"):
            body = binary_codec.encode_frame(1, payload)[4:]
            with pytest.raises(WireCodecError, match="malformed frame body"):
                binary_codec.decode_body(body[:-3])

    def test_binary_rejects_empty_body(self):
        with pytest.raises(WireCodecError, match="malformed frame body"):
            make_codec("binary").decode_body(b"")

    def test_json_rejects_garbage_body(self):
        with pytest.raises(WireCodecError, match="malformed frame body"):
            make_codec("json").decode_body(b"\x01\x02not json")


class TestZeroCopyPaths:
    """``encode_into`` / decode-from-``memoryview``: the shm and coalesced-TCP
    fast paths must be byte-for-byte and value-for-value identical to the
    original ``encode_frame``/``decode_body(bytes)`` pair."""

    def test_encode_into_matches_encode_frame_for_every_message(self, codec):
        for message in message_zoo():
            frame = codec.encode_frame(7, message)
            buf = bytearray()
            appended = codec.encode_into(7, message, buf)
            assert bytes(buf) == frame
            assert appended == len(frame)

    def test_encode_into_appends_after_existing_content(self, codec):
        # A coalesced writer batches many frames into one buffer; each
        # append must leave earlier frames untouched.
        buf = bytearray()
        frames = []
        for message in message_zoo():
            frames.append(codec.encode_frame(9, message))
            codec.encode_into(9, message, buf)
        assert bytes(buf) == b"".join(frames)

    def test_decode_from_memoryview_for_every_message(self, codec):
        # Frames decode in place from a memoryview over a larger buffer —
        # exactly how the shm ring hands bodies to the codec.
        for message in message_zoo():
            frame = codec.encode_frame(4, message)
            backing = bytearray(b"\xaa" * 11 + frame + b"\xbb" * 7)
            body = memoryview(backing)[11 + 4 : 11 + len(frame)]
            sender, decoded = codec.decode_body(body)
            assert sender == 4
            assert decoded == message
            assert type(decoded) is type(message)

    def test_memoryview_and_bytes_decode_agree(self, codec):
        for message in message_zoo():
            body = codec.encode_frame(2, message)[4:]
            assert codec.decode_body(memoryview(body)) == codec.decode_body(body)
