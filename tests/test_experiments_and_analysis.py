"""Tests for the experiment harness, the analysis helpers and the engine-level
behaviours that the harness relies on."""

from __future__ import annotations

import math

import pytest

from repro.analysis.fitting import estimate_exponent, growth_ratio
from repro.analysis.table1 import PAPER_TABLE1, bound_for
from repro.experiments.figure1 import run_figure1
from repro.experiments.responsiveness import responsiveness_sweep
from repro.experiments.scenario import ScenarioConfig, build_scenario, run_scenario
from repro.experiments.steady_state import heavy_sync_count
from repro.experiments.table1 import Table1Row, eventual_complexity_sweep, format_rows
from repro.errors import ConfigurationError
from repro.adversary.corruption import CorruptionPlan
from repro.config import ProtocolConfig


# ----------------------------------------------------------------------
# Scenario harness
# ----------------------------------------------------------------------
def test_build_scenario_does_not_advance_time():
    result = build_scenario(ScenarioConfig(n=4, duration=50.0))
    assert result.simulator.now == 0.0
    assert result.honest_decisions() == 0


def test_run_scenario_runs_to_requested_duration():
    result = run_scenario(ScenarioConfig(n=4, duration=60.0, record_trace=False))
    assert result.simulator.now >= 60.0
    assert result.honest_decisions() > 0


def test_scenario_rejects_mismatched_corruption_plan():
    config = ScenarioConfig(n=7, duration=10.0)
    config.corruption = CorruptionPlan.none(ProtocolConfig(n=4))
    with pytest.raises(ConfigurationError):
        build_scenario(config)


def test_scenario_describe_and_summary_round_trip():
    result = run_scenario(ScenarioConfig(n=4, duration=80.0, record_trace=False))
    summary = result.summary()
    assert summary.n == 4
    assert summary.decisions == result.honest_decisions()
    assert "lumiere" in result.describe()


def test_trace_recording_can_be_enabled():
    result = run_scenario(ScenarioConfig(n=4, duration=30.0, record_trace=True))
    assert len(result.trace) > 0
    assert result.trace.first("enter_view") is not None
    assert result.trace.of_kind("qc_produced")


# ----------------------------------------------------------------------
# Experiment modules (scaled-down runs)
# ----------------------------------------------------------------------
def test_figure1_lp22_stalls_for_an_epoch_while_lumiere_stall_is_per_fault():
    """Figure 1's claim: one silent leader stalls LP22 for an epoch-scale wait
    (which grows with n), while Lumiere's stall is a constant number of its
    own Gamma per faulty leader."""
    figure = run_figure1(n=7, delta=1.0, actual_delay=0.05, duration=600.0)
    f = (7 - 1) // 3
    # LP22 loses (almost) the remainder of the epoch: at least two extra views
    # of clock time beyond the faulty view itself.
    assert figure.lp22_max_gap >= (f + 1) * figure.lp22_gamma
    # Lumiere's stall is bounded by a small constant number of Gamma,
    # independent of n (a faulty leader owns at most four consecutive views).
    assert figure.lumiere_max_gap <= 5 * figure.lumiere_gamma
    assert "Figure 1" in figure.describe()
    assert len(figure.lp22_decision_times) > 5
    assert len(figure.lumiere_decision_times) > 5


def test_responsiveness_sweep_grows_with_faults():
    points = responsiveness_sweep(
        "lumiere", n=4, fault_counts=[0, 1], delta=1.0, actual_delay=0.05, duration=300.0
    )
    assert len(points) == 2
    fault_free, one_fault = points
    assert fault_free.max_gap is not None and one_fault.max_gap is not None
    assert fault_free.max_gap < one_fault.max_gap
    # Fault-free steady state runs at network speed, not at Delta speed.
    assert fault_free.max_gap < 1.0


def test_heavy_sync_count_separates_lumiere_from_basic_lumiere():
    lumiere = heavy_sync_count("lumiere", n=4, duration=400.0, warmup=60.0)
    basic = heavy_sync_count("basic-lumiere", n=4, duration=400.0, warmup=60.0)
    assert lumiere.heavy_syncs_after_warmup == 0
    assert basic.heavy_syncs_after_warmup > 3
    assert lumiere.decisions > 0 and basic.decisions > 0


def test_eventual_sweep_produces_rows_for_each_protocol_and_fault_level():
    rows = eventual_complexity_sweep(
        protocols=("lumiere", "lp22"), n=4, fault_counts=[0, 1], delta=1.0, actual_delay=0.1
    )
    assert len(rows) == 4
    assert {row.protocol for row in rows} == {"lumiere", "lp22"}
    table = format_rows(rows)
    assert "lumiere" in table and "lp22" in table
    for row in rows:
        assert isinstance(row, Table1Row)
        assert row.decisions > 0


# ----------------------------------------------------------------------
# Analysis helpers
# ----------------------------------------------------------------------
def test_paper_table_contains_all_four_protocol_columns():
    assert set(PAPER_TABLE1) == {"cogsworth", "lp22", "fever", "lumiere"}
    lumiere = PAPER_TABLE1["lumiere"]
    assert lumiere.eventual_communication.formula == "O(n * f_a + n)"
    assert lumiere.eventual_communication(10, 3) == 40


def test_bound_for_resolves_aliases():
    assert bound_for("basic-lumiere", "worst_case_communication").formula == "O(n^2)"
    assert bound_for("naor-keidar", "worst_case_latency").formula == "O(n^2 * Delta)"
    assert bound_for("lumiere", "eventual_latency")(13, 2, 1.0, 0.1) == pytest.approx(2.1)


def test_estimate_exponent_recovers_power_laws():
    xs = [4, 8, 16, 32]
    quadratic = [x**2 for x in xs]
    linear = [3 * x for x in xs]
    assert estimate_exponent(xs, quadratic) == pytest.approx(2.0, abs=0.01)
    assert estimate_exponent(xs, linear) == pytest.approx(1.0, abs=0.01)


def test_estimate_exponent_input_validation():
    with pytest.raises(ValueError):
        estimate_exponent([1], [1])
    with pytest.raises(ValueError):
        estimate_exponent([2, 2], [1, 4])


def test_growth_ratio():
    assert growth_ratio([2, 4, 8]) == pytest.approx(4.0)
    assert math.isnan(growth_ratio([0, 4]))
    assert math.isnan(growth_ratio([5]))


def test_figure1_sweep_tolerates_duplicate_sizes():
    from repro.experiments.figure1 import figure1_sweep

    figures = figure1_sweep((4, 4), delta=1.0, actual_delay=0.05, duration=120.0, seed=0)
    assert list(figures) == [4]
    assert figures[4].n == 4


def test_heavy_sync_sweep_tolerates_duplicate_protocols():
    from repro.experiments.steady_state import heavy_sync_sweep

    results = heavy_sync_sweep(("lumiere", "lumiere"), n=4, duration=200.0, warmup=40.0)
    assert list(results) == ["lumiere"]
