"""Live-runtime integration tests: sim equivalence, determinism, TCP smoke.

The headline property (ISSUE 5 acceptance): the asyncio runtime with a
seeded zero-jitter ``LocalTransport`` reaches exactly the same decisions
and ledgers as the discrete-event simulator for the same scenario, across
multiple seeds — the protocol core genuinely does not know which runtime
it is on.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.adversary.attacks import spread_corruption
from repro.adversary.behaviours import SilentLeaderBehaviour
from repro.errors import ConfigurationError
from repro.experiments.scenario import ScenarioConfig, run_scenario
from repro.runner import (
    Campaign,
    LiveExecutor,
    Sweep,
    TcpCluster,
    run_live_scenario,
)
from repro.runtime import MonotonicClock
from repro.sim.network import FixedDelay


def _scenario(seed: int, **overrides) -> ScenarioConfig:
    defaults = dict(
        n=4,
        pacemaker="lumiere",
        delta=1.0,
        actual_delay=0.1,
        gst=0.0,
        duration=30.0,
        seed=seed,
        record_trace=False,
    )
    defaults.update(overrides)
    return ScenarioConfig(**defaults)


def _decisions(metrics):
    return [(d.view, d.leader) for d in metrics.decisions]


def _ledgers(replicas):
    return {pid: replica.ledger.block_ids for pid, replica in replicas.items()}


# ----------------------------------------------------------------------
# Equivalence: AsyncioRuntime + seeded LocalTransport == SimRuntime
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_local_transport_reproduces_simulator_exactly(seed):
    config = _scenario(seed)
    sim = run_scenario(config)
    live = run_live_scenario(config)  # zero jitter, virtual clock

    assert _decisions(live.metrics) == _decisions(sim.metrics)
    assert _ledgers(live.replicas) == _ledgers(sim.replicas)
    assert live.committed_blocks() == sim.committed_blocks() > 0
    assert live.ledgers_are_consistent()
    # The wire accounting agrees too: same sends, same deliveries.
    assert live.transport.messages_sent == sim.network.messages_sent
    assert live.transport.messages_delivered == sim.network.messages_delivered


def test_equivalence_holds_under_faults():
    config = _scenario(3)
    config.corruption = spread_corruption(
        config.protocol_config(), 1, SilentLeaderBehaviour
    )
    sim = run_scenario(config)
    live = run_live_scenario(config)
    assert _decisions(live.metrics) == _decisions(sim.metrics)
    assert _ledgers(live.replicas) == _ledgers(sim.replicas)
    assert live.ledgers_are_consistent()


# ----------------------------------------------------------------------
# Seeded jitter: deterministic replay, distinct schedules per seed
# ----------------------------------------------------------------------
def test_seeded_jitter_is_deterministic():
    config = _scenario(0, duration=20.0)
    first = run_live_scenario(config, jitter=0.3)
    second = run_live_scenario(config, jitter=0.3)
    assert _decisions(first.metrics) == _decisions(second.metrics)
    assert _ledgers(first.replicas) == _ledgers(second.replicas)
    assert first.committed_blocks() > 0
    assert first.ledgers_are_consistent() and second.ledgers_are_consistent()


def test_live_runs_execute_simulator_adversaries():
    # Since the chaos layer, a delay model or named scenario runs live under
    # a FaultyTransport instead of being rejected (full coverage of the
    # registry lives in test_live_faults.py).
    config = _scenario(0, gst=5.0, duration=20.0)
    config.delay_model = FixedDelay(0.1)
    scheduled = run_live_scenario(config)
    assert scheduled.committed_blocks() > 0
    assert scheduled.ledgers_are_consistent()

    named = _scenario(0, gst=5.0, duration=20.0, scenario="split_brain_at_gst")
    result = run_live_scenario(named)
    assert result.committed_blocks() > 0
    assert result.ledgers_are_consistent()
    assert result.fault_counts["partition_epochs"] >= 1

    # Transport jitter on top of a schedule would break sim parity.
    with pytest.raises(ConfigurationError):
        run_live_scenario(named, jitter=0.05)


# ----------------------------------------------------------------------
# Wall-clock mode (in-memory): real time, still safe
# ----------------------------------------------------------------------
def test_wall_clock_local_cluster_commits_in_real_time():
    # Condition-driven with a generous hard deadline: the run ends as soon
    # as three blocks commit, so a slow CI box gets the whole budget rather
    # than a fixed sleep sized for a fast one.
    config = _scenario(0, delta=0.1, duration=20.0)
    result = run_live_scenario(
        config,
        clock=MonotonicClock(),
        stop_when=lambda r: r.committed_blocks() >= 3,
    )
    assert result.committed_blocks() >= 3
    assert result.ledgers_are_consistent()
    # Wall timestamps: monotone, non-virtual times recorded by the collector.
    # The WALL_START_GRACE re-anchor may push the very first events a hair
    # before zero, but never out of order.
    times = [d.time for d in result.metrics.decisions]
    assert times == sorted(times)
    assert all(t >= -1.0 for t in times)


# ----------------------------------------------------------------------
# Campaign integration: the "live" backend
# ----------------------------------------------------------------------
def _build_live_cell(params):
    return ScenarioConfig(
        n=params["n"],
        pacemaker=params["protocol"],
        delta=1.0,
        actual_delay=0.1,
        duration=params["duration"],
        seed=params["seed"],
        record_trace=False,
    )


def test_live_campaign_backend_and_cache_salting(tmp_path):
    campaign = Campaign(
        name="live-backend-test",
        build=_build_live_cell,
        sweeps=(Sweep("protocol", ("lumiere", "fever")),),
        fixed={"n": 4, "duration": 20.0, "seed": 0},
    )
    cache = str(tmp_path / "cache")
    live = campaign.run(backend="live", cache=cache)
    assert len(live) == 2 and live.cache_misses == 2
    assert all(r.decisions > 0 and r.ledgers_consistent for r in live)
    assert all(r.key.startswith("live:") for r in live)

    # Second live run: full cache hits.
    again = campaign.run(backend="live", cache=cache)
    assert again.cache_hits == 2 and again.cache_misses == 0

    # Simulated run of the same grid must NOT see the live entries...
    simulated = campaign.run(backend="serial", cache=cache)
    assert simulated.cache_misses == 2
    # ...and (lumiere cell) agrees with the live record on decisions, since
    # zero-jitter live replay is sim-equivalent.
    live_lumiere = live.one(protocol="lumiere")
    sim_lumiere = simulated.one(protocol="lumiere")
    assert live_lumiere.decisions == sim_lumiere.decisions
    assert live_lumiere.committed_blocks == sim_lumiere.committed_blocks

    with pytest.raises(ConfigurationError):
        campaign.run(backend="serial", live_executor=LiveExecutor())
    with pytest.raises(ConfigurationError):
        campaign.run(backend="live", workers=4)

    # A differently configured live executor (jitter) must not answer from
    # the zero-jitter cache: its salt folds the jitter in.
    jittered = campaign.run(
        backend="live", cache=cache, live_executor=LiveExecutor(jitter=0.05)
    )
    assert jittered.cache_misses == 2
    assert all(r.key.startswith("live[jitter=0.05]:") for r in jittered)


# ----------------------------------------------------------------------
# TCP smoke: n=4 over localhost commits >= 5 blocks under a hard timeout
# ----------------------------------------------------------------------
def test_tcp_cluster_smoke():
    async def scenario():
        cluster = TcpCluster(
            ScenarioConfig(
                n=4, pacemaker="lumiere", delta=0.2, duration=25.0,
                seed=0, record_trace=False,
            )
        )
        try:
            # Condition-polled with a hard outer deadline: the run returns the
            # moment the fifth block commits everywhere, never sleeps a fixed
            # amount, and wait_for guarantees the test cannot hang past 28s.
            commits = await asyncio.wait_for(
                cluster.run_until_commits(5, timeout=25.0, poll=0.01), timeout=28.0
            )
            consistent = cluster.ledgers_are_consistent()
            decisions = len(cluster.metrics.honest_decisions())
        finally:
            await cluster.stop()
        return commits, consistent, decisions

    commits, consistent, decisions = asyncio.run(scenario())
    assert commits >= 5, f"only {commits} blocks within the wall-clock budget"
    assert consistent
    assert decisions >= commits
