"""Integration tests for the baseline pacemakers (LP22, Fever, Cogsworth,
NK20, RareSync, exponential backoff) and the comparative behaviours that
Table 1 and Figure 1 rest on."""

from __future__ import annotations

import pytest

from repro.adversary.attacks import spread_corruption, worst_case_clock_dispersion_model
from repro.adversary.behaviours import SilentLeaderBehaviour
from repro.adversary.corruption import CorruptionPlan
from repro.experiments.scenario import ScenarioConfig, run_scenario
from repro.pacemakers.registry import available_pacemakers, make_pacemaker_factory
from repro.config import ProtocolConfig
from repro.errors import ConfigurationError


def scenario(pacemaker, n=4, duration=250.0, **kwargs) -> ScenarioConfig:
    defaults = dict(
        n=n,
        pacemaker=pacemaker,
        delta=1.0,
        actual_delay=0.1,
        gst=0.0,
        duration=duration,
        record_trace=False,
    )
    defaults.update(kwargs)
    return ScenarioConfig(**defaults)


ALL_PACEMAKERS = available_pacemakers()


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
def test_registry_lists_all_protocols():
    assert set(ALL_PACEMAKERS) == {
        "lumiere",
        "basic-lumiere",
        "lp22",
        "fever",
        "cogsworth",
        "naor-keidar",
        "raresync",
        "backoff",
    }


def test_registry_rejects_unknown_names():
    with pytest.raises(ConfigurationError):
        make_pacemaker_factory("not-a-protocol", ProtocolConfig(n=4))


def test_registry_accepts_underscore_aliases():
    factory = make_pacemaker_factory("naor_keidar", ProtocolConfig(n=4))
    assert callable(factory)


# ----------------------------------------------------------------------
# Liveness and safety for every protocol (fault-free and with one fault)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("pacemaker", ALL_PACEMAKERS)
def test_fault_free_liveness_and_safety(pacemaker):
    result = run_scenario(scenario(pacemaker, duration=150.0))
    assert result.honest_decisions() > 10, f"{pacemaker} made too little progress"
    assert result.ledgers_are_consistent()
    assert result.committed_blocks() > 5


@pytest.mark.parametrize("pacemaker", ALL_PACEMAKERS)
def test_liveness_and_safety_with_one_silent_leader(pacemaker):
    config = scenario(pacemaker, duration=400.0)
    config.corruption = spread_corruption(config.protocol_config(), 1, SilentLeaderBehaviour)
    result = run_scenario(config)
    assert result.honest_decisions() > 10, f"{pacemaker} stalled with one fault"
    assert result.ledgers_are_consistent()


@pytest.mark.parametrize("pacemaker", ["lumiere", "lp22", "fever", "cogsworth", "backoff"])
def test_recovery_after_gst(pacemaker):
    config = scenario(pacemaker, n=4, duration=500.0, gst=40.0, seed=2)
    protocol_config = config.protocol_config()
    config.corruption = spread_corruption(protocol_config, 1, SilentLeaderBehaviour)
    config.delay_model = worst_case_clock_dispersion_model(
        protocol_config, config.actual_delay, pre_gst_max_delay=40.0
    )
    result = run_scenario(config)
    post_gst = [d for d in result.metrics.honest_decisions() if d.time > config.gst]
    assert len(post_gst) > 5, f"{pacemaker} did not recover after GST"
    assert result.ledgers_are_consistent()


@pytest.mark.parametrize("pacemaker", ALL_PACEMAKERS)
def test_view_monotonicity(pacemaker):
    result = run_scenario(scenario(pacemaker, duration=120.0))
    for pid in result.corruption.honest_ids:
        views = [view for _, view in result.metrics.view_entries.get(pid, [])]
        assert views == sorted(views), f"{pacemaker} violated view monotonicity at p{pid}"


# ----------------------------------------------------------------------
# Protocol-specific behaviours
# ----------------------------------------------------------------------
def test_lp22_heavy_syncs_every_epoch():
    result = run_scenario(scenario("lp22", duration=200.0))
    # Epochs are f+1 = 2 views; every epoch boundary requires a heavy sync.
    assert result.metrics.epoch_syncs_after(0.0) >= 10


def test_lp22_epoch_boundary_wait_versus_lumiere_responsiveness():
    """The Figure-1 contrast in miniature: LP22's largest fault-free decision gap
    spans the epoch-boundary clock wait; Lumiere's stays at network speed."""
    lp22 = run_scenario(scenario("lp22", duration=200.0))
    lumiere = run_scenario(scenario("lumiere", duration=200.0))
    lp22_gaps = lp22.metrics.decision_gaps(after=30.0)
    lumiere_gaps = lumiere.metrics.decision_gaps(after=30.0)
    assert max(lp22_gaps) > 3 * max(lumiere_gaps)


def test_fever_runs_at_network_speed_without_faults():
    result = run_scenario(scenario("fever", duration=150.0))
    gaps = result.metrics.decision_gaps(after=20.0)
    assert max(gaps) <= 6 * result.config.actual_delay + 1e-6


def test_fever_worst_gap_scales_with_faults_not_n():
    config = scenario("fever", n=7, duration=500.0)
    config.corruption = spread_corruption(config.protocol_config(), 1, SilentLeaderBehaviour)
    result = run_scenario(config)
    gamma = 2 * (result.protocol_config.x + 1) * result.config.delta
    gaps = result.metrics.decision_gaps(after=60.0)
    assert max(gaps) <= 2 * gamma + 4 * result.config.delta


def test_raresync_is_not_optimistically_responsive():
    """RareSync's decision gaps track Gamma even when the network is fast."""
    result = run_scenario(scenario("raresync", duration=150.0))
    gaps = result.metrics.decision_gaps(after=20.0)
    gamma = (result.protocol_config.x + 1) * result.config.delta
    assert min(gaps) >= gamma / 2


def test_backoff_pacemaker_uses_quadratic_view_changes():
    """Every view change in the backoff pacemaker is an all-to-all broadcast."""
    config = scenario("backoff", duration=300.0)
    config.corruption = spread_corruption(config.protocol_config(), 1, SilentLeaderBehaviour)
    result = run_scenario(config)
    kinds = result.metrics.message_kinds_between(0.0, float("inf"))
    assert kinds.get("ViewChangeMessage", 0) > 0


def test_cogsworth_relay_certificates_bring_processors_into_views():
    config = scenario("cogsworth", duration=300.0)
    config.corruption = spread_corruption(config.protocol_config(), 1, SilentLeaderBehaviour)
    result = run_scenario(config)
    kinds = result.metrics.message_kinds_between(0.0, float("inf"))
    assert kinds.get("WishMessage", 0) > 0
    assert kinds.get("RelayCertificate", 0) > 0


def test_naor_keidar_contacts_more_relays_per_wish_than_cogsworth():
    n = 7
    results = {}
    for name in ("cogsworth", "naor-keidar"):
        config = scenario(name, n=n, duration=300.0)
        config.corruption = CorruptionPlan.uniform(
            config.protocol_config(), [1, 4], SilentLeaderBehaviour
        )
        results[name] = run_scenario(config)
    cogs = results["cogsworth"].metrics.message_kinds_between(0.0, float("inf"))
    nk = results["naor-keidar"].metrics.message_kinds_between(0.0, float("inf"))
    assert nk.get("WishMessage", 0) > cogs.get("WishMessage", 0)


def test_lumiere_eventual_communication_beats_lp22_per_decision():
    """Row 2 of Table 1 in miniature: steady-state messages per decision."""
    lp22 = run_scenario(scenario("lp22", n=7, duration=400.0))
    lumiere = run_scenario(scenario("lumiere", n=7, duration=400.0))
    lp22_eventual = lp22.summary().eventual_communication
    lumiere_eventual = lumiere.summary().eventual_communication
    assert lp22_eventual is not None and lumiere_eventual is not None
    assert lumiere_eventual < lp22_eventual
